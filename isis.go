// Package isis is a from-scratch Go reproduction of the ISIS-2 virtually
// synchronous programming toolkit described in "Exploiting Virtual Synchrony
// in Distributed Systems" (Birman & Joseph, SOSP 1987).
//
// The toolkit lets a distributed application be written as a collection of
// conventional, non-distributed programs connected through process groups
// and ordered multicast. In a virtually synchronous environment it appears
// to every process that broadcasts to a group, group membership changes,
// failures, and state transfers occur instantaneously — in the same order
// everywhere — even though the implementation is highly concurrent and
// asynchronous.
//
// The package exposes:
//
//   - Cluster / Site / Process — the simulated distributed system: a set of
//     sites on a simulated LAN, each running a protocols daemon (Figure 1 of
//     the paper), with client processes attached to sites.
//   - Process groups — create, lookup, join (optionally with state
//     transfer), leave, and monitor membership; views are ranked by age and
//     identical at all members.
//   - Group RPC — Cast sends a message with CBCAST (causal), ABCAST (total
//     order) or GBCAST (globally ordered) semantics and collects 0, 1, N or
//     All replies; Reply / NullReply answer a request.
//   - The toolkit tools of Section 3 live in internal/tools/(coordcohort,
//     config, replica, sema, statexfer, recovery, news, protect, bboard,
//     txn) and are built entirely on this public interface.
//
// Everything runs in-process on a simulated network whose latency,
// bandwidth, loss and fragmentation parameters are configurable
// (simnet.PaperConfig reproduces the 1987 testbed parameters quoted in the
// paper's Section 7).
package isis

import (
	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/fdetect"
	"repro/internal/msg"
	"repro/internal/protos"
	"repro/internal/simnet"
)

// Re-exported fundamental types, so applications only import this package.
type (
	// Address names a process or a process group.
	Address = addr.Address
	// SiteID identifies a computing site.
	SiteID = addr.SiteID
	// EntryID identifies an entry point within a process.
	EntryID = addr.EntryID
	// Message is the symbol-table message of Section 4.1.
	Message = msg.Message
	// View is a process-group membership view, ranked by age.
	View = core.View
	// Protocol selects the multicast primitive.
	Protocol = protos.Protocol
	// Counters tallies protocol activity (used by the benchmark harness).
	Counters = protos.Counters
	// SiteEvent is a failure-detector notification about a site.
	SiteEvent = fdetect.Event
	// MergePolicy selects how the cluster handles network partitions (the
	// primary-partition rule and the merge trigger).
	MergePolicy = protos.MergePolicy
	// Event is one operational event from a site's event stream.
	Event = events.Event
	// EventKind classifies an operational event.
	EventKind = events.Kind
	// EventFilter restricts an event subscription; the zero value matches
	// every event.
	EventFilter = events.Filter
	// EventStats reports publish and drop totals of an event bus.
	EventStats = events.Stats
	// Outcome is the fate of a tracked group request (Process.Outcome).
	Outcome = protos.Outcome
)

// Operational event kinds (Site.Events / Cluster.Events).
const (
	EventViewInstalled   = events.ViewInstalled
	EventViewCommitted   = events.ViewCommitted
	EventPrimaryLost     = events.PrimaryLost
	EventPrimaryResumed  = events.PrimaryResumed
	EventPartitionWedge  = events.PartitionWedge
	EventMergeStart      = events.MergeStart
	EventMergePark       = events.MergePark
	EventMergeRetry      = events.MergeRetry
	EventMergeLand       = events.MergeLand
	EventFlushBegin      = events.FlushBegin
	EventAbcastFenced    = events.AbcastFenced
	EventFlushComplete   = events.FlushComplete
	EventAbcastResolicit = events.AbcastResolicit
	EventTakeover        = events.Takeover
	EventRelayRollback   = events.RelayRollback
	EventRelayNullFill   = events.RelayNullFill
	EventSiteDown        = events.SiteDown
	EventSiteUp          = events.SiteUp
	EventSiteRestart     = events.SiteRestart
	EventLinkDown        = events.LinkDown
	EventLinkUp          = events.LinkUp
)

// Request outcomes (Process.Outcome).
const (
	// OutcomeUnknown means the system cannot yet prove the request committed
	// or aborted — typically because a partition hides the members that would
	// know. Ask again later.
	OutcomeUnknown = protos.OutcomeUnknown
	// OutcomeCommitted means some group member executed the request.
	OutcomeCommitted = protos.OutcomeCommitted
	// OutcomeAborted means the request never executed and never will.
	OutcomeAborted = protos.OutcomeAborted
)

// ErrUnknownRequest is returned by Process.Outcome for a request id this
// site never issued (or one so old its record was evicted).
var ErrUnknownRequest = protos.ErrUnknownRequest

// Multicast protocols (Section 3.1).
const (
	// CBCAST delivers potentially causally related messages in the order
	// they were sent; it is asynchronous and cheap.
	CBCAST = protos.CBCAST
	// ABCAST delivers messages atomically and in the same order everywhere.
	ABCAST = protos.ABCAST
	// GBCAST is ordered relative to every other multicast and to membership
	// changes.
	GBCAST = protos.GBCAST
)

// Well-known entry points. Applications use EntryUserBase and above.
const (
	EntryDefault       = addr.EntryDefault
	EntryMembership    = addr.EntryMembership
	EntryStateTransfer = addr.EntryStateTransfer
	EntryGenericCCRply = addr.EntryGenericCCRply
	EntryConfig        = addr.EntryConfig
	EntryNews          = addr.EntryNews
	EntryUserBase      = addr.EntryUserBase
)

// Site-event kinds.
const (
	SiteFailed    = fdetect.SiteFailed
	SiteRecovered = fdetect.SiteRecovered
)

// Partition-handling policies (ClusterConfig.Merge).
const (
	// MergeAuto enforces the primary-partition rule and merges a minority
	// partition back automatically once it heals. The default.
	MergeAuto = protos.MergeAuto
	// MergeManual enforces the primary-partition rule but leaves the merge
	// to the application (Site.MergeGroup).
	MergeManual = protos.MergeManual
	// MergeNone disables the primary-partition rule: the paper's original
	// crash-only fault model, in which a partitioned minority forms a
	// split-brain view and recovers by restarting.
	MergeNone = protos.MergeNone
)

// ErrNonPrimary is returned by writes (Cast, Join, Leave, group creation
// traffic) addressed to a group whose local copy is stranded in a
// non-primary (minority) partition. The copy is read-only until the
// partition heals and the merge protocol rejoins the primary.
var ErrNonPrimary = protos.ErrNonPrimary

// NewMessage returns an empty message.
func NewMessage() *Message { return msg.New() }

// UnmarshalMessage decodes a message previously produced by Message.Marshal.
func UnmarshalMessage(b []byte) (*Message, error) { return msg.Unmarshal(b) }

// Text builds a message with a single string field named "body"; most of the
// examples and tests use it as a convenient payload constructor.
func Text(body string) *Message { return msg.New().PutString("body", body) }

// PaperNetConfig returns the simulated-LAN parameters calibrated to the
// paper's 1987 testbed (Section 7 / Figure 3): 10 µs intra-site hops, 16 ms
// inter-site packets, a 10 Mbit/s Ethernet and 4 KB packet fragmentation.
func PaperNetConfig() simnet.Config { return simnet.PaperConfig() }

// FastNetConfig returns near-zero network delays for tests.
func FastNetConfig() simnet.Config { return simnet.FastConfig() }
