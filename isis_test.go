package isis

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTestCluster builds a fast cluster for tests.
func newTestCluster(t *testing.T, sites int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Sites:        sites,
		CallTimeout:  2 * time.Second,
		ReplyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func spawn(t *testing.T, c *Cluster, site SiteID) *Process {
	t.Helper()
	p, err := c.Site(site).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func waitUntil(t *testing.T, what string, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// echoService builds an n-member group named name whose members reply to
// every request at EntryUserBase with "echo-<rank>:<body>".
func echoService(t *testing.T, c *Cluster, name string, sites ...SiteID) ([]*Process, Address) {
	t.Helper()
	members := make([]*Process, len(sites))
	var gid Address
	for i, s := range sites {
		p := spawn(t, c, s)
		members[i] = p
		rank := i
		p.BindEntry(EntryUserBase, func(m *Message) {
			body := m.GetString("body", "")
			_ = p.Reply(m, NewMessage().PutString("body", fmt.Sprintf("echo-%d:%s", rank, body)))
		})
		if i == 0 {
			v, err := p.CreateGroup(name)
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName(name, JoinOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for the full membership to be visible to the creator.
	waitUntil(t, "full service membership", 5*time.Second, func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == len(sites)
	})
	return members, gid
}

func TestClusterLifecycle(t *testing.T) {
	c := newTestCluster(t, 3)
	if len(c.Sites()) != 3 {
		t.Fatalf("Sites = %d", len(c.Sites()))
	}
	if c.Site(2) == nil || c.Site(2).ID() != 2 {
		t.Error("Site(2) wrong")
	}
	if c.Site(99) != nil {
		t.Error("Site(99) should not exist")
	}
	s, err := c.AddSite(10)
	if err != nil || s.ID() != 10 {
		t.Fatalf("AddSite: %v", err)
	}
	if err := c.CrashSite(10); err != nil {
		t.Fatal(err)
	}
	if c.Site(10) != nil {
		t.Error("crashed site still listed")
	}
	if err := c.CrashSite(10); err != ErrNoSuchSite {
		t.Errorf("double crash err = %v", err)
	}
	if sim, ok := c.Network(); !ok || sim == nil {
		t.Error("Network() not available on simnet backend")
	}
}

func TestAsyncCastDeliversToGroup(t *testing.T) {
	c := newTestCluster(t, 2)
	var mu sync.Mutex
	var got []string

	a := spawn(t, c, 1)
	b := spawn(t, c, 2)
	for _, p := range []*Process{a, b} {
		p := p
		p.BindEntry(EntryUserBase, func(m *Message) {
			mu.Lock()
			got = append(got, m.GetString("body", ""))
			mu.Unlock()
		})
	}
	v, err := a.CreateGroup("announce")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	replies, err := a.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("news"))
	if err != nil {
		t.Fatal(err)
	}
	if replies != nil {
		t.Error("async cast returned replies")
	}
	waitUntil(t, "both members to receive", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
}

func TestCastCollectsOneReply(t *testing.T) {
	c := newTestCluster(t, 3)
	_, gid := echoService(t, c, "echo1", 1, 2)
	client := spawn(t, c, 3)

	reply, err := client.Query(CBCAST, []Address{gid}, EntryUserBase, Text("hi"))
	if err != nil {
		t.Fatal(err)
	}
	body := reply.GetString("body", "")
	if body != "echo-0:hi" && body != "echo-1:hi" {
		t.Errorf("reply body = %q", body)
	}
	if reply.Sender().IsNil() {
		t.Error("reply has no sender")
	}
}

func TestCastCollectsAllReplies(t *testing.T) {
	c := newTestCluster(t, 3)
	_, gid := echoService(t, c, "echoAll", 1, 2, 3)
	client := spawn(t, c, 1)

	replies, err := client.Cast(CBCAST, []Address{gid}, EntryUserBase, Text("q"), Replies(All))
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("got %d replies, want 3", len(replies))
	}
	seen := map[string]bool{}
	for _, r := range replies {
		seen[r.GetString("body", "")] = true
	}
	for i := 0; i < 3; i++ {
		if !seen[fmt.Sprintf("echo-%d:q", i)] {
			t.Errorf("missing reply from member %d: %v", i, seen)
		}
	}
}

func TestNullRepliesAreNotReturnedButCount(t *testing.T) {
	c := newTestCluster(t, 2)
	// Two members: one replies normally, the other always sends a null
	// reply (a hot standby, Section 5 step 4).
	worker := spawn(t, c, 1)
	standby := spawn(t, c, 2)
	worker.BindEntry(EntryUserBase, func(m *Message) {
		_ = worker.Reply(m, Text("real-answer"))
	})
	standby.BindEntry(EntryUserBase, func(m *Message) {
		_ = standby.NullReply(m)
	})
	v, err := worker.CreateGroup("standbyish")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := standby.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	client := spawn(t, c, 2)
	replies, err := client.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("q"), Replies(All))
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0].GetString("body", "") != "real-answer" {
		t.Errorf("replies = %v", replies)
	}
}

func TestCastAllNullsReturnsNoResponders(t *testing.T) {
	c := newTestCluster(t, 1)
	member := spawn(t, c, 1)
	member.BindEntry(EntryUserBase, func(m *Message) { _ = member.NullReply(m) })
	v, err := member.CreateGroup("onlynulls")
	if err != nil {
		t.Fatal(err)
	}
	client := spawn(t, c, 1)
	replies, err := client.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("q"), Replies(1))
	if err != ErrNoResponders {
		t.Errorf("err = %v, want ErrNoResponders", err)
	}
	if len(replies) != 0 {
		t.Errorf("replies = %v", replies)
	}
}

func TestCastToIndividualProcess(t *testing.T) {
	c := newTestCluster(t, 2)
	server := spawn(t, c, 1)
	server.BindEntry(EntryUserBase, func(m *Message) {
		_ = server.Reply(m, Text("pong"))
	})
	client := spawn(t, c, 2)
	reply, err := client.Query(CBCAST, []Address{server.Address()}, EntryUserBase, Text("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.GetString("body", "") != "pong" {
		t.Errorf("reply = %v", reply.Format())
	}
}

func TestReplyWithCopies(t *testing.T) {
	c := newTestCluster(t, 2)
	coordinator := spawn(t, c, 1)
	cohort := spawn(t, c, 2)
	var mu sync.Mutex
	var cohortCopies []*Message
	cohort.BindEntry(EntryGenericCCRply, func(m *Message) {
		mu.Lock()
		cohortCopies = append(cohortCopies, m)
		mu.Unlock()
	})
	coordinator.BindEntry(EntryUserBase, func(m *Message) {
		_ = coordinator.ReplyWithCopies(m, Text("result"), []Address{cohort.Address()}, EntryGenericCCRply)
	})
	client := spawn(t, c, 2)
	reply, err := client.Query(CBCAST, []Address{coordinator.Address()}, EntryUserBase, Text("work"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.GetString("body", "") != "result" {
		t.Errorf("caller reply = %v", reply.Format())
	}
	waitUntil(t, "cohort copy", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(cohortCopies) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if cohortCopies[0].GetString("body", "") != "result" {
		t.Errorf("cohort copy = %v", cohortCopies[0].Format())
	}
}

func TestDuplicateRepliesDiscarded(t *testing.T) {
	c := newTestCluster(t, 1)
	member := spawn(t, c, 1)
	member.BindEntry(EntryUserBase, func(m *Message) {
		// Reply twice: the second must be silently discarded.
		_ = member.Reply(m, Text("first"))
		_ = member.Reply(m, Text("second"))
	})
	v, err := member.CreateGroup("dup")
	if err != nil {
		t.Fatal(err)
	}
	client := spawn(t, c, 1)
	replies, err := client.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("q"), Replies(All))
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 {
		t.Errorf("got %d replies, want 1 (duplicates discarded)", len(replies))
	}
}

func TestReplyToNonRequestFails(t *testing.T) {
	c := newTestCluster(t, 1)
	p := spawn(t, c, 1)
	if err := p.Reply(NewMessage(), Text("x")); err != ErrNotARequest {
		t.Errorf("err = %v, want ErrNotARequest", err)
	}
}

func TestMonitorSeesMembershipChanges(t *testing.T) {
	c := newTestCluster(t, 2)
	a := spawn(t, c, 1)
	v, err := a.CreateGroup("watched")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sizes []int
	a.Monitor(v.Group, func(view View) {
		mu.Lock()
		sizes = append(sizes, view.Size())
		mu.Unlock()
	})
	b := spawn(t, c, 2)
	if _, err := b.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := b.Leave(v.Group); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "join and leave notifications", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(sizes) >= 2 && sizes[len(sizes)-1] == 1
	})
	mu.Lock()
	defer mu.Unlock()
	// The monitor may also have observed the initial single-member view,
	// depending on registration timing; the join (2) and leave (1) must be
	// the last two observations in that order.
	n := len(sizes)
	if sizes[n-2] != 2 || sizes[n-1] != 1 {
		t.Errorf("membership sizes observed = %v", sizes)
	}
}

func TestStateTransferThroughPublicAPI(t *testing.T) {
	c := newTestCluster(t, 2)
	first := spawn(t, c, 1)
	v, err := first.CreateGroup("db")
	if err != nil {
		t.Fatal(err)
	}
	// The first member's "database".
	if err := first.SetStateProvider(v.Group, func() [][]byte {
		return [][]byte{[]byte("row1"), []byte("row2"), []byte("row3")}
	}); err != nil {
		t.Fatal(err)
	}
	second := spawn(t, c, 2)
	var mu sync.Mutex
	var rows []string
	done := false
	if _, err := second.Join(v.Group, JoinOptions{
		StateReceiver: func(b []byte, last bool) {
			mu.Lock()
			defer mu.Unlock()
			if len(b) > 0 {
				rows = append(rows, string(b))
			}
			if last {
				done = true
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "state transfer", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
	mu.Lock()
	defer mu.Unlock()
	if len(rows) != 3 || rows[0] != "row1" || rows[2] != "row3" {
		t.Errorf("rows = %v", rows)
	}
}

func TestKilledProcessTriggersFailureView(t *testing.T) {
	c := newTestCluster(t, 2)
	a := spawn(t, c, 1)
	b := spawn(t, c, 2)
	v, err := a.CreateGroup("fragile")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lastSize int
	a.Monitor(v.Group, func(view View) {
		mu.Lock()
		lastSize = view.Size()
		mu.Unlock()
	})
	if err := b.Kill(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "failure view at the survivor", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return lastSize == 1
	})
	if b.Alive() {
		t.Error("killed process reports alive")
	}
	if _, err := b.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("zombie")); err != ErrProcessKilled {
		t.Errorf("cast from killed process err = %v", err)
	}
	if _, err := b.CreateGroup("nope"); err != ErrProcessKilled {
		t.Errorf("create from killed process err = %v", err)
	}
}

func TestCastWaitsForRepliesAcrossMemberFailure(t *testing.T) {
	c := newTestCluster(t, 3)
	// Two members; one never replies and is killed while the caller waits
	// for ALL replies. The caller must return once the survivor has replied
	// and the failure has been observed, rather than timing out.
	replier := spawn(t, c, 1)
	replier.BindEntry(EntryUserBase, func(m *Message) {
		_ = replier.Reply(m, Text("ok"))
	})
	silent := spawn(t, c, 2)
	silent.BindEntry(EntryUserBase, func(m *Message) { /* never replies */ })
	v, err := replier.CreateGroup("halfdead")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := silent.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	client := spawn(t, c, 3)
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = silent.Kill()
	}()
	start := time.Now()
	replies, err := client.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("q"), Replies(All))
	if err != nil {
		t.Fatalf("cast: %v", err)
	}
	if len(replies) != 1 || replies[0].GetString("body", "") != "ok" {
		t.Errorf("replies = %v", replies)
	}
	if time.Since(start) > 4*time.Second {
		t.Error("cast waited for the full timeout despite the failure")
	}
}

func TestFlushFromPublicAPI(t *testing.T) {
	c := newTestCluster(t, 2)
	members, gid := echoService(t, c, "flushable", 1, 2)
	for i := 0; i < 3; i++ {
		if _, err := members[0].Cast(ABCAST, []Address{gid}, EntryUserBase, Text(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := members[0].Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestEntriesAndFilters(t *testing.T) {
	c := newTestCluster(t, 1)
	p := spawn(t, c, 1)
	var mu sync.Mutex
	var accepted []string
	p.AddFilter(func(e EntryID, m *Message) bool {
		return m.GetString("body", "") != "blocked"
	})
	p.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		accepted = append(accepted, m.GetString("body", ""))
		mu.Unlock()
	})
	v, err := p.CreateGroup("filtered")
	if err != nil {
		t.Fatal(err)
	}
	sender := spawn(t, c, 1)
	for _, b := range []string{"blocked", "allowed"} {
		if _, err := sender.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text(b)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "filtered delivery", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(accepted) >= 1
	})
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(accepted) != 1 || accepted[0] != "allowed" {
		t.Errorf("accepted = %v", accepted)
	}
}

func TestClusterCounters(t *testing.T) {
	c := newTestCluster(t, 2)
	members, gid := echoService(t, c, "counted", 1, 2)
	before := c.Counters()
	if _, err := members[0].Cast(CBCAST, []Address{gid}, EntryUserBase, Text("x")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "counter increase", 3*time.Second, func() bool {
		return c.Counters().CBCASTs > before.CBCASTs
	})
	if c.Counters().Delivered <= before.Delivered {
		t.Error("Delivered counter did not advance")
	}
}

func TestSiteCrashRemovesMembersFromViews(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Sites:        3,
		CallTimeout:  2 * time.Second,
		ReplyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	members, gid := echoService(t, c, "resilient", 1, 2, 3)
	if err := c.CrashSite(3); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "view without the crashed site", 10*time.Second, func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 2
	})
	// The service still answers queries.
	client := spawn(t, c, 2)
	replies, err := client.Cast(CBCAST, []Address{gid}, EntryUserBase, Text("post-crash"), Replies(All))
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Errorf("replies after crash = %d, want 2", len(replies))
	}
}
