package isis_test

// Benchmark harness: one benchmark per evaluation artifact of the paper
// (Table 1, Figure 2, Figure 3, the Section 5 twenty-questions rates, the
// Section 7 CPU-utilisation observation) plus micro-benchmarks of the three
// primitives and two design-choice ablations. The same harnesses are
// exposed as a command-line tool, cmd/isis-bench, which prints the paper's
// tables and series in text form; EXPERIMENTS.md records paper-vs-measured.

import (
	"testing"
	"time"

	isis "repro"
	"repro/internal/bench"
	"repro/internal/simnet"
	"repro/internal/tools/replica"
	"repro/internal/transport"
)

// paperSizes are the message sizes of Figure 2.
var paperSizes = []int{10, 100, 1000, 10000}

// BenchmarkTable1 regenerates Table 1: the multicast cost of each toolkit
// routine. The counts are reported as benchmark metrics and printed.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.FormatTable1(rows))
		}
	}
}

// BenchmarkFigure2Throughput regenerates the asynchronous-CBCAST throughput
// panel of Figure 2 (bytes/second versus message size, 2 destinations) on
// the paper-calibrated network.
func BenchmarkFigure2Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFigure2Throughput(bench.SimChoice(simnet.PaperConfig()), 2, paperSizes, 200*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.FormatFigure2(points))
			for _, p := range points {
				if p.SizeBytes == 1000 {
					b.ReportMetric(p.Throughput, "bytes/s@1KB")
				}
			}
		}
	}
}

// BenchmarkFigure2Latency regenerates the latency panels of Figure 2: the
// latency of CBCAST, ABCAST and GBCAST versus message size with one reply
// from a local destination.
func BenchmarkFigure2Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all []bench.Fig2Point
		for _, proto := range []isis.Protocol{isis.CBCAST, isis.ABCAST, isis.GBCAST} {
			points, err := bench.RunFigure2Latency(bench.SimChoice(simnet.PaperConfig()), proto, 2, paperSizes, 3)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, points...)
		}
		if i == 0 {
			b.Logf("\n%s", bench.FormatFigure2(all))
		}
	}
}

// BenchmarkFigure3Breakdown regenerates Figure 3: the decomposition of one
// ABCAST's execution time on the paper-calibrated network, dominated by the
// three inter-site packets of the two-phase protocol.
func BenchmarkFigure3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		breakdown, err := bench.RunFigure3(simnet.PaperConfig(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", bench.FormatFigure3(breakdown))
			b.ReportMetric(breakdown.TotalMs, "ms/abcast")
			b.ReportMetric(float64(breakdown.CriticalPackets), "intersite-msgs")
		}
	}
}

// BenchmarkTwentyQuestions regenerates the Section 5 end-to-end numbers: the
// aggregate query and replicated-update rates of the twenty-questions
// service with members at 4 sites (the paper reports ~30 queries/s or ~5
// updates/s on 1987 hardware).
func BenchmarkTwentyQuestions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTwentyQuestions(simnet.PaperConfig(), 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("twenty questions: %.1f queries/s, %.1f updates/s (paper: ~30 and ~5)",
				res.QueriesPerSec, res.UpdatesPerSec)
			b.ReportMetric(res.QueriesPerSec, "queries/s")
			b.ReportMetric(res.UpdatesPerSec, "updates/s")
		}
	}
}

// BenchmarkSenderUtilization regenerates the Section 7 CPU observation:
// asynchronous CBCAST keeps the sending site busy, ABCAST leaves it idle
// waiting for remote proposals.
func BenchmarkSenderUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.RunSenderUtilization(simnet.PaperConfig(), 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.Logf("%-35s sender utilisation %.0f%%", r.Workload, 100*r.Utilization)
			}
			b.ReportMetric(100*results[0].Utilization, "%async")
			b.ReportMetric(100*results[1].Utilization, "%abcast")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives (fast network, per-operation cost).

func primitiveCluster(b *testing.B, sites int) (*isis.Cluster, []*isis.Process, isis.Address) {
	return primitiveClusterTr(b, sites, transport.Config{})
}

func primitiveClusterTr(b *testing.B, sites int, trCfg transport.Config) (*isis.Cluster, []*isis.Process, isis.Address) {
	b.Helper()
	// Heartbeats are disabled: at benchmark rates (tens of thousands of
	// multicasts per second on one machine) the aggressive test-grade
	// failure-detector timeouts produce false suspicions, which is not what
	// these micro-benchmarks measure.
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 5 * time.Second,
		ReplyTimeout: 10 * time.Second, DisableHeartbeats: true, Transport: trCfg})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	procs := make([]*isis.Process, sites)
	var gid isis.Address
	for i := 0; i < sites; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			b.Fatal(err)
		}
		p.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
			if m.Has("@session") {
				_ = p.Reply(m, isis.NewMessage())
			}
		})
		procs[i] = p
		if i == 0 {
			v, err := p.CreateGroup("micro")
			if err != nil {
				b.Fatal(err)
			}
			gid = v.Group
		} else if _, err := p.JoinByName("micro", isis.JoinOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	return c, procs, gid
}

// BenchmarkCBCASTAsync measures the sender-side cost of an asynchronous
// CBCAST to a 3-member group (no artificial network delays).
func BenchmarkCBCASTAsync(b *testing.B) {
	_, procs, gid := primitiveCluster(b, 3)
	payload := isis.Text("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := procs[0].Cast(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = procs[0].Flush()
}

// BenchmarkABCASTRoundTrip measures an ABCAST followed by one reply.
func BenchmarkABCASTRoundTrip(b *testing.B) {
	_, procs, gid := primitiveCluster(b, 3)
	payload := isis.Text("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := procs[0].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, payload, isis.Replies(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBCAST measures a user-level GBCAST to a 3-member group.
func BenchmarkGBCAST(b *testing.B) {
	_, procs, gid := primitiveCluster(b, 3)
	payload := isis.Text("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := procs[0].Cast(isis.GBCAST, []isis.Address{gid}, isis.EntryUserBase, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupRPCOneReply measures a full group RPC (query + one reply)
// issued by a non-member client.
func BenchmarkGroupRPCOneReply(b *testing.B) {
	c, _, gid := primitiveCluster(b, 3)
	client, err := c.Site(2).Spawn()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Lookup("micro"); err != nil {
		b.Fatal(err)
	}
	payload := isis.Text("q")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (design-choice experiments listed in DESIGN.md).

// BenchmarkAblationBatching compares the asynchronous CBCAST hot path with
// transport packet coalescing on (the default) and off (one frame per
// fragment, dedicated acks — the seed's behaviour). The delta is the win the
// hot-path overhaul buys on the Figure 2 throughput panel.
func BenchmarkAblationBatching(b *testing.B) {
	for _, mode := range []struct {
		name      string
		unbatched bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			_, procs, gid := primitiveClusterTr(b, 3, transport.Config{DisableBatching: mode.unbatched})
			payload := isis.Text("x")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := procs[0].Cast(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = procs[0].Flush()
		})
	}
}

// BenchmarkAblationOrdering compares CBCAST-mode and ABCAST-mode replicated
// updates for a single-writer item: the causal mode is sufficient there, and
// this ablation quantifies what the stronger ordering costs per update.
func BenchmarkAblationOrdering(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    replica.Mode
	}{{"causal", replica.Causal}, {"total", replica.Total}} {
		b.Run(mode.name, func(b *testing.B) {
			c, procs, gid := primitiveCluster(b, 3)
			_ = c
			items := make([]*replica.Item, len(procs))
			for i, p := range procs {
				var v int64
				items[i] = replica.Manage(p, gid, "abl",
					func(args *isis.Message) { v += args.GetInt("d", 0) }, nil,
					replica.Options{Mode: mode.m, Entry: isis.EntryUserBase + 9})
			}
			upd := isis.NewMessage().PutInt("d", 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := items[0].Update(upd); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = procs[0].Flush()
		})
	}
}

// BenchmarkAblationExecutionStyle compares the two request-execution styles
// of Section 3.3 for a read-style request: full replication (every member
// replies, caller waits for all) versus the coordinator-style single reply.
func BenchmarkAblationExecutionStyle(b *testing.B) {
	for _, style := range []struct {
		name string
		want int
	}{{"coordinator-single-reply", 1}, {"full-replication-all-replies", isis.All}} {
		b.Run(style.name, func(b *testing.B) {
			c, _, gid := primitiveCluster(b, 3)
			client, err := c.Site(1).Spawn()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Lookup("micro"); err != nil {
				b.Fatal(err)
			}
			payload := isis.Text("q")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Cast(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, payload, isis.Replies(style.want)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
