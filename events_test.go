package isis

// Public-surface tests for the operational event stream and the
// request-outcome API: the partition lifecycle must tell a coherent story
// through Site.Events on both network backends, and a timed-out GBCAST must
// be answerable with Committed / Aborted / Unknown afterwards.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fdetect"
	"repro/internal/netback"
)

// fastDetector reacts to partitions within a few hundred milliseconds, which
// both backends need for a brisk partition test.
func fastDetector() fdetect.Config {
	return fdetect.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		InitialTimeout:    150 * time.Millisecond,
		MinTimeout:        100 * time.Millisecond,
		MaxTimeout:        500 * time.Millisecond,
		DeviationFactor:   4,
	}
}

func newBackendCluster(t *testing.T, backend string, sites int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Sites:        sites,
		Backend:      backend,
		Detector:     fastDetector(),
		CallTimeout:  2 * time.Second,
		ReplyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// collectEvents drains an event channel into a slice until cancel closes it.
func collectEvents(ch <-chan Event) (get func() []Event, wait func()) {
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range ch {
			mu.Lock()
			got = append(got, e)
			mu.Unlock()
		}
	}()
	get = func() []Event {
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), got...)
	}
	wait = func() { <-done }
	return get, wait
}

func firstIndex(evs []Event, k EventKind) int {
	for i, e := range evs {
		if e.Kind == k {
			return i
		}
	}
	return -1
}

// TestPartitionMergeEventSequence cuts the minority site of a three-member
// group off, heals it, and checks that the site's event stream tells the
// partition story in order: the copy wedges and loses primaryness, then a
// merge starts, lands, and primaryness resumes. The same sequence must come
// out of both network backends, using only the backend-neutral fault
// injector.
func TestPartitionMergeEventSequence(t *testing.T) {
	for _, backend := range []string{BackendSimnet, BackendTCP} {
		t.Run(backend, func(t *testing.T) {
			c := newBackendCluster(t, backend, 3)
			members, gid := echoService(t, c, "evseq-"+backend, 1, 2, 3)

			ch, cancel := c.Site(3).Events(EventFilter{
				Kinds: []EventKind{
					EventPartitionWedge, EventPrimaryLost,
					EventMergeStart, EventMergeLand, EventPrimaryResumed,
				},
				Group: gid,
			})
			get, wait := collectEvents(ch)

			fi, ok := c.Fabric().(netback.FaultInjector)
			if !ok {
				t.Fatalf("%s fabric does not support fault injection", backend)
			}
			fi.Partition(3, 1)
			fi.Partition(3, 2)

			waitUntil(t, "majority removes the stranded member", 15*time.Second, func() bool {
				v, ok := members[0].CurrentView(gid)
				return ok && v.Size() == 2
			})
			waitUntil(t, "minority wedges read-only", 15*time.Second, func() bool {
				return !members[2].GroupPrimary(gid)
			})

			fi.HealAll()
			waitUntil(t, "minority merges back and resumes", 30*time.Second, func() bool {
				v, ok := members[2].CurrentView(gid)
				return ok && v.Size() == 3 && members[2].GroupPrimary(gid)
			})
			// Give trailing events (PrimaryResumed is published just before
			// the public state flips) a moment to land, then stop.
			waitUntil(t, "primary-resumed event arrives", 5*time.Second, func() bool {
				return firstIndex(get(), EventPrimaryResumed) >= 0
			})
			cancel()
			wait()

			evs := get()
			wedge := firstIndex(evs, EventPartitionWedge)
			lost := firstIndex(evs, EventPrimaryLost)
			start := firstIndex(evs, EventMergeStart)
			land := firstIndex(evs, EventMergeLand)
			resumed := firstIndex(evs, EventPrimaryResumed)
			for name, idx := range map[string]int{
				"partition-wedge": wedge, "primary-lost": lost,
				"merge-start": start, "merge-land": land, "primary-resumed": resumed,
			} {
				if idx < 0 {
					t.Fatalf("event %s missing from stream: %v", name, evs)
				}
			}
			if !(wedge < start && lost < start && start < land && land < resumed) {
				t.Fatalf("incoherent event order (wedge=%d lost=%d start=%d land=%d resumed=%d): %v",
					wedge, lost, start, land, resumed, evs)
			}
			for _, e := range evs {
				if e.Site != 3 {
					t.Errorf("event from wrong site: %v", e)
				}
				if e.Group != gid {
					t.Errorf("event for wrong group: %v", e)
				}
			}
		})
	}
}

// TestClusterEventsMergesSites checks that the cluster-wide stream carries
// events from several sites, stamped with the observing site, and that
// cancel terminates it.
func TestClusterEventsMergesSites(t *testing.T) {
	c := newTestCluster(t, 3)
	ch, cancel := c.Events(EventFilter{Kinds: []EventKind{EventViewInstalled}})
	get, wait := collectEvents(ch)

	_, gid := echoService(t, c, "evmerge", 1, 2, 3)
	waitUntil(t, "view-installed events from every site", 10*time.Second, func() bool {
		sites := map[SiteID]bool{}
		for _, e := range get() {
			if e.Group == gid {
				sites[e.Site] = true
			}
		}
		return len(sites) == 3
	})
	cancel()
	wait()

	if st := c.EventStats(); st.Published == 0 {
		t.Error("cluster event stats report nothing published")
	}
}

// TestOutcomeUnknownThenAbortedForNeverPreparedRequest wedges the requester's
// site into a minority partition, so its GBCAST is refused before it ever
// reaches a coordinator. While isolated the outcome is Unknown — nobody can
// prove anything about the id. After the heal the settlement round must
// answer Aborted, and the answer must be definitive (the dedupe mark has
// moved past the id, so no straggler can ever execute it).
func TestOutcomeUnknownThenAbortedForNeverPreparedRequest(t *testing.T) {
	c := newBackendCluster(t, BackendSimnet, 3)
	members, gid := echoService(t, c, "outcome-np", 1, 2, 3)

	fi := c.Fabric().(netback.FaultInjector)
	fi.Partition(3, 1)
	fi.Partition(3, 2)
	waitUntil(t, "minority wedges read-only", 15*time.Second, func() bool {
		return !members[2].GroupPrimary(gid)
	})

	var rid RequestID
	_, err := members[2].Cast(GBCAST, []Address{gid}, EntryUserBase, Text("doomed"), TrackRequest(&rid))
	if !errors.Is(err, ErrNonPrimary) {
		t.Fatalf("wedged GBCAST err = %v, want ErrNonPrimary", err)
	}
	if rid == 0 {
		t.Fatal("failed Cast did not fill in the tracked request id")
	}

	// Isolated: the fate is undecidable, and saying so is the correct answer.
	if out, _ := members[2].Outcome(rid); out != OutcomeUnknown {
		t.Fatalf("isolated Outcome = %v, want unknown", out)
	}

	fi.HealAll()
	waitUntil(t, "minority merges back", 30*time.Second, func() bool {
		v, ok := members[2].CurrentView(gid)
		return ok && v.Size() == 3 && members[2].GroupPrimary(gid)
	})

	waitUntil(t, "outcome settles as aborted", 15*time.Second, func() bool {
		out, err := members[2].Outcome(rid)
		if out == OutcomeCommitted {
			t.Fatalf("Outcome = committed for a never-prepared request (err %v)", err)
		}
		return out == OutcomeAborted
	})

	// The group still works, and an unknown id is reported as such.
	if _, err := members[0].Cast(CBCAST, []Address{gid}, EntryUserBase, Text("alive")); err != nil {
		t.Fatal(err)
	}
	if _, err := members[2].Outcome(rid + 1<<40); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("foreign id err = %v, want ErrUnknownRequest", err)
	}
}

// TestCastOptionsPerCallTimeout pins the CastTimeout option: a Cast waiting
// for replies that never come must give up after the per-call timeout, not
// the process default.
func TestCastOptionsPerCallTimeout(t *testing.T) {
	c := newTestCluster(t, 2)
	// A member that never answers.
	p := spawn(t, c, 1)
	p.BindEntry(EntryUserBase, func(m *Message) {})
	v, err := p.CreateGroup("mute")
	if err != nil {
		t.Fatal(err)
	}
	client := spawn(t, c, 2)
	start := time.Now()
	_, err = client.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("anyone?"),
		Replies(1), CastTimeout(200*time.Millisecond))
	if !errors.Is(err, ErrReplyTimeout) {
		t.Fatalf("err = %v, want ErrReplyTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("per-call timeout not honoured: took %v", elapsed)
	}
}

// TestMonitorCancel pins that a cancelled pg_monitor callback stops firing.
func TestMonitorCancel(t *testing.T) {
	c := newTestCluster(t, 2)
	p := spawn(t, c, 1)
	v, err := p.CreateGroup("moncancel")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	cancel := p.Monitor(v.Group, func(View) {
		mu.Lock()
		calls++
		mu.Unlock()
	})

	joiner := spawn(t, c, 2)
	if _, err := joiner.Join(v.Group, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "monitor sees the join", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls >= 1
	})
	cancel()
	mu.Lock()
	frozen := calls
	mu.Unlock()

	if err := joiner.Leave(v.Group); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "creator sees the leave", 5*time.Second, func() bool {
		cv, ok := p.CurrentView(v.Group)
		return ok && cv.Size() == 1
	})
	mu.Lock()
	after := calls
	mu.Unlock()
	if after != frozen {
		t.Errorf("cancelled monitor fired %d more times", after-frozen)
	}
}

// TestWatchSitesCancel pins that the deprecated watch wrapper both delivers
// and honours its cancel.
func TestWatchSitesCancel(t *testing.T) {
	c := newTestCluster(t, 3)
	// Sites only monitor peers they have exchanged traffic with: put a group
	// across the cluster before crashing a member site.
	_, _ = echoService(t, c, "watchsites", 1, 2, 3)
	var mu sync.Mutex
	var seen []SiteEvent
	cancel := c.Site(1).WatchSites(func(ev SiteEvent) {
		mu.Lock()
		seen = append(seen, ev)
		mu.Unlock()
	})
	if err := c.CrashSite(3); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "failure event reaches the watcher", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range seen {
			if ev.Site == 3 && ev.Kind == SiteFailed {
				return true
			}
		}
		return false
	})
	cancel()
}

// TestEventStringsAreReadable smoke-checks the trace rendering used by the
// bench dump and the partition example.
func TestEventStringsAreReadable(t *testing.T) {
	c := newTestCluster(t, 2)
	ch, cancel := c.Events(EventFilter{})
	get, wait := collectEvents(ch)
	_, _ = echoService(t, c, "evstr", 1, 2)
	waitUntil(t, "some events", 5*time.Second, func() bool { return len(get()) > 0 })
	cancel()
	wait()
	for _, e := range get() {
		if s := e.String(); s == "" || s == fmt.Sprintf("#%d", e.Seq) {
			t.Fatalf("unreadable event rendering: %q", s)
		}
	}
}
