package isis

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/events"
	"repro/internal/fdetect"
	"repro/internal/netback"
	"repro/internal/protos"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/transport"
)

// Backend names accepted by ClusterConfig.Backend.
const (
	// BackendSimnet runs the cluster over the simulated LAN (the default).
	BackendSimnet = "simnet"
	// BackendTCP runs the cluster over real kernel TCP sockets on loopback.
	BackendTCP = "tcp"
)

// ClusterConfig parameterizes a simulated ISIS cluster.
type ClusterConfig struct {
	// Sites is the number of sites created up front (ids 1..Sites). More
	// can be added later with AddSite.
	Sites int
	// Backend selects the network fabric: BackendSimnet (the default, also
	// selected by "") or BackendTCP for real loopback sockets.
	Backend string
	// Net configures the simulated LAN; the zero value selects
	// FastNetConfig (no artificial delays), which is what tests want.
	// Benchmarks pass PaperNetConfig. Ignored under BackendTCP.
	Net simnet.Config
	// TCP configures the TCP backend; the zero value selects its defaults.
	// Ignored under BackendSimnet.
	TCP tcpnet.Config
	// Detector configures the failure detector at every site; the zero
	// value picks settings suited to the Net configuration.
	Detector fdetect.Config
	// Transport overrides the site-to-site transport configuration; the
	// zero value derives it from Net. The batching ablation benchmark uses
	// it to compare coalesced and unbatched hot paths.
	Transport transport.Config
	// CallTimeout bounds the toolkit's internal request/response exchanges.
	CallTimeout time.Duration
	// ReplyTimeout bounds how long Cast waits for replies before giving up
	// on destinations that have not answered. Defaults to 10 s.
	ReplyTimeout time.Duration
	// DisableHeartbeats silences the failure detector's periodic traffic;
	// benchmarks use it to keep the measured links quiet.
	DisableHeartbeats bool
	// Merge selects the partition-handling policy at every site. The zero
	// value MergeAuto enforces the primary-partition rule (only the
	// partition holding at least half of a group's last agreed view may
	// install views; a minority wedges read-only) and merges minority sites
	// back automatically when the partition heals.
	Merge MergePolicy
}

// Cluster is a simulated distributed system: a LAN plus one ISIS site
// (protocols daemon) per site id. All state is in-process; sites "crash" by
// detaching from the network.
type Cluster struct {
	cfg    ClusterConfig
	fabric netback.Network
	sim    *simnet.Network // non-nil only under BackendSimnet

	mu      sync.Mutex
	sites   map[SiteID]*Site
	lastInc map[SiteID]addr.Incarnation // highest incarnation ever used per site id
}

// ErrNoSuchSite is returned when addressing an unknown or crashed site.
var ErrNoSuchSite = errors.New("isis: no such site")

// NewCluster builds a cluster with cfg.Sites sites attached to a fresh
// simulated network.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if cfg.Net.QueueLen == 0 && cfg.Net.MaxPacket == 0 && cfg.Net.InterSiteDelay == 0 {
		cfg.Net = simnet.FastConfig()
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 10 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	c := &Cluster{
		cfg:     cfg,
		sites:   make(map[SiteID]*Site),
		lastInc: make(map[SiteID]addr.Incarnation),
	}
	switch cfg.Backend {
	case "", BackendSimnet:
		c.sim = simnet.New(cfg.Net)
		c.fabric = c.sim
	case BackendTCP:
		c.fabric = tcpnet.New(cfg.TCP)
	default:
		return nil, fmt.Errorf("isis: unknown backend %q", cfg.Backend)
	}
	for i := 1; i <= cfg.Sites; i++ {
		if _, err := c.AddSite(SiteID(i)); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Network exposes the simulated LAN (for statistics and simnet-specific
// fault injection). The boolean reports whether the cluster actually runs on
// the simnet backend; under BackendTCP it is false and the pointer nil, so
// callers must check it rather than dereference blindly. Backend-neutral
// fault injection is available through Fabric (both backends implement
// netback.FaultInjector).
func (c *Cluster) Network() (*simnet.Network, bool) { return c.sim, c.sim != nil }

// Fabric exposes the cluster's network backend, whichever kind it is.
func (c *Cluster) Fabric() netback.Network { return c.fabric }

// Events subscribes to the merged operational event stream of every live
// site: view installs and commits, primary loss and resumption, partition
// wedges, merge progress, flushes, ABCAST fences and re-solicitations,
// takeovers, relay repair, and site up/down transitions. Each event's Site
// field names the site that observed it. The filter restricts the stream
// (the zero EventFilter matches everything); the returned cancel
// unsubscribes every per-site subscription and eventually closes the
// channel. Events from sites added after the call are not included —
// subscribe again after growing the cluster. A reader that falls behind
// loses events rather than stalling the protocols (the per-event Seq field
// makes per-site gaps detectable).
func (c *Cluster) Events(f EventFilter) (<-chan Event, func()) {
	out := make(chan Event, events.DefaultQueue)
	var cancels []func()
	var wg sync.WaitGroup
	for _, s := range c.Sites() {
		ch, cancel := s.daemon.Events(f, 0)
		cancels = append(cancels, cancel)
		wg.Add(1)
		go func(ch <-chan events.Event) {
			defer wg.Done()
			for e := range ch {
				select {
				case out <- e:
				default: // reader fell behind: drop, never stall the source
				}
			}
		}(ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	var once sync.Once
	return out, func() {
		once.Do(func() {
			for _, cancel := range cancels {
				cancel()
			}
		})
	}
}

// AddSite attaches a new site (or restarts a crashed one with a fresh
// incarnation) and returns it.
func (c *Cluster) AddSite(id SiteID) (*Site, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A site id that has ever been used before comes back with a fresh
	// incarnation, whether the previous daemon is still attached or was
	// crashed (and removed from the map) earlier; lastInc records every
	// incarnation ever issued.
	inc := addr.Incarnation(0)
	if last, ok := c.lastInc[id]; ok {
		inc = last + 1
	}
	c.lastInc[id] = inc
	d, err := protos.New(protos.Config{
		Site:              id,
		Incarnation:       inc,
		Network:           c.fabric,
		Transport:         c.cfg.Transport,
		Detector:          c.cfg.Detector,
		CallTimeout:       c.cfg.CallTimeout,
		DisableHeartbeats: c.cfg.DisableHeartbeats,
		Merge:             c.cfg.Merge,
	})
	if err != nil {
		return nil, fmt.Errorf("isis: add site %d: %w", id, err)
	}
	if inc > 0 {
		d.AnnounceRestart()
	}
	s := &Site{cluster: c, id: id, incarnation: inc, daemon: d}
	c.sites[id] = s
	return s, nil
}

// Site returns the site with the given id, or nil if it does not exist (or
// has crashed and not been restarted).
func (c *Cluster) Site(id SiteID) *Site {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sites[id]
}

// Sites returns all live sites in ascending id order.
func (c *Cluster) Sites() []*Site {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Site, 0, len(c.sites))
	for _, s := range c.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CrashSite simulates the total failure of a site: its daemon (and therefore
// every process at the site) stops, and the site detaches from the network.
// Other sites detect the crash by timeout.
func (c *Cluster) CrashSite(id SiteID) error {
	c.mu.Lock()
	s, ok := c.sites[id]
	if ok {
		delete(c.sites, id)
	}
	c.mu.Unlock()
	if !ok {
		return ErrNoSuchSite
	}
	s.daemon.Close()
	return nil
}

// RestartSite models a site crashing and coming back up: the old daemon (if
// one is still attached) stops and detaches from the network, and a fresh
// daemon with a new incarnation re-attaches under the same site id. All
// processes of the old incarnation are gone; the application re-spawns and
// re-joins its groups (with a state transfer) exactly as the paper's
// recovery model prescribes.
func (c *Cluster) RestartSite(id SiteID) (*Site, error) {
	if err := c.CrashSite(id); err != nil && !errors.Is(err, ErrNoSuchSite) {
		return nil, err
	}
	return c.AddSite(id)
}

// Counters aggregates the protocol counters of every live site.
func (c *Cluster) Counters() Counters {
	var total Counters
	for _, s := range c.Sites() {
		total.Add(s.daemon.Counters())
	}
	return total
}

// EventStats aggregates every live site's event-bus statistics: how many
// events were published and how many were dropped at slow subscribers.
func (c *Cluster) EventStats() EventStats {
	var total EventStats
	total.ByKind = make(map[EventKind]uint64)
	for _, s := range c.Sites() {
		st := s.daemon.EventStats()
		total.Published += st.Published
		total.Dropped += st.Dropped
		for k, n := range st.ByKind {
			total.ByKind[k] += n
		}
	}
	return total
}

// Close shuts down every site and the network.
func (c *Cluster) Close() {
	for _, s := range c.Sites() {
		s.daemon.Close()
	}
	c.fabric.Close()
}

// Site is one computing site of the cluster.
type Site struct {
	cluster     *Cluster
	id          SiteID
	incarnation addr.Incarnation
	daemon      *protos.Daemon
}

// ID returns the site identifier.
func (s *Site) ID() SiteID { return s.id }

// Daemon exposes the site's protocols process; the toolkit tools and the
// benchmark harness use it directly.
func (s *Site) Daemon() *protos.Daemon { return s.daemon }

// Cluster returns the owning cluster.
func (s *Site) Cluster() *Cluster { return s.cluster }

// Events subscribes to this site's operational event stream. The filter
// restricts the stream (the zero EventFilter matches everything); the
// returned cancel unsubscribes and closes the channel. A subscriber that
// falls behind its bounded queue loses events rather than stalling the
// protocols; the per-event Seq field makes gaps detectable.
func (s *Site) Events(f EventFilter) (<-chan Event, func()) {
	return s.daemon.Events(f, 0)
}

// WatchSites invokes the callback for failure-detector events observed at
// this site (used by the recovery manager and the news service). The
// returned cancel stops the subscription.
//
// Deprecated: subscribe to Events with kinds EventSiteDown / EventSiteUp.
func (s *Site) WatchSites(cb func(SiteEvent)) (cancel func()) { return s.daemon.WatchSites(cb) }

// WatchPrimary invokes the callback for primary-status transitions of the
// groups hosted at this site: (gid, false) when a partition strands this
// site's copy of a group in a read-only minority, (gid, true) when the copy
// resumes or merges back into the primary partition. The returned cancel
// stops the subscription.
//
// Deprecated: subscribe to Events with kinds EventPrimaryLost /
// EventPrimaryResumed.
func (s *Site) WatchPrimary(cb func(gid Address, primary bool)) (cancel func()) {
	return s.daemon.WatchPrimary(cb)
}

// GroupPrimary reports whether this site's copy of the group is in the
// primary partition (always true for groups the site does not host).
func (s *Site) GroupPrimary(gid Address) bool { return s.daemon.GroupPrimary(gid) }

// MergeGroup merges this site's non-primary copy of a group back into the
// primary partition: the stale local state is discarded and every local
// member rejoins with a state transfer. Under the default MergeAuto policy
// the toolkit does this automatically when the partition heals; MergeManual
// deployments call it when the application decides the time is right. A
// no-op if the group is not in non-primary mode at this site.
func (s *Site) MergeGroup(gid Address) error { return s.daemon.MergeGroup(gid) }

// Spawn creates a new client process at this site.
func (s *Site) Spawn() (*Process, error) {
	p := &Process{
		site:         s,
		replyTimeout: s.cluster.cfg.ReplyTimeout,
		monitors:     make(map[Address]map[int]func(View)),
		pending:      make(map[int64]*pendingCall),
		providers:    make(map[Address]func() [][]byte),
	}
	p.tasks = newTaskManager()
	a, err := s.daemon.RegisterProcess(p.onDeliver, p.onView)
	if err != nil {
		return nil, err
	}
	p.addr = a
	return p, nil
}
