package isis

import (
	"time"

	"repro/internal/addr"
	"repro/internal/msg"
	"repro/internal/protos"
)

// protosJoinOptions aliases the daemon's join options so process.go does not
// import the protos package directly in its public signatures.
type protosJoinOptions = protos.JoinOptions

// All requests replies from every destination of a Cast (Replies(All)).
const All = -1

// Reply classification values carried in the FReply system field.
const (
	replyNormal = 1
	replyNull   = 2
)

// RequestID names a group request for later outcome queries. A Cast with
// TrackRequest fills one in; Process.Outcome answers what became of it.
type RequestID int64

// CastOption configures one Cast or Query call.
type CastOption func(*castOptions)

type castOptions struct {
	want    int
	timeout time.Duration
	track   *RequestID
}

// Replies makes the Cast wait for n normal replies (or Replies(All) for a
// reply from every destination) before returning. Without a Replies option a
// Cast is asynchronous: the caller continues immediately and nil replies are
// returned.
func Replies(n int) CastOption { return func(o *castOptions) { o.want = n } }

// CastTimeout overrides the process's configured reply timeout for this one
// call.
func CastTimeout(d time.Duration) CastOption { return func(o *castOptions) { o.timeout = d } }

// TrackRequest records the request id the system assigned to this call's
// group request, so its fate can be queried with Process.Outcome if the call
// itself fails or times out. The id is filled in even when Cast returns an
// error, as long as the request was assigned an id before the failure (a
// zero id means the request never entered the system and cannot have
// committed). Only GBCAST requests are tracked; for other protocols the id
// stays zero.
func TrackRequest(rid *RequestID) CastOption { return func(o *castOptions) { o.track = rid } }

// Cast sends a message to a destination list — typically a group address,
// possibly plus individual processes — using the selected multicast
// primitive, and collects replies (Section 3.2 "Broadcasts and group RPC").
//
// With no options the broadcast is asynchronous: the caller continues
// immediately and nil is returned. Replies(n) waits for n normal replies and
// Replies(All) for a reply from every destination. Null replies (sent by
// destinations that do not intend to answer, such as hot standbys) are never
// returned but count as "this destination has responded", so a caller
// waiting for All is not delayed by them. If destinations fail before enough
// replies arrive, Cast returns the replies it has together with
// ErrNoResponders. CastTimeout bounds the wait per call; TrackRequest makes
// a GBCAST's fate queryable with Outcome after a failure.
func (p *Process) Cast(proto Protocol, dests []Address, entry EntryID, m *Message, opts ...CastOption) ([]*Message, error) {
	o := castOptions{timeout: p.replyTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.track != nil {
		*o.track = 0
	}
	if !p.Alive() {
		return nil, ErrProcessKilled
	}
	if m == nil {
		m = NewMessage()
	}
	payload := m.Clone()
	payload.StripSystemFields()

	if o.want == 0 {
		_, rid, err := p.site.daemon.MulticastRequest(p.addr, proto, addr.List(dests), entry, payload)
		if o.track != nil {
			*o.track = RequestID(rid)
		}
		return nil, err
	}

	// Register the pending call before sending so replies cannot race past.
	p.mu.Lock()
	p.session++
	session := p.session
	call := &pendingCall{replies: make(chan *Message, 64)}
	p.pending[session] = call
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pending, session)
		p.mu.Unlock()
	}()
	payload.PutInt(msg.FSession, session)

	_, rid, err := p.site.daemon.MulticastRequest(p.addr, proto, addr.List(dests), entry, payload)
	if o.track != nil {
		*o.track = RequestID(rid)
	}
	if err != nil {
		return nil, err
	}
	return p.collectReplies(call, dests, o.want, o.timeout)
}

// Query is shorthand for a Cast that waits for exactly one reply and returns
// it (or nil with an error). Options other than Replies are honoured (a
// Replies option is ignored: Query always wants exactly one reply).
func (p *Process) Query(proto Protocol, dests []Address, entry EntryID, m *Message, opts ...CastOption) (*Message, error) {
	replies, err := p.Cast(proto, dests, entry, m, append(append([]CastOption{}, opts...), Replies(1))...)
	if err != nil {
		return nil, err
	}
	if len(replies) == 0 {
		return nil, ErrNoResponders
	}
	return replies[0], nil
}

// collectReplies waits until the desired number of normal replies has
// arrived, or every remaining destination has failed or declined (null
// replies), or the reply timeout expires.
func (p *Process) collectReplies(call *pendingCall, dests []Address, want int, timeout time.Duration) ([]*Message, error) {
	var replies []*Message
	responded := make(map[Address]bool)
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	recheck := time.NewTicker(5 * time.Millisecond)
	defer recheck.Stop()
	lastRefresh := time.Now()

	expected := p.expectedResponders(dests)
	for {
		if want != All && len(replies) >= want {
			return replies, nil
		}
		if want == All && expected > 0 && len(responded) >= expected {
			return replies, nil
		}
		if expected == 0 {
			if len(replies) > 0 || want == All {
				return replies, nil
			}
			return replies, ErrNoResponders
		}
		select {
		case r := <-call.replies:
			sender := r.Sender()
			if responded[sender] {
				continue // duplicate replies are discarded silently
			}
			responded[sender] = true
			if r.GetInt(msg.FReply, replyNormal) == replyNormal {
				replies = append(replies, r)
			}
			// A null reply just marks the destination as having responded.
			if len(responded) >= expected {
				if want == All || len(replies) >= want {
					return replies, nil
				}
				// Everyone responded but too many were null replies.
				return replies, ErrNoResponders
			}
		case <-recheck.C:
			// Destinations may have failed: recompute how many can still
			// answer. Members that already responded stay counted. Cached
			// views of groups this site does not host are refreshed
			// periodically so remote failures are noticed too.
			if time.Since(lastRefresh) > 150*time.Millisecond {
				lastRefresh = time.Now()
				for _, dst := range dests {
					if dst.IsGroup() {
						_, _ = p.site.daemon.RefreshGroupView(dst)
					}
				}
			}
			live := p.expectedResponders(dests)
			if live < expected {
				expected = live
			}
			if len(responded) >= expected {
				if want == All || len(replies) >= want {
					return replies, nil
				}
				return replies, ErrNoResponders
			}
		case <-deadline.C:
			return replies, ErrReplyTimeout
		}
	}
}

// expectedResponders estimates how many destinations can still reply: the
// current membership of any group destination plus the explicit process
// destinations.
func (p *Process) expectedResponders(dests []Address) int {
	n := 0
	for _, d := range dests {
		if d.IsGroup() {
			if v, ok := p.CurrentView(d); ok {
				n += v.Size()
			}
			continue
		}
		n++
	}
	return n
}

// Reply answers a request received by this process (the reply is itself a
// multicast, so copies can be sent elsewhere with ReplyWithCopies). The
// request must have been sent by a Cast that asked for replies.
func (p *Process) Reply(req *Message, reply *Message) error {
	return p.replyInternal(req, reply, replyNormal, nil, 0)
}

// NullReply tells the caller that this process does not intend to send a
// normal reply (used by standbys and non-participants so callers waiting for
// ALL replies are not delayed; Section 3.2).
func (p *Process) NullReply(req *Message) error {
	return p.replyInternal(req, NewMessage(), replyNull, nil, 0)
}

// ReplyWithCopies answers a request and sends a copy of the reply to the
// given additional destinations at the given entry (the coordinator–cohort
// tool uses this so cohorts learn the computation finished; Section 6).
func (p *Process) ReplyWithCopies(req *Message, reply *Message, copies []Address, copyEntry EntryID) error {
	return p.replyInternal(req, reply, replyNormal, copies, copyEntry)
}

func (p *Process) replyInternal(req, reply *Message, kind int64, copies []Address, copyEntry EntryID) error {
	if !p.Alive() {
		return ErrProcessKilled
	}
	if req == nil || !req.Has(msg.FSession) {
		return ErrNotARequest
	}
	caller := req.Sender()
	session := req.Session()
	out := reply.Clone()
	out.StripSystemFields()
	out.PutInt(msg.FSession, session)
	out.PutInt(msg.FReply, kind)
	if _, err := p.site.daemon.Multicast(p.addr, CBCAST, addr.List{caller}, 0, out); err != nil {
		return err
	}
	if len(copies) > 0 {
		cp := reply.Clone()
		cp.StripSystemFields()
		cp.PutInt("cc-origin-session", session)
		if _, err := p.site.daemon.Multicast(p.addr, CBCAST, addr.List(copies), copyEntry, cp); err != nil {
			return err
		}
	}
	return nil
}
