package isis

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"
	"time"
)

// ledger is the replicated application state used by the partition tests:
// an ordered log of applied entries, transferable as one block per row. Its
// receiver replaces the log wholesale on every transfer, which is the
// partition-merge contract — the minority's speculative state is discarded
// in favour of the primary's.
type ledger struct {
	mu   sync.Mutex
	rows []string
}

func (l *ledger) apply(row string) {
	l.mu.Lock()
	l.rows = append(l.rows, row)
	l.mu.Unlock()
}

func (l *ledger) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.rows...)
}

func (l *ledger) provider() func() [][]byte {
	return func() [][]byte {
		l.mu.Lock()
		defer l.mu.Unlock()
		out := make([][]byte, len(l.rows))
		for i, r := range l.rows {
			out[i] = []byte(r)
		}
		return out
	}
}

func (l *ledger) receiver() func([]byte, bool) {
	fresh := true
	return func(b []byte, last bool) {
		l.mu.Lock()
		defer l.mu.Unlock()
		if fresh {
			l.rows = nil
			fresh = false
		}
		if len(b) > 0 {
			l.rows = append(l.rows, string(b))
		}
		if last {
			fresh = true
		}
	}
}

// TestPrimaryPartitionMajorityCommitsMinorityMerges is the flagship
// partition scenario: a 5-site replicated ledger partitioned 3/2. The
// majority side must keep committing; the minority must wedge read-only
// (rejecting writes with ErrNonPrimary) instead of forming a split-brain
// view; and after Heal the minority members must merge back — same
// processes, no RestartSite — with their state rebuilt from the primary.
func TestPrimaryPartitionMajorityCommitsMinorityMerges(t *testing.T) {
	c := newTestCluster(t, 5)
	net, _ := c.Network()

	members := make([]*Process, 5)
	ledgers := make([]*ledger, 5)
	var gid Address
	for i := 0; i < 5; i++ {
		p := spawn(t, c, SiteID(i+1))
		l := &ledger{}
		members[i], ledgers[i] = p, l
		p.BindEntry(EntryUserBase, func(m *Message) {
			l.apply(m.GetString("body", ""))
		})
		if i == 0 {
			v, err := p.CreateGroup("bank")
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
			if err := p.SetStateReceiver(gid, l.receiver()); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := p.JoinByName("bank", JoinOptions{StateReceiver: l.receiver()}); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.SetStateProvider(gid, l.provider()); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "full five-member view", 5*time.Second, func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 5
	})

	// Pre-partition traffic reaches everybody.
	for _, w := range []string{"w1", "w2"} {
		if _, err := members[0].Cast(ABCAST, []Address{gid}, EntryUserBase, Text(w)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "pre-partition writes applied everywhere", 5*time.Second, func() bool {
		for _, l := range ledgers {
			if !slices.Equal(l.snapshot(), []string{"w1", "w2"}) {
				return false
			}
		}
		return true
	})

	// Partition sites {1,2,3} from {4,5}.
	for _, a := range []SiteID{1, 2, 3} {
		for _, b := range []SiteID{4, 5} {
			net.Partition(a, b)
		}
	}

	// The majority removes the stranded members and keeps committing.
	waitUntil(t, "majority view without the minority", 10*time.Second, func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 3
	})
	// The minority wedges read-only: no split-brain view, writes refused.
	waitUntil(t, "minority wedged non-primary", 10*time.Second, func() bool {
		return !members[3].GroupPrimary(gid) && !members[4].GroupPrimary(gid)
	})
	if _, err := members[3].Cast(CBCAST, []Address{gid}, EntryUserBase, Text("forbidden")); !errors.Is(err, ErrNonPrimary) {
		t.Errorf("minority write err = %v, want ErrNonPrimary", err)
	}
	// A synchronous GBCAST from the other minority site routes to the
	// minority's acting coordinator over the wire; the refusal must come
	// back as the ErrNonPrimary sentinel, not opaque text. Wait for site
	// 5's own suspicions to settle first: before that, the request would be
	// routed toward the unreachable primary coordinator instead, and a
	// request stuck behind a partition can still commit there after the
	// heal (the usual timeout ambiguity — committed in the primary, so not
	// split-brain, but not the refusal this assertion is about).
	waitUntil(t, "site 5 suspects the majority", 10*time.Second, func() bool {
		return len(c.Site(5).Daemon().SuspectedSites()) >= 3
	})
	if _, err := members[4].Cast(GBCAST, []Address{gid}, EntryUserBase, Text("gb-forbidden")); !errors.Is(err, ErrNonPrimary) {
		t.Errorf("minority GBCAST err = %v, want ErrNonPrimary", err)
	}
	if v, ok := members[4].CurrentView(gid); !ok || v.Size() != 5 {
		t.Errorf("minority installed a split-brain view: %v", v)
	}
	for _, w := range []string{"p1", "p2", "p3"} {
		if _, err := members[0].Cast(ABCAST, []Address{gid}, EntryUserBase, Text(w)); err != nil {
			t.Fatalf("majority write during partition: %v", err)
		}
	}
	majority := []string{"w1", "w2", "p1", "p2", "p3"}
	waitUntil(t, "majority-side commits during the partition", 10*time.Second, func() bool {
		for i := 0; i < 3; i++ {
			if !slices.Equal(ledgers[i].snapshot(), majority) {
				return false
			}
		}
		return true
	})

	// Heal: the minority merges back automatically — no RestartSite — and
	// rebuilds its ledger from the primary via the state transfer.
	net.HealAll()
	waitUntil(t, "minority merged back after the heal", 20*time.Second, func() bool {
		v, ok := members[0].CurrentView(gid)
		if !ok || v.Size() != 5 || !v.Contains(members[3].Address()) || !v.Contains(members[4].Address()) {
			return false
		}
		return members[3].GroupPrimary(gid) && members[4].GroupPrimary(gid)
	})
	okLedgers := func() bool {
		return slices.Equal(ledgers[3].snapshot(), majority) && slices.Equal(ledgers[4].snapshot(), majority)
	}
	dl := time.Now().Add(10 * time.Second)
	for time.Now().Before(dl) && !okLedgers() {
		time.Sleep(2 * time.Millisecond)
	}
	if !okLedgers() {
		t.Fatalf("minority ledgers not rebuilt: l4=%v l5=%v want %v", ledgers[3].snapshot(), ledgers[4].snapshot(), majority)
	}

	// The merged members carry writes again, everywhere.
	if _, err := members[4].Cast(ABCAST, []Address{gid}, EntryUserBase, Text("after")); err != nil {
		t.Fatalf("write from a merged member: %v", err)
	}
	final := append(append([]string(nil), majority...), "after")
	waitUntil(t, "post-merge write applied at every member", 10*time.Second, func() bool {
		for i := range ledgers {
			if !slices.Equal(ledgers[i].snapshot(), final) {
				return false
			}
		}
		return true
	})
	for i, p := range members {
		if !p.Alive() {
			t.Errorf("member %d not alive after the merge", i)
		}
	}
}

// TestStateTransferProviderFailover kills the state-transfer provider (the
// group's oldest member) after the join view committed but before it shipped
// its state blocks. The joiner must not wait forever: the takeover view
// change makes the new oldest member re-run the transfer, and the joiner
// assembles its state from the successor alone.
func TestStateTransferProviderFailover(t *testing.T) {
	c := newTestCluster(t, 3)

	first := spawn(t, c, 1)
	v, err := first.CreateGroup("vault")
	if err != nil {
		t.Fatal(err)
	}
	// The original provider stalls mid-capture and its site dies before any
	// block reaches the wire.
	if err := first.SetStateProvider(v.Group, func() [][]byte {
		time.Sleep(500 * time.Millisecond)
		return [][]byte{[]byte("stale")}
	}); err != nil {
		t.Fatal(err)
	}
	second := spawn(t, c, 2)
	if _, err := second.JoinByName("vault", JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := second.SetStateProvider(v.Group, func() [][]byte {
		return [][]byte{[]byte("row-a"), []byte("row-b")}
	}); err != nil {
		t.Fatal(err)
	}

	third := spawn(t, c, 3)
	var mu sync.Mutex
	var rows []string
	var bodies []string
	done := false
	third.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		bodies = append(bodies, m.GetString("body", ""))
		mu.Unlock()
	})
	if _, err := third.JoinByName("vault", JoinOptions{
		StateReceiver: func(b []byte, last bool) {
			mu.Lock()
			defer mu.Unlock()
			if len(b) > 0 {
				rows = append(rows, string(b))
			}
			if last {
				done = true
			}
		},
	}); err != nil {
		t.Fatal(err)
	}

	// The join view has committed; the provider is asleep in its capture.
	// Crash its site: the survivors' takeover must re-trigger the transfer
	// from the new oldest member.
	if err := c.CrashSite(1); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "state transfer completed by the fail-over provider", 15*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
	mu.Lock()
	if fmt.Sprint(rows) != "[row-a row-b]" {
		t.Errorf("transferred rows = %v, want [row-a row-b] from the successor", rows)
	}
	mu.Unlock()

	// The joiner's held deliveries drain and new traffic flows.
	if _, err := second.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("unblocked")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-failover delivery at the joiner", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range bodies {
			if b == "unblocked" {
				return true
			}
		}
		return false
	})
}

// TestRestartAfterCrashRejoinsWithStateTransfer crashes a whole site, brings
// it back with RestartSite (fresh incarnation, fresh transport epoch), and
// rejoins the group with a state transfer — the paper's recovery model: a
// recovered site returns with no memory of its previous incarnation and
// reconstructs its groups from the survivors.
func TestRestartAfterCrashRejoinsWithStateTransfer(t *testing.T) {
	c := newTestCluster(t, 2)

	first := spawn(t, c, 1)
	v, err := first.CreateGroup("ledger")
	if err != nil {
		t.Fatal(err)
	}
	if err := first.SetStateProvider(v.Group, func() [][]byte {
		return [][]byte{[]byte("entry-1"), []byte("entry-2")}
	}); err != nil {
		t.Fatal(err)
	}
	second := spawn(t, c, 2)
	if _, err := second.JoinByName("ledger", JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "two-member view", 5*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 2
	})

	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "survivor view without the crashed site", 10*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 1
	})

	site, err := c.RestartSite(2)
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := site.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var rows []string
	var bodies []string
	xferDone := false
	reborn.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		bodies = append(bodies, m.GetString("body", ""))
		mu.Unlock()
	})
	if _, err := reborn.JoinByName("ledger", JoinOptions{
		StateReceiver: func(b []byte, last bool) {
			mu.Lock()
			defer mu.Unlock()
			if len(b) > 0 {
				rows = append(rows, string(b))
			}
			if last {
				xferDone = true
			}
		},
	}); err != nil {
		t.Fatalf("rejoin after restart: %v", err)
	}
	waitUntil(t, "state transfer to the restarted site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return xferDone
	})
	mu.Lock()
	if len(rows) != 2 || rows[0] != "entry-1" || rows[1] != "entry-2" {
		t.Errorf("transferred state = %v", rows)
	}
	mu.Unlock()
	waitUntil(t, "two-member view including the restarted site", 5*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 2 && view.Contains(reborn.Address())
	})

	// Traffic flows to the restarted site: the transport recognised the new
	// incarnation's stream epoch instead of discarding it as duplicates.
	if _, err := first.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("post-restart")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "delivery at the restarted site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range bodies {
			if b == "post-restart" {
				return true
			}
		}
		return false
	})
}

// TestPartitionedSiteRestartsAndRejoins cuts one site off from the rest of
// the cluster with injected partitions, lets the primary side remove its
// member, and then — after healing — recovers the orphaned site by
// restarting it, discarding its split-brain state (partition merge is
// outside the paper's fault model; restart is the prescribed recovery).
func TestPartitionedSiteRestartsAndRejoins(t *testing.T) {
	c := newTestCluster(t, 3)
	members, gid := echoService(t, c, "part", 1, 2, 3)
	net, _ := c.Network()

	net.Partition(3, 1)
	net.Partition(3, 2)
	waitUntil(t, "primary side removes the partitioned member", 10*time.Second, func() bool {
		view, ok := members[0].CurrentView(gid)
		return ok && view.Size() == 2
	})
	net.HealAll()

	site, err := c.RestartSite(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := site.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	p.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		got = append(got, m.GetString("body", ""))
		mu.Unlock()
	})
	if _, err := p.JoinByName("part", JoinOptions{}); err != nil {
		t.Fatalf("rejoin after partition + restart: %v", err)
	}
	waitUntil(t, "three-member view after the rejoin", 10*time.Second, func() bool {
		view, ok := members[0].CurrentView(gid)
		return ok && view.Size() == 3 && view.Contains(p.Address())
	})

	if _, err := members[0].Cast(CBCAST, []Address{gid}, EntryUserBase, Text("rejoined")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "broadcast at the rejoined site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range got {
			if b == "rejoined" {
				return true
			}
		}
		return false
	})
}
