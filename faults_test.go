package isis

import (
	"sync"
	"testing"
	"time"
)

// TestRestartAfterCrashRejoinsWithStateTransfer crashes a whole site, brings
// it back with RestartSite (fresh incarnation, fresh transport epoch), and
// rejoins the group with a state transfer — the paper's recovery model: a
// recovered site returns with no memory of its previous incarnation and
// reconstructs its groups from the survivors.
func TestRestartAfterCrashRejoinsWithStateTransfer(t *testing.T) {
	c := newTestCluster(t, 2)

	first := spawn(t, c, 1)
	v, err := first.CreateGroup("ledger")
	if err != nil {
		t.Fatal(err)
	}
	if err := first.SetStateProvider(v.Group, func() [][]byte {
		return [][]byte{[]byte("entry-1"), []byte("entry-2")}
	}); err != nil {
		t.Fatal(err)
	}
	second := spawn(t, c, 2)
	if _, err := second.JoinByName("ledger", JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "two-member view", 5*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 2
	})

	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "survivor view without the crashed site", 10*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 1
	})

	site, err := c.RestartSite(2)
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := site.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var rows []string
	var bodies []string
	xferDone := false
	reborn.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		bodies = append(bodies, m.GetString("body", ""))
		mu.Unlock()
	})
	if _, err := reborn.JoinByName("ledger", JoinOptions{
		StateReceiver: func(b []byte, last bool) {
			mu.Lock()
			defer mu.Unlock()
			if len(b) > 0 {
				rows = append(rows, string(b))
			}
			if last {
				xferDone = true
			}
		},
	}); err != nil {
		t.Fatalf("rejoin after restart: %v", err)
	}
	waitUntil(t, "state transfer to the restarted site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return xferDone
	})
	mu.Lock()
	if len(rows) != 2 || rows[0] != "entry-1" || rows[1] != "entry-2" {
		t.Errorf("transferred state = %v", rows)
	}
	mu.Unlock()
	waitUntil(t, "two-member view including the restarted site", 5*time.Second, func() bool {
		view, ok := first.CurrentView(v.Group)
		return ok && view.Size() == 2 && view.Contains(reborn.Address())
	})

	// Traffic flows to the restarted site: the transport recognised the new
	// incarnation's stream epoch instead of discarding it as duplicates.
	if _, err := first.Cast(CBCAST, []Address{v.Group}, EntryUserBase, Text("post-restart"), 0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "delivery at the restarted site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range bodies {
			if b == "post-restart" {
				return true
			}
		}
		return false
	})
}

// TestPartitionedSiteRestartsAndRejoins cuts one site off from the rest of
// the cluster with injected partitions, lets the primary side remove its
// member, and then — after healing — recovers the orphaned site by
// restarting it, discarding its split-brain state (partition merge is
// outside the paper's fault model; restart is the prescribed recovery).
func TestPartitionedSiteRestartsAndRejoins(t *testing.T) {
	c := newTestCluster(t, 3)
	members, gid := echoService(t, c, "part", 1, 2, 3)
	net := c.Network()

	net.Partition(3, 1)
	net.Partition(3, 2)
	waitUntil(t, "primary side removes the partitioned member", 10*time.Second, func() bool {
		view, ok := members[0].CurrentView(gid)
		return ok && view.Size() == 2
	})
	net.HealAll()

	site, err := c.RestartSite(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := site.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	p.BindEntry(EntryUserBase, func(m *Message) {
		mu.Lock()
		got = append(got, m.GetString("body", ""))
		mu.Unlock()
	})
	if _, err := p.JoinByName("part", JoinOptions{}); err != nil {
		t.Fatalf("rejoin after partition + restart: %v", err)
	}
	waitUntil(t, "three-member view after the rejoin", 10*time.Second, func() bool {
		view, ok := members[0].CurrentView(gid)
		return ok && view.Size() == 3 && view.Contains(p.Address())
	})

	if _, err := members[0].Cast(CBCAST, []Address{gid}, EntryUserBase, Text("rejoined"), 0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "broadcast at the rejoined site", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, b := range got {
			if b == "rejoined" {
				return true
			}
		}
		return false
	})
}
