// Command doccheck is the repository's documentation lint: it fails the
// build when a package lacks a package comment, when an internal package
// keeps its package comment outside doc.go, or when an exported identifier
// has no doc comment. CI runs it over the whole module so the public surface
// (and the internal layer boundaries) stay documented as the system grows.
//
// Usage:
//
//	go run ./cmd/doccheck [dir ...]
//
// With no arguments it checks every Go package under the current directory,
// skipping testdata and hidden directories. Test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (len(name) > 1 && strings.HasPrefix(name, ".")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dir := filepath.Dir(path)
				if !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)

	failed := false
	for _, dir := range dirs {
		for _, problem := range checkDir(dir) {
			failed = true
			fmt.Println(problem)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns its documentation
// problems, one line per finding.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse: %v", dir, err)}
	}

	var problems []string
	for _, pkg := range pkgs {
		problems = append(problems, checkPackage(fset, dir, pkg)...)
	}
	sort.Strings(problems)
	return problems
}

func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var problems []string

	// The package comment: required everywhere; for internal packages it
	// must live in doc.go so the layer documentation has a well-known home.
	commentFile := ""
	for path, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			commentFile = filepath.Base(path)
			break
		}
	}
	switch {
	case commentFile == "":
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	case strings.Contains(filepath.ToSlash(dir), "internal/") && commentFile != "doc.go":
		problems = append(problems, fmt.Sprintf("%s: package comment of internal package %s must live in doc.go (found in %s)", dir, pkg.Name, commentFile))
	}

	for path, f := range pkg.Files {
		rel := filepath.Join(dir, filepath.Base(path))
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
						rel, fset.Position(d.Pos()).Line, declKind(d), d.Name.Name))
				}
			case *ast.GenDecl:
				problems = append(problems, checkGenDecl(fset, rel, d)...)
			}
		}
	}
	return problems
}

// declKind names a function declaration for the report: "function" or
// "method (T)".
func declKind(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "function"
	}
	return "method"
}

// checkGenDecl reports exported consts, vars, and types that carry no doc
// comment — neither on the declaration group nor on the individual spec.
func checkGenDecl(fset *token.FileSet, rel string, d *ast.GenDecl) []string {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return nil
	}
	groupDoc := d.Doc != nil
	var problems []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				problems = append(problems, fmt.Sprintf("%s:%d: exported type %s has no doc comment",
					rel, fset.Position(s.Pos()).Line, s.Name.Name))
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
						rel, fset.Position(s.Pos()).Line, strings.ToLower(d.Tok.String()), name.Name))
				}
			}
		}
	}
	return problems
}
