// Command benchjson reduces `go test -bench` text output to a stable JSON
// artifact and compares two such artifacts for performance regressions.
//
// It is the core of the CI bench-regression gate (.github/workflows/ci.yml):
// the bench job pipes the full benchmark suite through `benchjson -out
// BENCH_<sha>.json`, uploads the artifact, and then runs `benchjson -compare
// BENCH_baseline.json BENCH_<sha>.json`, which exits non-zero when a
// hot-path benchmark regressed by more than the threshold (default 20%) in
// ns/op or allocs/op. See EXPERIMENTS.md for the baseline refresh procedure.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 ./... | benchjson -out BENCH_abc123.json
//	benchjson -compare BENCH_baseline.json BENCH_abc123.json [-threshold 0.20]
//
// Multiple runs of the same benchmark (-count N) are aggregated: the minimum
// is kept for ns/op, B/op, and allocs/op (the least-noise estimator on a
// shared CI runner), the maximum for throughput-style custom metrics where
// bigger is better.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// hotPath lists the benchmarks whose regression fails the CI gate: the
// send/receive hot path pinned by the PR 1 overhaul plus the core protocol
// round trips. A list entry matches the benchmark of the same name and any
// of its sub-benchmarks. Editing this list is part of the baseline refresh
// procedure documented in EXPERIMENTS.md.
var hotPath = []string{
	"BenchmarkCBCASTAsync",
	"BenchmarkABCASTRoundTrip",
	"BenchmarkGBCAST",
	"BenchmarkGroupRPCOneReply",
	"BenchmarkMarshal",
	"BenchmarkCachedMarshalHit",
	"BenchmarkAppendMarshalPooled",
	"BenchmarkUnmarshal",
	"BenchmarkUnmarshalInto",
	"BenchmarkClone",
	"BenchmarkAppendEncode",
	"BenchmarkDecodeInto",
	"BenchmarkTransportThroughput/batched",
}

// minUnits are the metric units aggregated by minimum across -count runs
// (lower is better); every other unit is aggregated by maximum.
var minUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true}

// Artifact is the JSON document benchjson reads and writes.
type Artifact struct {
	Schema int    `json:"schema"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Backend names the transport backend the benchmarks ran over ("simnet"
	// or "tcp"). Comparisons across backends are refused: simnet and TCP
	// numbers differ by orders of magnitude, so a cross-backend diff would
	// either always fail the gate or, worse, mask a real regression.
	// Artifacts written before the field existed read back as "" and are
	// treated as simnet.
	Backend    string               `json:"backend,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// backendOf normalizes an artifact's backend tag, defaulting pre-tag
// artifacts to simnet (the only backend that existed before the field).
func backendOf(a *Artifact) string {
	if a.Backend == "" {
		return "simnet"
	}
	return a.Backend
}

// Benchmark aggregates every run of one benchmark name.
type Benchmark struct {
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "write the parsed JSON artifact to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two artifacts: benchjson -compare BASELINE CURRENT")
	threshold := flag.Float64("threshold", 0.20, "relative regression that fails the comparison")
	backend := flag.String("backend", "simnet", "transport backend the benchmarks ran over; stamped into the artifact")
	flag.Parse()

	if *compare {
		// The flag package stops at the first positional, so a trailing
		// "-threshold 0.20" (the natural way to write the command) would
		// otherwise be swallowed as positionals; rescue it here.
		var paths []string
		args := flag.Args()
		for i := 0; i < len(args); i++ {
			switch {
			case args[i] == "-threshold" || args[i] == "--threshold":
				if i+1 >= len(args) {
					fatal(fmt.Errorf("-threshold needs a value"))
				}
				i++
				v, err := strconv.ParseFloat(args[i], 64)
				if err != nil {
					fatal(fmt.Errorf("bad -threshold %q: %v", args[i], err))
				}
				*threshold = v
			case strings.HasPrefix(args[i], "-threshold=") || strings.HasPrefix(args[i], "--threshold="):
				v, err := strconv.ParseFloat(args[i][strings.IndexByte(args[i], '=')+1:], 64)
				if err != nil {
					fatal(fmt.Errorf("bad %s: %v", args[i], err))
				}
				*threshold = v
			default:
				paths = append(paths, args[i])
			}
		}
		if len(paths) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare BASELINE CURRENT [-threshold 0.20]")
			os.Exit(2)
		}
		base, err := readArtifact(paths[0])
		if err != nil {
			fatal(err)
		}
		cur, err := readArtifact(paths[1])
		if err != nil {
			fatal(err)
		}
		if bb, cb := backendOf(base), backendOf(cur); bb != cb {
			fatal(fmt.Errorf("refusing to compare artifacts from different backends: %s is %q, %s is %q",
				paths[0], bb, paths[1], cb))
		}
		if !compareArtifacts(os.Stdout, base, cur, *threshold) {
			os.Exit(1)
		}
		return
	}

	art, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	art.Backend = *backend
	if len(art.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found on stdin"))
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}

func readArtifact(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// A result line is "BenchmarkName[-procs] <iterations> <value> <unit> ...",
// with (value, unit) pairs repeating for -benchmem and ReportMetric output.
func parseBench(sc *bufio.Scanner) (*Artifact, error) {
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	art := &Artifact{
		Schema:     1,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: make(map[string]Benchmark),
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "BenchmarkFoo \t --- FAIL"
		}
		name := trimProcs(fields[0])
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		b, seen := art.Benchmarks[name]
		if !seen {
			b = Benchmark{Metrics: metrics}
		} else {
			for unit, v := range metrics {
				old, ok := b.Metrics[unit]
				switch {
				case !ok:
					b.Metrics[unit] = v
				case minUnits[unit] && v < old:
					b.Metrics[unit] = v
				case !minUnits[unit] && v > old:
					b.Metrics[unit] = v
				}
			}
		}
		b.Runs++
		art.Benchmarks[name] = b
	}
	return art, sc.Err()
}

// trimProcs strips the trailing -GOMAXPROCS suffix from a benchmark name
// ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// isHotPath reports whether a benchmark name belongs to the gated set.
func isHotPath(name string) bool {
	for _, h := range hotPath {
		if name == h || strings.HasPrefix(name, h+"/") {
			return true
		}
	}
	return false
}

// compareArtifacts prints a comparison table for the hot-path benchmarks and
// reports whether the current artifact passes the gate.
func compareArtifacts(w *os.File, base, cur *Artifact, threshold float64) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if isHotPath(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	pass := true
	fmt.Fprintf(w, "%-44s %14s %14s %8s  %s\n", "hot-path benchmark", "baseline", "current", "ratio", "verdict")
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			// A gated benchmark that produced no result (renamed, removed, or
			// its package's bench run crashed) fails the comparison: passing
			// silently would disable its regression gate.
			fmt.Fprintf(w, "%-44s MISSING from the current run (renamed, removed, or crashed? refresh the baseline)\n", name)
			pass = false
			continue
		}
		for _, unit := range []string{"ns/op", "allocs/op"} {
			bv, bok := b.Metrics[unit]
			cv, cok := c.Metrics[unit]
			if !bok || !cok {
				continue
			}
			verdict := "ok"
			if cv > bv*(1+threshold) {
				verdict = "REGRESSION"
				pass = false
			}
			ratio := "n/a"
			if bv > 0 {
				ratio = fmt.Sprintf("%.2fx", cv/bv)
			}
			fmt.Fprintf(w, "%-44s %14.1f %14.1f %8s  %s (%s)\n", name, bv, cv, ratio, verdict, unit)
		}
	}
	if pass {
		fmt.Fprintf(w, "PASS: no hot-path benchmark regressed by more than %.0f%%\n", threshold*100)
	} else {
		fmt.Fprintf(w, "FAIL: hot-path regression beyond %.0f%% (refresh BENCH_baseline.json only with an explanation in EXPERIMENTS.md)\n", threshold*100)
	}
	return pass
}
