// Command isis-bench regenerates the paper's evaluation artifacts as text
// tables and series:
//
//	isis-bench -table1    Table 1  — multicast overhead of the toolkit routines
//	isis-bench -figure2   Figure 2 — async CBCAST throughput and primitive latency vs message size
//	isis-bench -figure3   Figure 3 — breakdown of ABCAST execution time
//	isis-bench -twenty    Section 5 — twenty-questions aggregate query/update rates
//	isis-bench -cpu       Section 7 — sender CPU utilisation, async vs waiting protocols
//	isis-bench -events    dump the operational event stream of a scripted partition/merge cycle
//	isis-bench -all       every experiment (the -events dump is a diagnostic, not an experiment,
//	                      and is only run when asked for)
//
// The network uses the paper-calibrated parameters (10 µs intra-site, 16 ms
// inter-site, 10 Mbit/s, 4 KB fragmentation) unless -fast is given. With
// -tcp the Figure 2 experiments run over real kernel TCP sockets on loopback
// instead of the simulation; those numbers measure this machine, not the
// paper's LAN, and are reported for the backend-equivalence record in
// EXPERIMENTS.md. The tracer-based experiments (Figure 3) and the
// fault-injection ones stay on the simulated network.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	isis "repro"
	"repro/internal/bench"
	"repro/internal/fdetect"
	"repro/internal/netback"
	"repro/internal/simnet"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1")
		figure2   = flag.Bool("figure2", false, "regenerate Figure 2")
		figure3   = flag.Bool("figure3", false, "regenerate Figure 3")
		twenty    = flag.Bool("twenty", false, "regenerate the Section 5 twenty-questions rates")
		cpu       = flag.Bool("cpu", false, "regenerate the Section 7 CPU-utilisation observation")
		all       = flag.Bool("all", false, "run every experiment")
		fast      = flag.Bool("fast", false, "use a zero-delay network instead of the paper-calibrated one")
		tcp       = flag.Bool("tcp", false, "run the Figure 2 experiments over real TCP-loopback sockets instead of the simulated LAN")
		unbatched = flag.Bool("unbatched", false, "disable transport packet coalescing in the Figure 2 throughput run (ablation)")
		events    = flag.Bool("events", false, "dump the operational event stream of a scripted partition/merge cycle")
	)
	flag.Parse()
	if !*table1 && !*figure2 && !*figure3 && !*twenty && !*cpu && !*events {
		*all = true
	}
	netCfg := simnet.PaperConfig()
	if *fast {
		netCfg = simnet.FastConfig()
	}
	fig2Net := bench.SimChoice(netCfg)
	if *tcp {
		fig2Net = bench.TCPChoice()
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "isis-bench:", err)
		os.Exit(1)
	}

	if *all || *table1 {
		fmt.Println("== Table 1: multicast overhead for selected tools ==")
		rows, err := bench.RunTable1()
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
	}

	if *all || *figure2 {
		sizes := []int{10, 100, 1000, 10000}
		fmt.Println("== Figure 2 (top): asynchronous CBCAST throughput vs message size ==")
		if *tcp {
			fmt.Println("(backend: real TCP loopback — numbers measure this machine, not the paper's LAN)")
		}
		if *unbatched {
			fmt.Println("(transport packet coalescing DISABLED — ablation baseline)")
		}
		for _, dests := range []int{2, 4} {
			points, err := bench.RunFigure2ThroughputAblation(fig2Net, dests, sizes, 300*time.Millisecond, *unbatched)
			if err != nil {
				fail(err)
			}
			fmt.Print(bench.FormatFigure2(points))
		}
		fmt.Println()
		fmt.Println("== Figure 2 (latency panels): primitive latency vs message size, 1 local reply ==")
		for _, dests := range []int{2, 4} {
			var allPoints []bench.Fig2Point
			for _, proto := range []isis.Protocol{isis.CBCAST, isis.ABCAST, isis.GBCAST} {
				points, err := bench.RunFigure2Latency(fig2Net, proto, dests, sizes, 3)
				if err != nil {
					fail(err)
				}
				allPoints = append(allPoints, points...)
			}
			fmt.Print(bench.FormatFigure2(allPoints))
		}
		fmt.Println()
	}

	if *all || *figure3 {
		fmt.Println("== Figure 3: breakdown of ABCAST execution time ==")
		breakdown, err := bench.RunFigure3(netCfg, 3)
		if err != nil {
			fail(err)
		}
		fmt.Print(bench.FormatFigure3(breakdown))
		fmt.Println()
	}

	if *all || *twenty {
		fmt.Println("== Section 5: twenty-questions aggregate rates (4 sites) ==")
		res, err := bench.RunTwentyQuestions(netCfg, time.Second)
		if err != nil {
			fail(err)
		}
		fmt.Printf("queries:  %6.1f /s   (paper: ~30 /s)\n", res.QueriesPerSec)
		fmt.Printf("updates:  %6.1f /s   (paper: ~5 /s)\n", res.UpdatesPerSec)
		fmt.Println()
	}

	if *all || *cpu {
		fmt.Println("== Section 7: sender CPU utilisation ==")
		results, err := bench.RunSenderUtilization(netCfg, 500*time.Millisecond)
		if err != nil {
			fail(err)
		}
		for _, r := range results {
			fmt.Printf("%-40s %5.0f%%\n", r.Workload, 100*r.Utilization)
		}
		fmt.Println("(paper: 96-98% for asynchronous/local multicasts, 30-35% when waiting on remote sites)")
	}

	if *events {
		fmt.Println("== Operational event stream: scripted partition/merge cycle ==")
		if err := runEventDump(); err != nil {
			fail(err)
		}
	}
}

// runEventDump partitions the minority site of a three-member group, heals
// it, and prints the full cluster-wide operational event stream of the
// cycle, followed by the per-site publish/drop totals. It exercises exactly
// the API an operator would point at a production cluster: subscribe first,
// inject nothing the protocols would not see anyway, read the story back.
func runEventDump() error {
	cluster, err := isis.NewCluster(isis.ClusterConfig{
		Sites: 3,
		Detector: fdetect.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			InitialTimeout:    150 * time.Millisecond,
			MinTimeout:        100 * time.Millisecond,
			MaxTimeout:        500 * time.Millisecond,
			DeviationFactor:   4,
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	stream, cancel := cluster.Events(isis.EventFilter{})
	var mu sync.Mutex
	var trace []isis.Event
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for e := range stream {
			mu.Lock()
			trace = append(trace, e)
			mu.Unlock()
		}
	}()

	members := make([]*isis.Process, 3)
	var gid isis.Address
	for i := 0; i < 3; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			return err
		}
		members[i] = p
		p.BindEntry(isis.EntryUserBase, func(*isis.Message) {})
		if i == 0 {
			v, err := p.CreateGroup("evdump")
			if err != nil {
				return err
			}
			gid = v.Group
		} else if _, err := p.JoinByName("evdump", isis.JoinOptions{}); err != nil {
			return err
		}
	}

	wait := func(what string, pred func() bool) error {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("event dump: timed out waiting for %s", what)
	}
	if err := wait("full membership", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 3
	}); err != nil {
		return err
	}

	fi, ok := cluster.Fabric().(netback.FaultInjector)
	if !ok {
		return fmt.Errorf("event dump: backend does not support fault injection")
	}
	fi.Partition(3, 1)
	fi.Partition(3, 2)
	if err := wait("minority wedged", func() bool { return !members[2].GroupPrimary(gid) }); err != nil {
		return err
	}
	fi.HealAll()
	if err := wait("minority merged back", func() bool {
		v, ok := members[2].CurrentView(gid)
		return ok && v.Size() == 3 && members[2].GroupPrimary(gid)
	}); err != nil {
		return err
	}
	// Let the trailing events land before closing the stream.
	_ = wait("primary-resumed in the trace", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range trace {
			if e.Kind == isis.EventPrimaryResumed {
				return true
			}
		}
		return false
	})
	cancel()
	<-drained

	mu.Lock()
	final := append([]isis.Event(nil), trace...)
	mu.Unlock()
	if len(final) == 0 {
		return fmt.Errorf("event dump: empty trace")
	}
	for _, e := range final {
		fmt.Println(" ", e)
	}
	st := cluster.EventStats()
	fmt.Printf("published %d events, dropped %d at slow subscribers\n", st.Published, st.Dropped)
	return nil
}
