package isis

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/task"
)

// newTaskManager is a small indirection so Site.Spawn does not import the
// task package directly.
func newTaskManager() *task.Manager { return task.NewManager() }

// Errors returned by Process operations.
var (
	ErrProcessKilled = errors.New("isis: process has been killed")
	ErrNoResponders  = errors.New("isis: all destinations failed before enough replies arrived")
	ErrReplyTimeout  = errors.New("isis: timed out waiting for replies")
	ErrNotARequest   = errors.New("isis: message carries no reply session")
)

// Process is a client process of the ISIS system: the unit that joins
// process groups, sends and receives multicasts, and runs tasks. A Process
// is created with Site.Spawn and is bound to its site for life (the paper's
// processes do not migrate; migration is expressed as joining from a new
// process plus a state transfer, as in Section 3.8).
type Process struct {
	site         *Site
	addr         Address
	tasks        *task.Manager
	replyTimeout time.Duration

	mu          sync.Mutex
	killed      bool
	session     int64
	pending     map[int64]*pendingCall
	monitors    map[Address]map[int]func(View)
	nextMonitor int
	lastViews   map[Address]View
	providers   map[Address]func() [][]byte
}

// pendingCall tracks one Cast waiting for replies.
type pendingCall struct {
	replies chan *Message
}

// Address returns the process's ISIS address.
func (p *Process) Address() Address { return p.addr }

// Site returns the site the process runs at.
func (p *Process) Site() *Site { return p.site }

// Tasks exposes the process's task manager (entry bindings, filters).
func (p *Process) Tasks() *task.Manager { return p.tasks }

// BindEntry binds a handler routine to an entry point; a new task runs the
// handler for every message delivered to the entry (Section 4.1 "Entries").
func (p *Process) BindEntry(e EntryID, h func(*Message)) {
	if h == nil {
		p.tasks.BindEntry(e, nil)
		return
	}
	p.tasks.BindEntry(e, func(m *msg.Message) { h(m) })
}

// AddFilter appends a message filter; filters run before a task is created
// and may drop the message (Section 4.1 "Filters", used by the protection
// tool).
func (p *Process) AddFilter(f func(EntryID, *Message) bool) {
	p.tasks.AddFilter(func(e EntryID, m *msg.Message) bool { return f(e, m) })
}

// Kill simulates a crash of this process. Its groups observe a failure.
func (p *Process) Kill() error {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return nil
	}
	p.killed = true
	p.mu.Unlock()
	p.tasks.Close()
	return p.site.daemon.KillProcess(p.addr)
}

// Alive reports whether the process has not been killed.
func (p *Process) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.killed
}

// onDeliver is the daemon's delivery callback: replies are routed to the
// Cast that is waiting for them, everything else starts a task at the
// destination entry point.
func (p *Process) onDeliver(entry EntryID, m *Message) {
	if m.Has(msg.FReply) {
		session := m.Session()
		p.mu.Lock()
		call := p.pending[session]
		p.mu.Unlock()
		if call != nil {
			select {
			case call.replies <- m:
			default:
			}
		}
		return
	}
	_ = p.tasks.Dispatch(entry, m)
}

// onView is the daemon's membership callback: it records the view and
// notifies the process's monitor routines (pg_monitor).
func (p *Process) onView(v View) {
	p.mu.Lock()
	if p.lastViews == nil {
		p.lastViews = make(map[Address]View)
	}
	p.lastViews[v.Group] = v
	ids := make([]int, 0, len(p.monitors[v.Group]))
	for id := range p.monitors[v.Group] {
		ids = append(ids, id)
	}
	sort.Ints(ids) // registration order: monitor ids are allocated monotonically
	cbs := make([]func(View), 0, len(ids))
	for _, id := range ids {
		cbs = append(cbs, p.monitors[v.Group][id])
	}
	p.mu.Unlock()
	for _, cb := range cbs {
		cb(v)
	}
}

// ---------------------------------------------------------------------------
// Process groups

// CreateGroup creates a new process group with this process as its first
// member (pg_create).
func (p *Process) CreateGroup(name string) (View, error) {
	if !p.Alive() {
		return View{}, ErrProcessKilled
	}
	return p.site.daemon.CreateGroup(p.addr, name)
}

// Lookup resolves a symbolic group name to a group address (pg_lookup).
func (p *Process) Lookup(name string) (Address, error) {
	return p.site.daemon.Lookup(name)
}

// JoinOptions configures Join.
type JoinOptions struct {
	// Credentials are presented to the group's join-validation routine, if
	// the protection tool has installed one.
	Credentials string
	// StateReceiver, when non-nil, requests a state transfer from the
	// group's oldest member (join_and_xfer); the callback receives the
	// state blocks, the last one flagged with last=true. Deliveries to the
	// new member are held until the transfer completes.
	StateReceiver func(block []byte, last bool)
}

// Join adds the process to an existing group (pg_join / join_and_xfer) and
// returns the first view that includes it.
func (p *Process) Join(gid Address, opts JoinOptions) (View, error) {
	if !p.Alive() {
		return View{}, ErrProcessKilled
	}
	v, err := p.site.daemon.Join(p.addr, gid, toProtosJoin(opts))
	if err != nil {
		return View{}, err
	}
	p.mu.Lock()
	if p.lastViews == nil {
		p.lastViews = make(map[Address]View)
	}
	p.lastViews[gid.Base()] = v
	p.mu.Unlock()
	return v, nil
}

// JoinByName looks the group up by name and joins it.
func (p *Process) JoinByName(name string, opts JoinOptions) (View, error) {
	gid, err := p.Lookup(name)
	if err != nil {
		return View{}, err
	}
	return p.Join(gid, opts)
}

// Leave removes the process from a group (pg_leave).
func (p *Process) Leave(gid Address) error {
	if !p.Alive() {
		return ErrProcessKilled
	}
	return p.site.daemon.Leave(p.addr, gid)
}

// Monitor registers a routine invoked on every membership change of the
// group (pg_monitor). Callbacks are invoked in delivery order relative to
// the process's message deliveries — unlike the site-level event stream,
// which is asynchronous. The returned cancel removes the registration; no
// callback runs after cancel returns while p.mu is free.
func (p *Process) Monitor(gid Address, cb func(View)) (cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	base := gid.Base()
	if p.monitors[base] == nil {
		p.monitors[base] = make(map[int]func(View))
	}
	p.nextMonitor++
	id := p.nextMonitor
	p.monitors[base][id] = cb
	return func() {
		p.mu.Lock()
		delete(p.monitors[base], id)
		p.mu.Unlock()
	}
}

// Outcome reports the fate of an earlier group request (a GBCAST Cast
// tracked with TrackRequest) whose call failed or timed out: OutcomeCommitted
// when some member executed it, OutcomeAborted when it provably never will,
// OutcomeUnknown when the system cannot yet tell — ask again after the
// partition heals. The answer is correct across coordinator fail-over: an
// Unknown request is settled by running a seal through the group, after
// which the request either is committed somewhere or can never commit.
func (p *Process) Outcome(rid RequestID) (Outcome, error) {
	if !p.Alive() {
		return OutcomeUnknown, ErrProcessKilled
	}
	return p.site.daemon.RequestOutcome(int64(rid))
}

// CurrentView returns the most recent view of a group known to this process
// (its own membership callbacks, falling back to the site daemon's cache).
func (p *Process) CurrentView(gid Address) (View, bool) {
	p.mu.Lock()
	v, ok := p.lastViews[gid.Base()]
	p.mu.Unlock()
	if ok {
		return v, true
	}
	return p.site.daemon.CurrentView(gid)
}

// SetStateProvider registers the routine that encodes this member's copy of
// the group state when another process joins with a state transfer. Only
// the group's oldest member is asked to provide state.
func (p *Process) SetStateProvider(gid Address, provider func() [][]byte) error {
	p.mu.Lock()
	p.providers[gid.Base()] = provider
	p.mu.Unlock()
	return p.site.daemon.SetStateProvider(p.addr, gid, provider)
}

// SetStateReceiver registers the routine that restores this member's copy of
// the group state from a transfer. Joining with JoinOptions.StateReceiver
// registers one implicitly; group creators — which never joined — use this
// call so that a partition-merge rejoin can rebuild their state from the
// primary partition.
func (p *Process) SetStateReceiver(gid Address, recv func(block []byte, last bool)) error {
	return p.site.daemon.SetStateReceiver(p.addr, gid, recv)
}

// GroupPrimary reports whether this process's site holds a primary copy of
// the group. While it reports false the group is read-only here: Cast, Join
// and Leave return ErrNonPrimary until the partition heals and the merge
// protocol rejoins the primary partition.
func (p *Process) GroupPrimary(gid Address) bool {
	return p.site.daemon.GroupPrimary(gid)
}

// Flush blocks until the process's outstanding asynchronous multicasts have
// been transmitted and committed; it is called automatically by the tools
// that manage logs and stable storage (Section 3.2, footnote 3).
func (p *Process) Flush() error {
	if !p.Alive() {
		return ErrProcessKilled
	}
	return p.site.daemon.Flush(p.addr)
}

func toProtosJoin(opts JoinOptions) protosJoinOptions {
	return protosJoinOptions{
		WantState:     opts.StateReceiver != nil,
		StateReceiver: opts.StateReceiver,
		Credentials:   opts.Credentials,
	}
}
