// Command replqueue demonstrates the replicated FIFO queue used throughout
// Sections 2.4 and 3.1 of the paper to motivate the choice between multicast
// primitives:
//
//   - with a single writer, CBCAST (per-sender FIFO, asynchronous, cheap) is
//     enough to keep every copy identical;
//   - with multiple concurrent writers, CBCAST copies can diverge, and the
//     stronger ABCAST ordering is required — every copy then applies the
//     same operations in the same order.
//
// The program runs both configurations and prints whether the copies agree.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	isis "repro"
	"repro/internal/tools/replica"
)

// queueCopy is one member's copy of the replicated queue.
type queueCopy struct {
	mu    sync.Mutex
	items []string
}

func (q *queueCopy) push(m *isis.Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, m.GetString("item", ""))
}

func (q *queueCopy) snapshot() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.items...)
}

// buildQueue builds a 3-member replicated queue in the given mode and
// returns the member processes, their copies and their item handles.
func buildQueue(cluster *isis.Cluster, name string, mode replica.Mode) ([]*isis.Process, []*queueCopy, []*replica.Item, error) {
	procs := make([]*isis.Process, 3)
	copies := make([]*queueCopy, 3)
	items := make([]*replica.Item, 3)
	for i := 0; i < 3; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			return nil, nil, nil, err
		}
		procs[i] = p
		if i == 0 {
			if _, err := p.CreateGroup(name); err != nil {
				return nil, nil, nil, err
			}
		} else {
			if _, err := p.JoinByName(name, isis.JoinOptions{}); err != nil {
				return nil, nil, nil, err
			}
		}
		qc := &queueCopy{}
		copies[i] = qc
		items[i] = replica.Manage(p, mustGid(p, name), "queue", qc.push, nil,
			replica.Options{Mode: mode, Entry: isis.EntryUserBase + 1})
	}
	return procs, copies, items, nil
}

func mustGid(p *isis.Process, name string) isis.Address {
	gid, err := p.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	return gid
}

// run drives writers concurrently and reports whether all copies converge to
// the same sequence.
func run(cluster *isis.Cluster, name string, mode replica.Mode, writers int) {
	_, copies, items, err := buildQueue(cluster, name, mode)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				item := fmt.Sprintf("w%d-%02d", w, i)
				if err := items[w].Update(isis.NewMessage().PutString("item", item)); err != nil {
					log.Printf("enqueue: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Wait for every copy to hold all items.
	total := writers * 10
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, c := range copies {
			if len(c.snapshot()) < total {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	ref := copies[0].snapshot()
	agree := true
	for i := 1; i < len(copies); i++ {
		got := copies[i].snapshot()
		if len(got) != len(ref) {
			agree = false
			break
		}
		for j := range ref {
			if got[j] != ref[j] {
				agree = false
				break
			}
		}
	}
	modeName := "CBCAST (causal)"
	if mode == replica.Total {
		modeName = "ABCAST (total order)"
	}
	fmt.Printf("%-22s writers=%d  items/copy=%d  copies identical: %v\n",
		modeName, writers, len(ref), agree)
	if !agree {
		fmt.Println("  (as the paper notes, per-sender FIFO is not enough once several")
		fmt.Println("   processes update the queue concurrently — ABCAST is required)")
	}
}

func main() {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("== replicated FIFO queue: choosing the right primitive ==")
	// One writer: CBCAST suffices (and is the cheaper primitive).
	run(cluster, "queue-single-writer", replica.Causal, 1)
	// Three concurrent writers with ABCAST: copies stay identical.
	run(cluster, "queue-multi-abcast", replica.Total, 3)
	// Three concurrent writers with only causal ordering: copies may
	// diverge (the run reports whether they happened to agree).
	run(cluster, "queue-multi-cbcast", replica.Causal, 3)
}
