// Command factory sketches the factory-automation scenario that motivates
// the paper's introduction (Section 1): a VLSI fabrication line controlled
// by cooperating services built from the toolkit.
//
//   - The "emulsion" service is a process group that executes deposition
//     requests with the coordinator–cohort tool: one member performs each
//     request, the others monitor it and take over if it fails.
//   - A replicated work-queue (the replicated data tool in Total mode)
//     records pending wafer batches identically at every member.
//   - The configuration tool re-balances the line at run time.
//   - The news service broadcasts alerts to every enrolled operator console.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	isis "repro"
	"repro/internal/tools/config"
	"repro/internal/tools/coordcohort"
	"repro/internal/tools/news"
	"repro/internal/tools/replica"
)

const entryDeposit = isis.EntryUserBase + 5

func main() {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The news service: one server, plus operator consoles that subscribe
	// to the "alerts" subject.
	newsHost, _ := cluster.Site(1).Spawn()
	if _, err := news.StartServer(newsHost); err != nil {
		log.Fatal(err)
	}
	console, _ := cluster.Site(3).Spawn()
	consoleClient, err := news.NewClient(console)
	if err != nil {
		log.Fatal(err)
	}
	alerts := make(chan string, 16)
	if err := consoleClient.Subscribe("alerts", func(p news.Posting) { alerts <- p.Body }); err != nil {
		log.Fatal(err)
	}

	// The emulsion-deposit service: three members across the three sites.
	fmt.Println("== starting the emulsion service (3 members) ==")
	type member struct {
		proc  *isis.Process
		tool  *coordcohort.Tool
		queue *replica.Item
		cfg   *config.Tool
		done  atomic.Int64
	}
	members := make([]*member, 3)
	var gid isis.Address
	var plist []isis.Address
	for i := 0; i < 3; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			log.Fatal(err)
		}
		m := &member{proc: p}
		members[i] = m
		if i == 0 {
			v, err := p.CreateGroup("emulsion")
			if err != nil {
				log.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("emulsion", isis.JoinOptions{}); err != nil {
				log.Fatal(err)
			}
		}
		plist = append(plist, p.Address())
	}
	// Tool wiring (done after the membership is complete so every member
	// shares the same participant list).
	newsPoster, _ := cluster.Site(1).Spawn()
	poster, err := news.NewClient(newsPoster)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range members {
		i, m := i, m
		m.tool = coordcohort.New(m.proc, gid)
		m.cfg = config.New(m.proc, gid)
		// The replicated work queue: every member appends batches in the
		// same (ABCAST) order.
		var local []string
		m.queue = replica.Manage(m.proc, gid, "workqueue",
			func(args *isis.Message) { local = append(local, args.GetString("batch", "")) },
			func(*isis.Message) *isis.Message {
				return isis.NewMessage().PutInt("pending", int64(len(local)))
			}, replica.Options{Mode: replica.Total})
		// Deposition requests are executed coordinator–cohort style.
		m.proc.BindEntry(entryDeposit, func(req *isis.Message) {
			m.tool.Handle(req, plist, func(r *isis.Message) *isis.Message {
				batch := r.GetString("batch", "")
				m.done.Add(1)
				_ = poster.Post("alerts", fmt.Sprintf("member %d deposited emulsion on %s", i, batch), nil)
				return isis.NewMessage().PutString("status", "deposited "+batch)
			}, nil)
		})
	}
	time.Sleep(100 * time.Millisecond)

	// The transport service submits wafer batches: first enqueue on the
	// replicated queue, then request deposition via group RPC.
	transport, _ := cluster.Site(2).Spawn()
	if _, err := transport.Lookup("emulsion"); err != nil {
		log.Fatal(err)
	}
	queueClient := replica.NewClient(transport, gid, "workqueue", 0, replica.Total)

	fmt.Println("== submitting three wafer batches ==")
	for _, batch := range []string{"batch-A", "batch-B", "batch-C"} {
		if err := queueClient.Update(isis.NewMessage().PutString("batch", batch)); err != nil {
			log.Fatal(err)
		}
		req := isis.NewMessage().PutString("batch", batch)
		reply, err := transport.Query(isis.CBCAST, []isis.Address{gid}, entryDeposit, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  transport: %s\n", reply.GetString("status", "?"))
	}
	if r, err := queueClient.Read(isis.NewMessage()); err == nil {
		fmt.Printf("  replicated work queue length at a member: %d\n", r.GetInt("pending", -1))
	}

	// Dynamic reconfiguration: shift the line to "night mode" through the
	// configuration tool; every member sees the change at the same point.
	fmt.Println("== reconfiguring the line (config tool) ==")
	if err := members[0].cfg.Update("shift", []byte("night")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for i, m := range members {
		v, _ := m.cfg.Read("shift")
		fmt.Printf("  member %d sees shift=%s\n", i, v)
	}

	// A member fails mid-run; the cohorts keep the service available.
	fmt.Println("== failing one member; the service keeps answering ==")
	if err := members[0].proc.Kill(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	reply, err := transport.Query(isis.CBCAST, []isis.Address{gid}, entryDeposit,
		isis.NewMessage().PutString("batch", "batch-D"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transport after failure: %s\n", reply.GetString("status", "?"))

	// Drain a few operator alerts.
	fmt.Println("== operator console alerts ==")
	deadline := time.After(2 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case a := <-alerts:
			fmt.Printf("  alert: %s\n", a)
		case <-deadline:
			i = 3
		}
	}
	fmt.Printf("== done; counters: %+v ==\n", cluster.Counters())
}
