// Command quickstart is the smallest complete ISIS program: it builds a
// simulated three-site cluster, forms a process group, and demonstrates the
// three multicast primitives (CBCAST, ABCAST, GBCAST), ranked membership
// views, and group RPC with reply collection.
package main

import (
	"fmt"
	"log"
	"maps"
	"sort"
	"sync"
	"time"

	isis "repro"
)

func main() {
	// A cluster of three sites on a simulated LAN with no artificial
	// delays (use isis.PaperNetConfig() to reproduce the 1987 testbed).
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One member process per site. Each member records what it receives
	// and answers queries with its rank.
	type member struct {
		proc *isis.Process
		mu   sync.Mutex
		log  []string
	}
	members := make([]*member, 3)
	var gid isis.Address
	for i := 0; i < 3; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			log.Fatal(err)
		}
		m := &member{proc: p}
		members[i] = m
		p.BindEntry(isis.EntryUserBase, func(msg *isis.Message) {
			m.mu.Lock()
			m.log = append(m.log, msg.GetString("body", ""))
			m.mu.Unlock()
			if msg.Has("@session") { // the caller asked for replies
				view, _ := p.CurrentView(gid)
				_ = p.Reply(msg, isis.NewMessage().
					PutInt("rank", int64(view.RankOf(p.Address()))).
					PutString("body", "ack"))
			}
		})
		if i == 0 {
			v, err := p.CreateGroup("demo")
			if err != nil {
				log.Fatal(err)
			}
			gid = v.Group
			fmt.Printf("created group %v with view %v\n", gid, v)
		} else {
			v, err := p.JoinByName("demo", isis.JoinOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("member %d joined; first view %v\n", i, v)
		}
	}

	// Every member sees the same ranked view.
	view, _ := members[0].proc.CurrentView(gid)
	fmt.Printf("final membership (ranked by age): %v\n", view)

	// Asynchronous CBCAST: the sender continues immediately.
	if _, err := members[0].proc.Cast(isis.CBCAST, []isis.Address{gid},
		isis.EntryUserBase, isis.Text("causal broadcast")); err != nil {
		log.Fatal(err)
	}

	// ABCAST from two members concurrently: delivered in the same order
	// everywhere.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = members[i].proc.Cast(isis.ABCAST, []isis.Address{gid},
				isis.EntryUserBase, isis.Text(fmt.Sprintf("total order from member %d", i)))
		}(i)
	}
	wg.Wait()

	// GBCAST: ordered relative to everything (used here as a marker).
	if _, err := members[0].proc.Cast(isis.GBCAST, []isis.Address{gid},
		isis.EntryUserBase, isis.Text("globally ordered marker")); err != nil {
		log.Fatal(err)
	}

	// A client (not a member) performs a group RPC and waits for ALL
	// replies; it learns each member's rank without knowing the membership.
	client, err := cluster.Site(2).Spawn()
	if err != nil {
		log.Fatal(err)
	}
	replies, err := client.Cast(isis.CBCAST, []isis.Address{gid},
		isis.EntryUserBase, isis.Text("who is out there?"), isis.Replies(isis.All))
	if err != nil {
		log.Fatal(err)
	}
	ranks := make([]int, 0, len(replies))
	for _, r := range replies {
		ranks = append(ranks, int(r.GetInt("rank", -1)))
	}
	sort.Ints(ranks)
	fmt.Printf("group RPC collected %d replies from ranks %v\n", len(replies), ranks)

	// Show that every member delivered the same messages in the same
	// relative order for the ordered primitives.
	time.Sleep(200 * time.Millisecond)
	for i, m := range members {
		m.mu.Lock()
		fmt.Printf("member %d delivery log: %v\n", i, m.log)
		m.mu.Unlock()
	}

	// The GBCAST marker is ordered with respect to every other broadcast:
	// the set of messages delivered before it must be identical at every
	// member. This is a pinned invariant, not a demo — the GBCAST flush
	// completes or fences ABCASTs still in flight when the group wedges, so
	// a concurrent ABCAST can never land on different sides of the marker at
	// different sites (CI runs this program and fails on a violation).
	const marker = "globally ordered marker"
	markerAt := func(m *member) int {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, b := range m.log {
			if b == marker {
				return i
			}
		}
		return -1
	}
	// Wait for the marker itself first, so a slow delivery reads as the
	// timeout it is, not as an ordering violation.
	deadline := time.Now().Add(5 * time.Second)
	for _, m := range members {
		for markerAt(m) < 0 {
			if time.Now().After(deadline) {
				log.Fatalf("marker not delivered at every member within 5s (a liveness problem, not an ordering violation)")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	var ref map[string]bool
	for i, m := range members {
		m.mu.Lock()
		before := make(map[string]bool)
		for _, b := range m.log {
			if b == marker {
				break
			}
			before[b] = true
		}
		m.mu.Unlock()
		if i == 0 {
			ref = before
		} else if !maps.Equal(before, ref) {
			log.Fatalf("marker invariant violated: member %d delivered %v before the marker, member 0 delivered %v", i, before, ref)
		}
	}
	fmt.Println("marker invariant holds: every member delivered the same messages before the GBCAST marker")
	fmt.Printf("cluster protocol counters: %+v\n", cluster.Counters())
}
