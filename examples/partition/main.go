// Command partition demonstrates the primary-partition rule and partition
// merge, which extend the paper's crash-only fault model: a five-site
// replicated ledger is split 3/2; the majority keeps committing while the
// minority wedges read-only (no split-brain view, writes refused with
// ErrNonPrimary); and when the partition heals the minority members merge
// back automatically — same processes, no restart — rebuilding their state
// from the primary through the ordinary state-transfer machinery.
//
// The whole cycle is traced through the operational event stream
// (Site.Events): the minority site's wedge, primary loss, merge and
// primary resumption are printed as they happen, and the run fails if the
// collected trace is empty or tells the story out of order — the trace is
// an assertion, not just decoration.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	isis "repro"
)

// ledger is the replicated application state: an ordered log of entries.
// Its state receiver replaces the log wholesale on every transfer, which is
// the partition-merge contract — speculative minority state is discarded in
// favour of the primary's.
type ledger struct {
	mu   sync.Mutex
	rows []string
}

func (l *ledger) apply(row string) {
	l.mu.Lock()
	l.rows = append(l.rows, row)
	l.mu.Unlock()
}

func (l *ledger) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.rows...)
}

func (l *ledger) provider() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.rows))
	for i, r := range l.rows {
		out[i] = []byte(r)
	}
	return out
}

func (l *ledger) receiver() func([]byte, bool) {
	fresh := true
	return func(b []byte, last bool) {
		l.mu.Lock()
		defer l.mu.Unlock()
		if fresh {
			l.rows = nil
			fresh = false
		}
		if len(b) > 0 {
			l.rows = append(l.rows, string(b))
		}
		if last {
			fresh = true
		}
	}
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func main() {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 5}) // Merge: isis.MergeAuto is the default
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	net, ok := cluster.Network()
	if !ok {
		log.Fatal("partition example requires the simnet backend")
	}

	// A five-member replicated ledger, one member per site. Every member is
	// both a state provider (it can seed a joiner) and a state receiver (a
	// merge can rebuild it).
	members := make([]*isis.Process, 5)
	ledgers := make([]*ledger, 5)
	var gid isis.Address
	for i := 0; i < 5; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			log.Fatal(err)
		}
		l := &ledger{}
		members[i], ledgers[i] = p, l
		p.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
			l.apply(m.GetString("body", ""))
		})
		if i == 0 {
			v, err := p.CreateGroup("bank")
			if err != nil {
				log.Fatal(err)
			}
			gid = v.Group
			if err := p.SetStateReceiver(gid, l.receiver()); err != nil {
				log.Fatal(err)
			}
		} else if _, err := p.JoinByName("bank", isis.JoinOptions{StateReceiver: l.receiver()}); err != nil {
			log.Fatal(err)
		}
		if err := p.SetStateProvider(gid, l.provider); err != nil {
			log.Fatal(err)
		}
	}
	waitFor("full membership", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 5
	})
	fmt.Println("five-member ledger formed; committing w1, w2")
	for _, w := range []string{"w1", "w2"} {
		if _, err := members[0].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text(w)); err != nil {
			log.Fatal(err)
		}
	}
	waitFor("pre-partition replication", func() bool {
		return len(ledgers[4].snapshot()) == 2
	})

	// Trace the minority site's view of the partition lifecycle through the
	// operational event stream (this replaces the old WatchPrimary idiom —
	// and unlike it, the subscription can be cancelled).
	events, cancelEvents := cluster.Site(5).Events(isis.EventFilter{Group: gid})
	var traceMu sync.Mutex
	var trace []isis.Event
	traceDone := make(chan struct{})
	go func() {
		defer close(traceDone)
		for e := range events {
			traceMu.Lock()
			trace = append(trace, e)
			traceMu.Unlock()
			fmt.Printf("  event: %v\n", e)
		}
	}()

	fmt.Println("\n--- partitioning {1,2,3} | {4,5} ---")
	for _, a := range []isis.SiteID{1, 2, 3} {
		for _, b := range []isis.SiteID{4, 5} {
			net.Partition(a, b)
		}
	}
	waitFor("majority view without the minority", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 3
	})
	waitFor("minority wedged non-primary", func() bool {
		return !members[4].GroupPrimary(gid)
	})
	fmt.Println("majority removed the stranded members and keeps committing: p1, p2")
	for _, w := range []string{"p1", "p2"} {
		if _, err := members[0].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text(w)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := members[4].Cast(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text("forbidden")); errors.Is(err, isis.ErrNonPrimary) {
		fmt.Println("minority write correctly refused:", err)
	} else {
		log.Fatalf("minority write was not refused (err=%v)", err)
	}
	waitFor("majority commits", func() bool { return len(ledgers[0].snapshot()) == 4 })
	fmt.Printf("majority ledger: %v\n", ledgers[0].snapshot())
	fmt.Printf("minority ledger (stale, read-only): %v\n", ledgers[4].snapshot())

	fmt.Println("\n--- healing the partition ---")
	net.HealAll()
	waitFor("minority merged back", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 5 &&
			v.Contains(members[3].Address()) && v.Contains(members[4].Address()) &&
			members[3].GroupPrimary(gid) && members[4].GroupPrimary(gid)
	})
	waitFor("minority state rebuilt from the primary", func() bool {
		return len(ledgers[3].snapshot()) == 4 && len(ledgers[4].snapshot()) == 4
	})
	fmt.Println("minority merged back without a restart; state rebuilt from the primary")
	fmt.Printf("site 4 ledger after merge: %v\n", ledgers[3].snapshot())
	fmt.Printf("site 5 ledger after merge: %v\n", ledgers[4].snapshot())

	// The merged members carry writes again.
	if _, err := members[4].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text("after-merge")); err != nil {
		log.Fatal(err)
	}
	waitFor("post-merge write everywhere", func() bool {
		for _, l := range ledgers {
			if len(l.snapshot()) != 5 {
				return false
			}
		}
		return true
	})
	fmt.Printf("\nfinal ledgers (identical at all five members): %v\n", ledgers[0].snapshot())

	// The event trace must exist and must tell the partition story in order:
	// wedge and primary loss before the merge starts, the merge landing
	// before primaryness resumes. An empty or shuffled trace means the
	// observability layer lies about what the protocols did.
	waitFor("primary-resumed event in the trace", func() bool {
		return eventIndex(snapshotTrace(&traceMu, &trace), isis.EventPrimaryResumed) >= 0
	})
	cancelEvents()
	<-traceDone
	final := snapshotTrace(&traceMu, &trace)
	wedge := eventIndex(final, isis.EventPartitionWedge)
	lost := eventIndex(final, isis.EventPrimaryLost)
	start := eventIndex(final, isis.EventMergeStart)
	land := eventIndex(final, isis.EventMergeLand)
	resumed := eventIndex(final, isis.EventPrimaryResumed)
	if wedge < 0 || lost < 0 || start < 0 || land < 0 || resumed < 0 {
		log.Fatalf("incomplete event trace (wedge=%d lost=%d start=%d land=%d resumed=%d)",
			wedge, lost, start, land, resumed)
	}
	if !(wedge < start && lost < start && start < land && land < resumed) {
		log.Fatalf("incoherent event trace order (wedge=%d lost=%d start=%d land=%d resumed=%d)",
			wedge, lost, start, land, resumed)
	}
	fmt.Printf("event trace coherent: %d events, wedge→merge→resume in order\n", len(final))
}

func snapshotTrace(mu *sync.Mutex, trace *[]isis.Event) []isis.Event {
	mu.Lock()
	defer mu.Unlock()
	return append([]isis.Event(nil), (*trace)...)
}

func eventIndex(evs []isis.Event, k isis.EventKind) int {
	for i, e := range evs {
		if e.Kind == k {
			return i
		}
	}
	return -1
}
