// Command partition demonstrates the primary-partition rule and partition
// merge, which extend the paper's crash-only fault model: a five-site
// replicated ledger is split 3/2; the majority keeps committing while the
// minority wedges read-only (no split-brain view, writes refused with
// ErrNonPrimary); and when the partition heals the minority members merge
// back automatically — same processes, no restart — rebuilding their state
// from the primary through the ordinary state-transfer machinery.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	isis "repro"
)

// ledger is the replicated application state: an ordered log of entries.
// Its state receiver replaces the log wholesale on every transfer, which is
// the partition-merge contract — speculative minority state is discarded in
// favour of the primary's.
type ledger struct {
	mu   sync.Mutex
	rows []string
}

func (l *ledger) apply(row string) {
	l.mu.Lock()
	l.rows = append(l.rows, row)
	l.mu.Unlock()
}

func (l *ledger) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.rows...)
}

func (l *ledger) provider() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, len(l.rows))
	for i, r := range l.rows {
		out[i] = []byte(r)
	}
	return out
}

func (l *ledger) receiver() func([]byte, bool) {
	fresh := true
	return func(b []byte, last bool) {
		l.mu.Lock()
		defer l.mu.Unlock()
		if fresh {
			l.rows = nil
			fresh = false
		}
		if len(b) > 0 {
			l.rows = append(l.rows, string(b))
		}
		if last {
			fresh = true
		}
	}
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func main() {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 5}) // Merge: isis.MergeAuto is the default
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	net := cluster.Network()

	// A five-member replicated ledger, one member per site. Every member is
	// both a state provider (it can seed a joiner) and a state receiver (a
	// merge can rebuild it).
	members := make([]*isis.Process, 5)
	ledgers := make([]*ledger, 5)
	var gid isis.Address
	for i := 0; i < 5; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			log.Fatal(err)
		}
		l := &ledger{}
		members[i], ledgers[i] = p, l
		p.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
			l.apply(m.GetString("body", ""))
		})
		if i == 0 {
			v, err := p.CreateGroup("bank")
			if err != nil {
				log.Fatal(err)
			}
			gid = v.Group
			if err := p.SetStateReceiver(gid, l.receiver()); err != nil {
				log.Fatal(err)
			}
		} else if _, err := p.JoinByName("bank", isis.JoinOptions{StateReceiver: l.receiver()}); err != nil {
			log.Fatal(err)
		}
		if err := p.SetStateProvider(gid, l.provider); err != nil {
			log.Fatal(err)
		}
	}
	waitFor("full membership", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 5
	})
	fmt.Println("five-member ledger formed; committing w1, w2")
	for _, w := range []string{"w1", "w2"} {
		if _, err := members[0].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text(w), 0); err != nil {
			log.Fatal(err)
		}
	}
	waitFor("pre-partition replication", func() bool {
		return len(ledgers[4].snapshot()) == 2
	})

	// Watch the minority's primary status flip.
	cluster.Site(5).WatchPrimary(func(g isis.Address, primary bool) {
		fmt.Printf("site 5: group primary=%v\n", primary)
	})

	fmt.Println("\n--- partitioning {1,2,3} | {4,5} ---")
	for _, a := range []isis.SiteID{1, 2, 3} {
		for _, b := range []isis.SiteID{4, 5} {
			net.Partition(a, b)
		}
	}
	waitFor("majority view without the minority", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 3
	})
	waitFor("minority wedged non-primary", func() bool {
		return !members[4].GroupPrimary(gid)
	})
	fmt.Println("majority removed the stranded members and keeps committing: p1, p2")
	for _, w := range []string{"p1", "p2"} {
		if _, err := members[0].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text(w), 0); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := members[4].Cast(isis.CBCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text("forbidden"), 0); errors.Is(err, isis.ErrNonPrimary) {
		fmt.Println("minority write correctly refused:", err)
	} else {
		log.Fatalf("minority write was not refused (err=%v)", err)
	}
	waitFor("majority commits", func() bool { return len(ledgers[0].snapshot()) == 4 })
	fmt.Printf("majority ledger: %v\n", ledgers[0].snapshot())
	fmt.Printf("minority ledger (stale, read-only): %v\n", ledgers[4].snapshot())

	fmt.Println("\n--- healing the partition ---")
	net.HealAll()
	waitFor("minority merged back", func() bool {
		v, ok := members[0].CurrentView(gid)
		return ok && v.Size() == 5 &&
			v.Contains(members[3].Address()) && v.Contains(members[4].Address()) &&
			members[3].GroupPrimary(gid) && members[4].GroupPrimary(gid)
	})
	waitFor("minority state rebuilt from the primary", func() bool {
		return len(ledgers[3].snapshot()) == 4 && len(ledgers[4].snapshot()) == 4
	})
	fmt.Println("minority merged back without a restart; state rebuilt from the primary")
	fmt.Printf("site 4 ledger after merge: %v\n", ledgers[3].snapshot())
	fmt.Printf("site 5 ledger after merge: %v\n", ledgers[4].snapshot())

	// The merged members carry writes again.
	if _, err := members[4].Cast(isis.ABCAST, []isis.Address{gid}, isis.EntryUserBase, isis.Text("after-merge"), 0); err != nil {
		log.Fatal(err)
	}
	waitFor("post-merge write everywhere", func() bool {
		for _, l := range ledgers {
			if len(l.snapshot()) != 5 {
				return false
			}
		}
		return true
	})
	fmt.Printf("\nfinal ledgers (identical at all five members): %v\n", ledgers[0].snapshot())
}
