// Command twentyquestions reproduces the worked example of Section 5 of the
// paper: a "twenty questions" service whose replicated database is
// partitioned among the members of a process group.
//
// The program walks through the paper's development steps:
//
//	Step 1/2 — a distributed query service: vertical-mode queries
//	          ("price > 9000") are answered by the member responsible for
//	          the column (column mod NMEMBERS); horizontal-mode queries
//	          ("*price > 9000") are answered by every member, each basing
//	          its answer on the rows it owns (row mod NMEMBERS).
//	Step 4   — hot standbys that join the group but send null replies, so
//	          clients are oblivious to them until a member fails.
//	Step 5   — dynamic updates to the database, carried by GBCAST so they
//	          are virtually synchronous relative to CBCAST queries.
//	Step 3/6 — a member fails; the standby observes the membership change,
//	          recomputes its rank, and starts answering in its place.
//
// Every decision (who answers which query) is made locally from the ranked
// membership view — no agreement protocol runs per request.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	isis "repro"
)

// The first rows of the demonstration database from the paper.
var seedRows = []string{
	"car red small 5 Weeks Toy",
	"car yellow tiny 6 Mattel Toy",
	"car black compact 4995 Hyundai Excel",
	"car tan wagon 6190 Nissan Sentra",
	"car green sedan 10999 Ford Taurus",
	"car blue compact 5799 Honda Civic",
	"car white wagon 15248 Ford Taurus",
	"car blue sport 18409 Nissan 300ZX",
	"car blue sport 26776 Porsche 944",
	"car white sport 35000 Mercedes 300D",
}

var columns = []string{"object", "color", "size", "price", "make", "model"}

const (
	entryQuery  = isis.EntryUserBase     // queries (CBCAST)
	entryUpdate = isis.EntryUserBase + 1 // database updates (GBCAST)
)

// server is one member of the twenty-questions service.
type server struct {
	proc    *isis.Process
	name    string
	standby bool

	mu   sync.Mutex
	rows []string
	rank int
	size int
}

// nmembers is the number of active (non-standby) members the work is
// partitioned across, as in the paper's NMEMBERS constant.
const nmembers = 3

func newServer(p *isis.Process, name string, standby bool) *server {
	s := &server{proc: p, name: name, standby: standby, rows: append([]string(nil), seedRows...)}
	p.BindEntry(entryQuery, s.onQuery)
	p.BindEntry(entryUpdate, s.onUpdate)
	return s
}

// track keeps the member's own rank up to date as views change; standbys
// promote themselves when they move into the first nmembers ranks.
func (s *server) track(gid isis.Address) {
	s.proc.Monitor(gid, func(v isis.View) {
		s.mu.Lock()
		s.rank = v.RankOf(s.proc.Address())
		s.size = v.Size()
		promoted := s.standby && s.rank < nmembers
		if promoted {
			s.standby = false
		}
		s.mu.Unlock()
		if promoted {
			fmt.Printf("  [%s] standby promoted: now answering as member %d\n", s.name, s.rank)
		}
	})
}

// onQuery answers a query using only local information and the ranked view.
func (s *server) onQuery(m *isis.Message) {
	q := m.GetString("q", "")
	s.mu.Lock()
	rank, standby := s.rank, s.standby
	rows := append([]string(nil), s.rows...)
	s.mu.Unlock()

	if standby || rank < 0 || rank >= nmembers {
		_ = s.proc.NullReply(m) // standbys and excess members stay invisible
		return
	}
	horizontal := strings.HasPrefix(q, "*")
	q = strings.TrimPrefix(q, "*")
	col, op, value, err := parseQuery(q)
	if err != nil {
		_ = s.proc.Reply(m, isis.NewMessage().PutString("answer", "error: "+err.Error()))
		return
	}
	if !horizontal {
		// Vertical mode: only member (column mod NMEMBERS) answers.
		if col%nmembers != rank {
			_ = s.proc.NullReply(m)
			return
		}
		_ = s.proc.Reply(m, isis.NewMessage().
			PutString("answer", evaluate(rows, col, op, value)).
			PutInt("member", int64(rank)))
		return
	}
	// Horizontal mode: every active member answers over its own rows.
	var mine []string
	for i, r := range rows {
		if i%nmembers == rank {
			mine = append(mine, r)
		}
	}
	_ = s.proc.Reply(m, isis.NewMessage().
		PutString("answer", evaluate(mine, col, op, value)).
		PutInt("member", int64(rank)))
}

// onUpdate applies a database update. Updates arrive by GBCAST, so they are
// ordered identically at every member relative to queries and to membership
// changes.
func (s *server) onUpdate(m *isis.Message) {
	row := m.GetString("row", "")
	if row == "" {
		return
	}
	s.mu.Lock()
	s.rows = append(s.rows, row)
	n := len(s.rows)
	s.mu.Unlock()
	fmt.Printf("  [%s] database now has %d rows\n", s.name, n)
}

// parseQuery splits "price > 9000" into a column index, operator and value.
func parseQuery(q string) (col int, op string, value string, err error) {
	fields := strings.Fields(q)
	if len(fields) != 3 {
		return 0, "", "", fmt.Errorf("malformed query %q", q)
	}
	for i, c := range columns {
		if c == fields[0] {
			return i, fields[1], fields[2], nil
		}
	}
	return 0, "", "", fmt.Errorf("unknown column %q", fields[0])
}

// evaluate answers yes / no / sometimes over the given rows.
func evaluate(rows []string, col int, op, value string) string {
	matches, total := 0, 0
	for _, r := range rows {
		fields := strings.Fields(r)
		if col >= len(fields) {
			continue
		}
		total++
		if matchField(fields[col], op, value) {
			matches++
		}
	}
	switch {
	case total == 0 || matches == 0:
		return "no"
	case matches == total:
		return "yes"
	default:
		return "sometimes"
	}
}

func matchField(field, op, value string) bool {
	switch op {
	case "=":
		return field == value
	case ">", "<":
		fv, err1 := strconv.Atoi(field)
		qv, err2 := strconv.Atoi(value)
		if err1 != nil || err2 != nil {
			return false
		}
		if op == ">" {
			return fv > qv
		}
		return fv < qv
	default:
		return false
	}
}

// ask sends one query and prints the collected answers.
func ask(client *isis.Process, gid isis.Address, q string, want int) {
	m := isis.NewMessage().PutString("q", q)
	replies, err := client.Cast(isis.CBCAST, []isis.Address{gid}, entryQuery, m, isis.Replies(want))
	if err != nil && len(replies) == 0 {
		fmt.Printf("query %-18q -> error: %v\n", q, err)
		return
	}
	parts := make([]string, 0, len(replies))
	for _, r := range replies {
		parts = append(parts, fmt.Sprintf("member %d: %s", r.GetInt("member", -1), r.GetString("answer", "?")))
	}
	fmt.Printf("query %-18q -> %s\n", q, strings.Join(parts, ", "))
}

func main() {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Steps 1-2: three active members partition the database; step 4: a
	// fourth member joins as a hot standby.
	fmt.Println("== building the twenty-questions service (3 members + 1 standby) ==")
	var gid isis.Address
	servers := make([]*server, 0, 4)
	for i := 0; i < 4; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			log.Fatal(err)
		}
		s := newServer(p, fmt.Sprintf("member-%d", i), i >= nmembers)
		servers = append(servers, s)
		if i == 0 {
			v, err := p.CreateGroup("twenty")
			if err != nil {
				log.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("twenty", isis.JoinOptions{}); err != nil {
				log.Fatal(err)
			}
		}
		s.track(gid)
	}
	time.Sleep(100 * time.Millisecond) // let the final view settle everywhere

	// A front-end client at site 2 issues queries.
	client, err := cluster.Site(2).Spawn()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Lookup("twenty"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== vertical-mode queries (one member answers each) ==")
	ask(client, gid, "color = red", 1)
	ask(client, gid, "price > 9000", 1)
	ask(client, gid, "make = Porsche", 1)

	fmt.Println("== horizontal-mode queries (every active member answers over its rows) ==")
	ask(client, gid, "*price > 9000", nmembers)
	ask(client, gid, "*size = sport", nmembers)

	// Step 5: a dynamic update, virtually synchronous with the queries.
	fmt.Println("== dynamic update via GBCAST ==")
	upd := isis.NewMessage().PutString("row", "car silver sedan 52000 Lucid Air")
	if _, err := client.Cast(isis.GBCAST, []isis.Address{gid}, entryUpdate, upd); err != nil {
		log.Fatal(err)
	}
	ask(client, gid, "price > 40000", 1)

	// Steps 3/6: the member at site 2 fails; the hot standby is promoted by
	// the membership change and queries keep working.
	fmt.Println("== failing member-1; the standby takes over ==")
	if err := servers[1].proc.Kill(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the failure view propagate
	ask(client, gid, "price > 9000", 1)
	ask(client, gid, "*price > 9000", nmembers)

	fmt.Printf("== done; cluster counters: %+v ==\n", cluster.Counters())
}
