package msg

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/addr"
)

// sampleMessage builds a small packet-shaped message: a few scalar fields, a
// timestamp-like bytes field, and a nested payload — the shape of a CBCAST
// data packet.
func sampleMessage() *Message {
	payload := New().PutBytes("data", bytes.Repeat([]byte{7}, 64))
	return New().
		PutInt("&proto", 1).
		PutInt("&viewid", 3).
		PutInt("&msgseq", 42).
		PutAddress("&sender", addr.NewProcess(1, 0, 9)).
		PutBytes("&vt", []byte{0, 0, 0, 0, 0, 0, 0, 5}).
		PutMessage("&payload", payload)
}

func TestCachedMarshalSharedUntilMutation(t *testing.T) {
	m := sampleMessage()
	before := EncodeCount()
	b1, err := m.CachedMarshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.CachedMarshal()
	if err != nil {
		t.Fatal(err)
	}
	if EncodeCount()-before != 1 {
		t.Errorf("two CachedMarshal calls encoded %d times, want 1", EncodeCount()-before)
	}
	if &b1[0] != &b2[0] {
		t.Error("CachedMarshal did not return the shared cached slice")
	}
	// The cached encoding must equal a fresh Marshal.
	fresh, _ := m.Marshal()
	if !bytes.Equal(b1, fresh) {
		t.Error("cached encoding differs from fresh Marshal")
	}

	// Mutating the message invalidates the cache.
	m.PutInt("&extra", 1)
	b3, err := m.CachedMarshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Error("cache not invalidated by mutation")
	}

	// Mutating a *nested* message must also invalidate the parent's cache.
	m.GetMessage("&payload").PutInt("late", 9)
	b4, err := m.CachedMarshal()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b3, b4) {
		t.Error("cache not invalidated by nested mutation")
	}
	if got, _ := Unmarshal(b4); got.GetMessage("&payload").GetInt("late", 0) != 9 {
		t.Error("nested mutation missing from re-encoded cache")
	}
}

func TestUnmarshalIntoReusesStorage(t *testing.T) {
	enc, err := sampleMessage().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := UnmarshalInto(dst, enc); err != nil {
		t.Fatal(err)
	}
	vtBefore := dst.GetBytes("&vt")
	if err := UnmarshalInto(dst, enc); err != nil {
		t.Fatal(err)
	}
	vtAfter := dst.GetBytes("&vt")
	if &vtBefore[0] != &vtAfter[0] {
		t.Error("same-shape re-decode did not reuse the bytes field storage")
	}
	re, _ := dst.Marshal()
	if !bytes.Equal(re, enc) {
		t.Error("re-decode corrupted the message")
	}
}

func TestUnmarshalIntoShapeChange(t *testing.T) {
	a, _ := New().PutInt("a", 1).PutInt("b", 2).PutInt("c", 3).Marshal()
	b, _ := New().PutInt("a", 9).PutString("z", "tail").Marshal()
	dst := New()
	if err := UnmarshalInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(dst, b); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 || dst.GetInt("a", 0) != 9 || dst.GetString("z", "") != "tail" {
		t.Errorf("shape change decoded wrong: %s", dst.Format())
	}
	if dst.Has("b") || dst.Has("c") {
		t.Error("stale fields survived a narrowing decode")
	}
	// Widening back also works.
	if err := UnmarshalInto(dst, a); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 || dst.GetInt("c", 0) != 3 {
		t.Errorf("widening decode wrong: %s", dst.Format())
	}
}

// appendRawField hand-encodes one field, for crafting non-canonical inputs.
func appendRawField(dst []byte, name string, typ FieldType, payload []byte) []byte {
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	dst = append(dst, byte(typ))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

func TestUnmarshalUnsortedAndDuplicateFields(t *testing.T) {
	intPayload := func(v int64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		return b[:]
	}
	// Fields out of order: decoders must accept and re-sort.
	raw := binary.BigEndian.AppendUint16(nil, 2)
	raw = appendRawField(raw, "zz", TypeInt, intPayload(1))
	raw = appendRawField(raw, "aa", TypeInt, intPayload(2))
	m, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.GetInt("aa", 0) != 2 || m.GetInt("zz", 0) != 1 {
		t.Errorf("unsorted decode wrong: %s", m.Format())
	}
	names := m.Names()
	if names[0] != "aa" || names[1] != "zz" {
		t.Errorf("fields not re-sorted: %v", names)
	}

	// Duplicate names: last value wins, like the historical map behaviour.
	raw = binary.BigEndian.AppendUint16(nil, 2)
	raw = appendRawField(raw, "x", TypeInt, intPayload(1))
	raw = appendRawField(raw, "x", TypeInt, intPayload(7))
	m, err = Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.GetInt("x", 0) != 7 {
		t.Errorf("duplicate decode wrong: %s", m.Format())
	}
}

// TestPooledRoundTripZeroAllocs is the allocation regression test promised by
// the hot-path overhaul: a pooled Marshal/Unmarshal round trip of a small
// message must not allocate once the scratch buffer and the receiving
// message are warm.
func TestPooledRoundTripZeroAllocs(t *testing.T) {
	m := sampleMessage()
	buf := GetBuffer()
	defer PutBuffer(buf)
	dst := New()

	var err error
	allocs := testing.AllocsPerRun(200, func() {
		*buf, err = m.AppendMarshal((*buf)[:0])
		if err != nil {
			panic(err)
		}
		if err = UnmarshalInto(dst, *buf); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled round trip allocates %.1f times per run, want 0", allocs)
	}
	if dst.GetInt("&msgseq", 0) != 42 {
		t.Error("round trip lost data")
	}
}

// ---------------------------------------------------------------------------
// Codec micro-benchmarks (the Figure 2 small-message regime).

func BenchmarkMarshal(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedMarshalHit(b *testing.B) {
	m := sampleMessage()
	if _, err := m.CachedMarshal(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CachedMarshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendMarshalPooled(b *testing.B) {
	m := sampleMessage()
	buf := GetBuffer()
	defer PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		*buf, err = m.AppendMarshal((*buf)[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	enc, err := sampleMessage().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalInto(b *testing.B) {
	enc, err := sampleMessage().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	dst := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnmarshalInto(dst, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}
