// Package msg implements the ISIS message subsystem described in Section 4.1
// of the paper. A message is represented as a symbol table containing
// multiple fields, each having a name, a type, and variable-length data.
// Fields can be inserted and deleted at will, special system fields carry
// information such as the address of the sender (which cannot be forged by
// clients, since only the protocols process sets it), the session id used to
// match a reply with a pending call, and so on. A field can even contain
// another message.
//
// The symbol table is stored as a slice of fields kept sorted by name rather
// than a map: iteration in marshalling order is then allocation-free, field
// storage can be reused when a message is overwritten in place, and the wire
// encoding of an unchanged message can be computed once and cached (see
// CachedMarshal in codec.go). Lookups use binary search; daemon packets have
// at most a dozen fields, so this is also faster than hashing in practice.
package msg
