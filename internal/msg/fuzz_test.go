package msg

import (
	"bytes"
	"testing"

	"repro/internal/addr"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the decoder. Inputs the
// decoder accepts must re-marshal successfully, and the re-marshalled form
// must be a fixed point (canonical: sorted fields, duplicates collapsed).
// The recycled-storage decoder must agree with the fresh one.
func FuzzCodecRoundTrip(f *testing.F) {
	seed := func(m *Message) {
		enc, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		if len(enc) > 3 {
			f.Add(enc[:len(enc)-3]) // truncated input
		}
	}
	seed(New())
	seed(New().PutInt("n", -1).PutString("s", "x"))
	seed(New().PutAddressList("empty", addr.List{}))
	seed(New().
		PutBytes("b", []byte{1, 2, 3}).
		PutAddress("a", addr.NewProcess(3, 1, 7)).
		PutAddressList("l", addr.List{addr.NewGroup(1, 0, 5), addr.NewProcess(2, 0, 8)}).
		PutMessage("sub", New().PutMessage("subsub", New().PutInt("deep", 9))))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 'a', 99, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		enc2, err := m2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not canonical:\n first: %x\nsecond: %x", enc, enc2)
		}
		// Decoding into a dirty recycled message must agree with a fresh
		// decode.
		dst := New().PutInt("warm", 1).PutBytes("stale", []byte{9, 9})
		if err := UnmarshalInto(dst, data); err != nil {
			t.Fatalf("UnmarshalInto rejected input Unmarshal accepted: %v", err)
		}
		enc3, err := dst.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc3) {
			t.Fatalf("recycled decode diverges:\n fresh: %x\nreused: %x", enc, enc3)
		}
	})
}
