package msg

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
)

// FieldType enumerates the wire types a field can carry.
type FieldType uint8

const (
	// TypeBytes is an opaque byte string.
	TypeBytes FieldType = iota + 1
	// TypeString is a UTF-8 string.
	TypeString
	// TypeInt is a signed 64-bit integer.
	TypeInt
	// TypeAddress is a single ISIS address.
	TypeAddress
	// TypeAddressList is a list of ISIS addresses.
	TypeAddressList
	// TypeMessage is a nested message.
	TypeMessage
)

// String names the field type for diagnostics.
func (t FieldType) String() string {
	switch t {
	case TypeBytes:
		return "bytes"
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeAddress:
		return "address"
	case TypeAddressList:
		return "addresses"
	case TypeMessage:
		return "message"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// System field names. Fields whose names begin with '@' are reserved for the
// toolkit and the protocols process; the protection tool strips them from
// client-supplied messages so that a sender address can never be forged
// (Section 3.10).
const (
	FSender   = "@sender"   // address of the sending process (set by protos)
	FSession  = "@session"  // session id matching a reply to its pending call
	FDests    = "@dests"    // destination list of the broadcast
	FProtocol = "@protocol" // which multicast primitive carried the message
	FEntry    = "@entry"    // destination entry point
	FViewID   = "@viewid"   // view in which the message was sent
	FGroup    = "@group"    // group address the message was sent to
	FReply    = "@reply"    // set on reply messages: 1 normal, 2 null
	FMsgID    = "@msgid"    // unique broadcast identifier assigned by protos
)

// SystemPrefix is the first byte of every reserved field name.
const SystemPrefix = '@'

// IsSystemField reports whether name is reserved for the toolkit.
func IsSystemField(name string) bool {
	return len(name) > 0 && name[0] == SystemPrefix
}

// field is one entry of the symbol table.
type field struct {
	name  string
	typ   FieldType
	bytes []byte
	str   string
	i     int64
	adr   addr.Address
	adrs  addr.List
	sub   *Message
}

// reset clears a field's payload members while keeping its name and the
// backing storage of its slices, so an overwrite can reuse their capacity.
func (f *field) reset(typ FieldType) {
	f.typ = typ
	f.bytes = f.bytes[:0]
	f.str = ""
	f.i = 0
	f.adr = addr.Nil
	f.adrs = f.adrs[:0]
	f.sub = nil
}

// Message is a mutable symbol table of named, typed fields. The zero value
// is not usable; call New.
type Message struct {
	fields []field // sorted by name

	// gen counts mutations of this message (not of nested ones); enc holds
	// the cached wire encoding, valid while encGen == treeGen(). See
	// CachedMarshal.
	gen    uint64
	enc    []byte
	encGen uint64
}

// New returns an empty message.
func New() *Message {
	return &Message{}
}

// invalidate records a mutation, discarding any cached encoding.
func (m *Message) invalidate() {
	m.gen++
	m.enc = nil
}

// treeGen sums the mutation counters of this message and every nested
// message. Counters only increase, so the sum changes whenever any message
// in the tree is mutated; this is what keeps the cached encoding honest when
// a caller mutates a nested message after PutMessage.
func (m *Message) treeGen() uint64 {
	g := m.gen
	for i := range m.fields {
		if f := &m.fields[i]; f.typ == TypeMessage && f.sub != nil {
			g += f.sub.treeGen()
		}
	}
	return g
}

// find returns the index where name is or would be stored, and whether it is
// present.
func (m *Message) find(name string) (int, bool) {
	i := sort.Search(len(m.fields), func(i int) bool { return m.fields[i].name >= name })
	return i, i < len(m.fields) && m.fields[i].name == name
}

// slot returns a pointer to the (possibly freshly inserted) field for name,
// with its payload members cleared but slice capacity retained. Every Put
// goes through here, so it also invalidates the cached encoding.
func (m *Message) slot(name string, typ FieldType) *field {
	m.invalidate()
	i, ok := m.find(name)
	if !ok {
		m.fields = append(m.fields, field{})
		copy(m.fields[i+1:], m.fields[i:])
		m.fields[i] = field{name: name}
	}
	f := &m.fields[i]
	f.reset(typ)
	return f
}

// Len returns the number of fields in the message.
func (m *Message) Len() int { return len(m.fields) }

// Has reports whether the named field is present.
func (m *Message) Has(name string) bool {
	_, ok := m.find(name)
	return ok
}

// Type returns the type of the named field and whether it exists.
func (m *Message) Type(name string) (FieldType, bool) {
	i, ok := m.find(name)
	if !ok {
		return 0, false
	}
	return m.fields[i].typ, true
}

// Delete removes the named field if present.
func (m *Message) Delete(name string) {
	i, ok := m.find(name)
	if !ok {
		return
	}
	m.invalidate()
	copy(m.fields[i:], m.fields[i+1:])
	m.fields[len(m.fields)-1] = field{}
	m.fields = m.fields[:len(m.fields)-1]
}

// Names returns the field names in sorted order.
func (m *Message) Names() []string {
	out := make([]string, len(m.fields))
	for i := range m.fields {
		out[i] = m.fields[i].name
	}
	return out
}

// PutBytes sets a bytes field. The slice is copied (the copy reuses the
// field's previous storage when possible, so overwriting a field of a
// recycled message does not allocate).
func (m *Message) PutBytes(name string, v []byte) *Message {
	f := m.slot(name, TypeBytes)
	f.bytes = append(f.bytes, v...)
	return m
}

// PutString sets a string field.
func (m *Message) PutString(name, v string) *Message {
	f := m.slot(name, TypeString)
	f.str = v
	return m
}

// PutInt sets an integer field.
func (m *Message) PutInt(name string, v int64) *Message {
	f := m.slot(name, TypeInt)
	f.i = v
	return m
}

// PutAddress sets an address field.
func (m *Message) PutAddress(name string, v addr.Address) *Message {
	f := m.slot(name, TypeAddress)
	f.adr = v
	return m
}

// PutAddressList sets an address list field. The list is copied.
func (m *Message) PutAddressList(name string, v addr.List) *Message {
	f := m.slot(name, TypeAddressList)
	f.adrs = append(f.adrs, v...)
	return m
}

// PutMessage sets a nested message field. The nested message is stored by
// reference; callers that will keep mutating it should Put a Clone instead.
func (m *Message) PutMessage(name string, v *Message) *Message {
	f := m.slot(name, TypeMessage)
	f.sub = v
	return m
}

// Errors returned by the typed getters.
var (
	ErrNoField   = errors.New("msg: no such field")
	ErrWrongType = errors.New("msg: field has a different type")
)

// get returns the field for name, or an error when absent or of another type.
func (m *Message) get(name string, typ FieldType) (*field, error) {
	i, ok := m.find(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	f := &m.fields[i]
	if f.typ != typ {
		return nil, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f, nil
}

// Bytes returns the bytes field, or an error if missing or of another type.
func (m *Message) Bytes(name string) ([]byte, error) {
	f, err := m.get(name, TypeBytes)
	if err != nil {
		return nil, err
	}
	return f.bytes, nil
}

// String returns the string field.
func (m *Message) String(name string) (string, error) {
	f, err := m.get(name, TypeString)
	if err != nil {
		return "", err
	}
	return f.str, nil
}

// Int returns the integer field.
func (m *Message) Int(name string) (int64, error) {
	f, err := m.get(name, TypeInt)
	if err != nil {
		return 0, err
	}
	return f.i, nil
}

// Address returns the address field.
func (m *Message) Address(name string) (addr.Address, error) {
	f, err := m.get(name, TypeAddress)
	if err != nil {
		return addr.Nil, err
	}
	return f.adr, nil
}

// AddressList returns the address list field.
func (m *Message) AddressList(name string) (addr.List, error) {
	f, err := m.get(name, TypeAddressList)
	if err != nil {
		return nil, err
	}
	return f.adrs, nil
}

// Message returns the nested message field.
func (m *Message) Message(name string) (*Message, error) {
	f, err := m.get(name, TypeMessage)
	if err != nil {
		return nil, err
	}
	return f.sub, nil
}

// Convenience getters with defaults, used pervasively by the toolkit where a
// missing field simply means "use the zero value".

// GetInt returns the integer field or def when absent or mistyped.
func (m *Message) GetInt(name string, def int64) int64 {
	if v, err := m.Int(name); err == nil {
		return v
	}
	return def
}

// GetString returns the string field or def when absent or mistyped.
func (m *Message) GetString(name, def string) string {
	if v, err := m.String(name); err == nil {
		return v
	}
	return def
}

// GetBytes returns the bytes field or nil when absent or mistyped.
func (m *Message) GetBytes(name string) []byte {
	if v, err := m.Bytes(name); err == nil {
		return v
	}
	return nil
}

// GetAddress returns the address field or addr.Nil when absent or mistyped.
func (m *Message) GetAddress(name string) addr.Address {
	if v, err := m.Address(name); err == nil {
		return v
	}
	return addr.Nil
}

// GetAddressList returns the address list field or nil.
func (m *Message) GetAddressList(name string) addr.List {
	if v, err := m.AddressList(name); err == nil {
		return v
	}
	return nil
}

// GetMessage returns the nested message field or nil.
func (m *Message) GetMessage(name string) *Message {
	if v, err := m.Message(name); err == nil {
		return v
	}
	return nil
}

// Sender returns the system sender field (addr.Nil if unset).
func (m *Message) Sender() addr.Address { return m.GetAddress(FSender) }

// Session returns the system session id (0 if unset).
func (m *Message) Session() int64 { return m.GetInt(FSession, 0) }

// Group returns the group address the message was multicast to (addr.Nil if
// it was a point-to-point send).
func (m *Message) Group() addr.Address { return m.GetAddress(FGroup) }

// StripSystemFields removes every reserved '@' field. The protection tool
// applies this to messages submitted by clients so system fields can only be
// set by the toolkit itself.
func (m *Message) StripSystemFields() {
	kept := m.fields[:0]
	removed := false
	for i := range m.fields {
		if IsSystemField(m.fields[i].name) {
			removed = true
			continue
		}
		kept = append(kept, m.fields[i])
	}
	if removed {
		for i := len(kept); i < len(m.fields); i++ {
			m.fields[i] = field{}
		}
		m.fields = kept
		m.invalidate()
	}
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	out := &Message{}
	if len(m.fields) == 0 {
		return out
	}
	out.fields = make([]field, len(m.fields))
	copy(out.fields, m.fields)
	for i := range out.fields {
		f := &out.fields[i]
		switch f.typ {
		case TypeBytes:
			f.bytes = append([]byte(nil), f.bytes...)
		case TypeAddressList:
			f.adrs = append(addr.List(nil), f.adrs...)
		case TypeMessage:
			if f.sub != nil {
				f.sub = f.sub.Clone()
			}
		}
	}
	return out
}

// Format renders a human-readable dump of the message, with fields in sorted
// order; nested messages are rendered inline. Intended for debugging only.
func (m *Message) Format() string {
	s := "{"
	for i := range m.fields {
		if i > 0 {
			s += ", "
		}
		f := &m.fields[i]
		switch f.typ {
		case TypeBytes:
			s += fmt.Sprintf("%s=bytes[%d]", f.name, len(f.bytes))
		case TypeString:
			s += fmt.Sprintf("%s=%q", f.name, f.str)
		case TypeInt:
			s += fmt.Sprintf("%s=%d", f.name, f.i)
		case TypeAddress:
			s += fmt.Sprintf("%s=%v", f.name, f.adr)
		case TypeAddressList:
			s += fmt.Sprintf("%s=%v", f.name, f.adrs)
		case TypeMessage:
			s += fmt.Sprintf("%s=%s", f.name, f.sub.Format())
		}
	}
	return s + "}"
}
