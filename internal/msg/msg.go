// Package msg implements the ISIS message subsystem described in Section 4.1
// of the paper. A message is represented as a symbol table containing
// multiple fields, each having a name, a type, and variable-length data.
// Fields can be inserted and deleted at will, special system fields carry
// information such as the address of the sender (which cannot be forged by
// clients, since only the protocols process sets it), the session id used to
// match a reply with a pending call, and so on. A field can even contain
// another message.
package msg

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
)

// FieldType enumerates the wire types a field can carry.
type FieldType uint8

const (
	// TypeBytes is an opaque byte string.
	TypeBytes FieldType = iota + 1
	// TypeString is a UTF-8 string.
	TypeString
	// TypeInt is a signed 64-bit integer.
	TypeInt
	// TypeAddress is a single ISIS address.
	TypeAddress
	// TypeAddressList is a list of ISIS addresses.
	TypeAddressList
	// TypeMessage is a nested message.
	TypeMessage
)

// String names the field type for diagnostics.
func (t FieldType) String() string {
	switch t {
	case TypeBytes:
		return "bytes"
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeAddress:
		return "address"
	case TypeAddressList:
		return "addresses"
	case TypeMessage:
		return "message"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// System field names. Fields whose names begin with '@' are reserved for the
// toolkit and the protocols process; the protection tool strips them from
// client-supplied messages so that a sender address can never be forged
// (Section 3.10).
const (
	FSender   = "@sender"   // address of the sending process (set by protos)
	FSession  = "@session"  // session id matching a reply to its pending call
	FDests    = "@dests"    // destination list of the broadcast
	FProtocol = "@protocol" // which multicast primitive carried the message
	FEntry    = "@entry"    // destination entry point
	FViewID   = "@viewid"   // view in which the message was sent
	FGroup    = "@group"    // group address the message was sent to
	FReply    = "@reply"    // set on reply messages: 1 normal, 2 null
	FMsgID    = "@msgid"    // unique broadcast identifier assigned by protos
)

// SystemPrefix is the first byte of every reserved field name.
const SystemPrefix = '@'

// IsSystemField reports whether name is reserved for the toolkit.
func IsSystemField(name string) bool {
	return len(name) > 0 && name[0] == SystemPrefix
}

// field is one entry of the symbol table.
type field struct {
	typ   FieldType
	bytes []byte
	str   string
	i     int64
	adr   addr.Address
	adrs  addr.List
	sub   *Message
}

// Message is a mutable symbol table of named, typed fields. The zero value
// is not usable; call New.
type Message struct {
	fields map[string]field
}

// New returns an empty message.
func New() *Message {
	return &Message{fields: make(map[string]field)}
}

// Len returns the number of fields in the message.
func (m *Message) Len() int { return len(m.fields) }

// Has reports whether the named field is present.
func (m *Message) Has(name string) bool {
	_, ok := m.fields[name]
	return ok
}

// Type returns the type of the named field and whether it exists.
func (m *Message) Type(name string) (FieldType, bool) {
	f, ok := m.fields[name]
	return f.typ, ok
}

// Delete removes the named field if present.
func (m *Message) Delete(name string) { delete(m.fields, name) }

// Names returns the field names in sorted order.
func (m *Message) Names() []string {
	out := make([]string, 0, len(m.fields))
	for k := range m.fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PutBytes sets a bytes field. The slice is copied.
func (m *Message) PutBytes(name string, v []byte) *Message {
	cp := make([]byte, len(v))
	copy(cp, v)
	m.fields[name] = field{typ: TypeBytes, bytes: cp}
	return m
}

// PutString sets a string field.
func (m *Message) PutString(name, v string) *Message {
	m.fields[name] = field{typ: TypeString, str: v}
	return m
}

// PutInt sets an integer field.
func (m *Message) PutInt(name string, v int64) *Message {
	m.fields[name] = field{typ: TypeInt, i: v}
	return m
}

// PutAddress sets an address field.
func (m *Message) PutAddress(name string, v addr.Address) *Message {
	m.fields[name] = field{typ: TypeAddress, adr: v}
	return m
}

// PutAddressList sets an address list field. The list is copied.
func (m *Message) PutAddressList(name string, v addr.List) *Message {
	m.fields[name] = field{typ: TypeAddressList, adrs: v.Clone()}
	return m
}

// PutMessage sets a nested message field. The nested message is stored by
// reference; callers that will keep mutating it should Put a Clone instead.
func (m *Message) PutMessage(name string, v *Message) *Message {
	m.fields[name] = field{typ: TypeMessage, sub: v}
	return m
}

// Errors returned by the typed getters.
var (
	ErrNoField   = errors.New("msg: no such field")
	ErrWrongType = errors.New("msg: field has a different type")
)

// Bytes returns the bytes field, or an error if missing or of another type.
func (m *Message) Bytes(name string) ([]byte, error) {
	f, ok := m.fields[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeBytes {
		return nil, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.bytes, nil
}

// String returns the string field.
func (m *Message) String(name string) (string, error) {
	f, ok := m.fields[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeString {
		return "", fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.str, nil
}

// Int returns the integer field.
func (m *Message) Int(name string) (int64, error) {
	f, ok := m.fields[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeInt {
		return 0, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.i, nil
}

// Address returns the address field.
func (m *Message) Address(name string) (addr.Address, error) {
	f, ok := m.fields[name]
	if !ok {
		return addr.Nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeAddress {
		return addr.Nil, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.adr, nil
}

// AddressList returns the address list field.
func (m *Message) AddressList(name string) (addr.List, error) {
	f, ok := m.fields[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeAddressList {
		return nil, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.adrs, nil
}

// Message returns the nested message field.
func (m *Message) Message(name string) (*Message, error) {
	f, ok := m.fields[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoField, name)
	}
	if f.typ != TypeMessage {
		return nil, fmt.Errorf("%w: %q is %v", ErrWrongType, name, f.typ)
	}
	return f.sub, nil
}

// Convenience getters with defaults, used pervasively by the toolkit where a
// missing field simply means "use the zero value".

// GetInt returns the integer field or def when absent or mistyped.
func (m *Message) GetInt(name string, def int64) int64 {
	if v, err := m.Int(name); err == nil {
		return v
	}
	return def
}

// GetString returns the string field or def when absent or mistyped.
func (m *Message) GetString(name, def string) string {
	if v, err := m.String(name); err == nil {
		return v
	}
	return def
}

// GetBytes returns the bytes field or nil when absent or mistyped.
func (m *Message) GetBytes(name string) []byte {
	if v, err := m.Bytes(name); err == nil {
		return v
	}
	return nil
}

// GetAddress returns the address field or addr.Nil when absent or mistyped.
func (m *Message) GetAddress(name string) addr.Address {
	if v, err := m.Address(name); err == nil {
		return v
	}
	return addr.Nil
}

// GetAddressList returns the address list field or nil.
func (m *Message) GetAddressList(name string) addr.List {
	if v, err := m.AddressList(name); err == nil {
		return v
	}
	return nil
}

// GetMessage returns the nested message field or nil.
func (m *Message) GetMessage(name string) *Message {
	if v, err := m.Message(name); err == nil {
		return v
	}
	return nil
}

// Sender returns the system sender field (addr.Nil if unset).
func (m *Message) Sender() addr.Address { return m.GetAddress(FSender) }

// Session returns the system session id (0 if unset).
func (m *Message) Session() int64 { return m.GetInt(FSession, 0) }

// Group returns the group address the message was multicast to (addr.Nil if
// it was a point-to-point send).
func (m *Message) Group() addr.Address { return m.GetAddress(FGroup) }

// StripSystemFields removes every reserved '@' field. The protection tool
// applies this to messages submitted by clients so system fields can only be
// set by the toolkit itself.
func (m *Message) StripSystemFields() {
	for k := range m.fields {
		if IsSystemField(k) {
			delete(m.fields, k)
		}
	}
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	out := New()
	for k, f := range m.fields {
		switch f.typ {
		case TypeBytes:
			out.PutBytes(k, f.bytes)
		case TypeString:
			out.PutString(k, f.str)
		case TypeInt:
			out.PutInt(k, f.i)
		case TypeAddress:
			out.PutAddress(k, f.adr)
		case TypeAddressList:
			out.PutAddressList(k, f.adrs)
		case TypeMessage:
			out.PutMessage(k, f.sub.Clone())
		}
	}
	return out
}

// Format renders a human-readable dump of the message, with fields in sorted
// order; nested messages are rendered inline. Intended for debugging only.
func (m *Message) Format() string {
	s := "{"
	for i, name := range m.Names() {
		if i > 0 {
			s += ", "
		}
		f := m.fields[name]
		switch f.typ {
		case TypeBytes:
			s += fmt.Sprintf("%s=bytes[%d]", name, len(f.bytes))
		case TypeString:
			s += fmt.Sprintf("%s=%q", name, f.str)
		case TypeInt:
			s += fmt.Sprintf("%s=%d", name, f.i)
		case TypeAddress:
			s += fmt.Sprintf("%s=%v", name, f.adr)
		case TypeAddressList:
			s += fmt.Sprintf("%s=%v", name, f.adrs)
		case TypeMessage:
			s += fmt.Sprintf("%s=%s", name, f.sub.Format())
		}
	}
	return s + "}"
}
