package msg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestPutGetBasicTypes(t *testing.T) {
	m := New()
	m.PutInt("count", 42)
	m.PutString("name", "emulsion")
	m.PutBytes("blob", []byte{1, 2, 3})
	a := addr.NewProcess(1, 0, 7)
	m.PutAddress("who", a)
	m.PutAddressList("dests", addr.List{a, addr.NewGroup(1, 0, 9)})

	if v, err := m.Int("count"); err != nil || v != 42 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := m.String("name"); err != nil || v != "emulsion" {
		t.Errorf("String = %q, %v", v, err)
	}
	if v, err := m.Bytes("blob"); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v, %v", v, err)
	}
	if v, err := m.Address("who"); err != nil || v != a {
		t.Errorf("Address = %v, %v", v, err)
	}
	if v, err := m.AddressList("dests"); err != nil || len(v) != 2 {
		t.Errorf("AddressList = %v, %v", v, err)
	}
	if m.Len() != 5 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMissingAndWrongType(t *testing.T) {
	m := New()
	m.PutInt("n", 1)
	if _, err := m.Int("absent"); !errors.Is(err, ErrNoField) {
		t.Errorf("missing field error = %v", err)
	}
	if _, err := m.String("n"); !errors.Is(err, ErrWrongType) {
		t.Errorf("wrong type error = %v", err)
	}
	if _, err := m.Bytes("absent"); !errors.Is(err, ErrNoField) {
		t.Errorf("missing bytes error = %v", err)
	}
	if _, err := m.Address("n"); !errors.Is(err, ErrWrongType) {
		t.Errorf("address wrong type error = %v", err)
	}
	if _, err := m.AddressList("n"); !errors.Is(err, ErrWrongType) {
		t.Errorf("address list wrong type error = %v", err)
	}
	if _, err := m.Message("n"); !errors.Is(err, ErrWrongType) {
		t.Errorf("message wrong type error = %v", err)
	}
}

func TestGetWithDefaults(t *testing.T) {
	m := New()
	m.PutInt("n", 5)
	if m.GetInt("n", 0) != 5 || m.GetInt("absent", 9) != 9 {
		t.Error("GetInt defaults wrong")
	}
	if m.GetString("absent", "d") != "d" {
		t.Error("GetString default wrong")
	}
	if m.GetBytes("absent") != nil {
		t.Error("GetBytes default wrong")
	}
	if !m.GetAddress("absent").IsNil() {
		t.Error("GetAddress default wrong")
	}
	if m.GetAddressList("absent") != nil {
		t.Error("GetAddressList default wrong")
	}
	if m.GetMessage("absent") != nil {
		t.Error("GetMessage default wrong")
	}
}

func TestPutBytesCopies(t *testing.T) {
	src := []byte{1, 2, 3}
	m := New().PutBytes("b", src)
	src[0] = 99
	got, _ := m.Bytes("b")
	if got[0] != 1 {
		t.Error("PutBytes did not copy its argument")
	}
}

func TestDeleteAndHasAndNames(t *testing.T) {
	m := New().PutInt("a", 1).PutInt("b", 2)
	if !m.Has("a") || m.Has("z") {
		t.Error("Has wrong")
	}
	m.Delete("a")
	if m.Has("a") || m.Len() != 1 {
		t.Error("Delete did not remove the field")
	}
	m.PutString("c", "x")
	names := m.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "c" {
		t.Errorf("Names = %v", names)
	}
}

func TestTypeQuery(t *testing.T) {
	m := New().PutInt("a", 1)
	typ, ok := m.Type("a")
	if !ok || typ != TypeInt {
		t.Errorf("Type = %v %v", typ, ok)
	}
	if _, ok := m.Type("absent"); ok {
		t.Error("Type found an absent field")
	}
}

func TestNestedMessage(t *testing.T) {
	inner := New().PutString("payload", "hello")
	outer := New().PutMessage("req", inner).PutInt("n", 1)
	got, err := outer.Message("req")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.String("payload"); s != "hello" {
		t.Errorf("nested payload = %q", s)
	}
}

func TestSystemFieldsAndStrip(t *testing.T) {
	if !IsSystemField(FSender) || IsSystemField("user") {
		t.Error("IsSystemField wrong")
	}
	a := addr.NewProcess(2, 0, 3)
	m := New().
		PutAddress(FSender, a).
		PutInt(FSession, 77).
		PutAddress(FGroup, addr.NewGroup(1, 0, 5)).
		PutString("user", "keep me")
	if m.Sender() != a || m.Session() != 77 || m.Group().IsNil() {
		t.Error("system accessors wrong")
	}
	m.StripSystemFields()
	if m.Has(FSender) || m.Has(FSession) || m.Has(FGroup) {
		t.Error("StripSystemFields left reserved fields")
	}
	if !m.Has("user") {
		t.Error("StripSystemFields removed a user field")
	}
}

func TestClone(t *testing.T) {
	inner := New().PutInt("x", 1)
	m := New().
		PutInt("i", 10).
		PutString("s", "str").
		PutBytes("b", []byte{4, 5}).
		PutAddress("a", addr.NewProcess(1, 0, 1)).
		PutAddressList("l", addr.List{addr.NewGroup(1, 0, 2)}).
		PutMessage("m", inner)
	c := m.Clone()
	// Mutating the clone must not affect the original.
	c.PutInt("i", 99)
	c.GetMessage("m").PutInt("x", 99)
	if m.GetInt("i", 0) != 10 {
		t.Error("Clone shares scalar fields")
	}
	if inner.GetInt("x", 0) != 1 {
		t.Error("Clone shares nested messages")
	}
	if c.Len() != m.Len() {
		t.Error("Clone lost fields")
	}
}

func TestFormat(t *testing.T) {
	m := New().
		PutInt("n", 3).
		PutString("s", "hi").
		PutBytes("b", []byte{1}).
		PutMessage("sub", New().PutInt("x", 1)).
		PutAddress("a", addr.NewProcess(1, 0, 1)).
		PutAddressList("l", addr.List{addr.NewProcess(1, 0, 2)})
	out := m.Format()
	for _, want := range []string{"n=3", `s="hi"`, "bytes[1]", "sub={x=1}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() = %q missing %q", out, want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	inner := New().PutString("q", "color=red").PutInt("mode", 2)
	m := New().
		PutInt("count", -17).
		PutString("name", "twenty").
		PutBytes("blob", []byte{0, 255, 7}).
		PutAddress("sender", addr.NewProcess(3, 1, 12)).
		PutAddressList("dests", addr.List{addr.NewGroup(1, 0, 5), addr.NewProcess(2, 0, 8)}).
		PutMessage("req", inner)
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetInt("count", 0) != -17 {
		t.Error("count field lost")
	}
	if got.GetString("name", "") != "twenty" {
		t.Error("name field lost")
	}
	if !bytes.Equal(got.GetBytes("blob"), []byte{0, 255, 7}) {
		t.Error("blob field lost")
	}
	if got.GetAddress("sender") != addr.NewProcess(3, 1, 12) {
		t.Error("sender field lost")
	}
	if l := got.GetAddressList("dests"); len(l) != 2 || l[0] != addr.NewGroup(1, 0, 5) {
		t.Error("dests field lost")
	}
	sub := got.GetMessage("req")
	if sub == nil || sub.GetString("q", "") != "color=red" || sub.GetInt("mode", 0) != 2 {
		t.Error("nested message lost")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := New().PutInt("b", 2).PutInt("a", 1).PutString("c", "x")
	b1, err1 := m.Marshal()
	b2, err2 := m.Marshal()
	if err1 != nil || err2 != nil || !bytes.Equal(b1, b2) {
		t.Error("Marshal is not deterministic")
	}
}

func TestMarshaledSizeMatches(t *testing.T) {
	m := New().
		PutInt("i", 1).
		PutString("s", "hello").
		PutBytes("b", make([]byte, 100)).
		PutAddress("a", addr.NewProcess(1, 0, 1)).
		PutAddressList("l", addr.List{addr.NewProcess(1, 0, 2), addr.NewProcess(1, 0, 3)}).
		PutMessage("m", New().PutInt("x", 5))
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if m.MarshaledSize() != len(b) {
		t.Errorf("MarshaledSize = %d, actual = %d", m.MarshaledSize(), len(b))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		{},                             // missing count
		{0, 1},                         // one field promised, nothing present
		{0, 1, 3, 'a'},                 // truncated name
		{0, 1, 1, 'a', 99, 0, 0, 0, 0}, // unknown type
		{0, 1, 1, 'a', byte(TypeInt), 0, 0, 0, 2, 1, 2},            // int with wrong length
		{0, 1, 1, 'a', byte(TypeAddress), 0, 0, 0, 3, 1, 2, 3},     // short address
		{0, 1, 1, 'a', byte(TypeAddressList), 0, 0, 0, 3, 1, 2, 3}, // bad list length
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: Unmarshal accepted corrupt input", i)
		}
	}
	// Trailing garbage after a valid message.
	good, _ := New().PutInt("x", 1).Marshal()
	if _, err := Unmarshal(append(good, 0xFF)); err == nil {
		t.Error("Unmarshal accepted trailing garbage")
	}
}

func TestMarshalNameTooLong(t *testing.T) {
	m := New().PutInt(strings.Repeat("x", 300), 1)
	if _, err := m.Marshal(); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

// Property: marshal/unmarshal round-trips arbitrary string and byte fields.
func TestMarshalProperty(t *testing.T) {
	f := func(s string, b []byte, n int64) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		m := New().PutString("s", s).PutBytes("b", b).PutInt("n", n)
		enc, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		gb := got.GetBytes("b")
		return got.GetString("s", "?") == s &&
			got.GetInt("n", n+1) == n &&
			(len(gb) == len(b)) && bytes.Equal(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
