package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/addr"
)

// Wire format (all integers big endian):
//
//	uint16  field count
//	repeated field, in ascending order of field name:
//	    uint8   name length      (names are limited to 255 bytes)
//	    bytes   name
//	    uint8   field type
//	    uint32  payload length
//	    bytes   payload
//
// Payload encodings:
//
//	bytes / string:  raw bytes
//	int:             8 bytes, two's complement
//	address:         addr.EncodedSize bytes
//	address list:    concatenation of addr.EncodedSize-byte addresses
//	message:         a nested marshalled message
//
// The format is self-describing enough for the paper's needs (nested
// messages, inspection by filters) while staying compact; a 10-byte user
// payload marshals to a few tens of bytes, matching the small-message regime
// of Figure 2.
//
// Encoding is deterministic: fields are written in sorted name order (the
// in-memory representation already keeps them sorted), so two structurally
// equal messages produce byte-identical encodings. Several tests and the
// stable-storage log rely on this, and it is what makes the cached encoding
// of CachedMarshal sharable across destinations: the daemon marshals a
// multicast data packet exactly once and hands the same []byte to the
// transport for every destination site.
//
// Decoders accept fields in any order (defensively re-sorting), but only the
// sorted form is ever produced. UnmarshalInto additionally reuses the field
// storage of a recycled message, giving an allocation-free decode when the
// incoming packet has the shape of the previous one (the steady state of a
// multicast stream).

// Marshalling errors.
var (
	ErrNameTooLong = errors.New("msg: field name longer than 255 bytes")
	ErrCorrupt     = errors.New("msg: corrupt message encoding")
	ErrTooManyFlds = errors.New("msg: too many fields")
)

// maxFields bounds the field count in one message.
const maxFields = math.MaxUint16

// encodeCalls counts actual wire encodings (cache misses included, cache
// hits excluded). Tests use it to assert that a multicast packet fanned out
// to N destinations is marshalled exactly once.
var encodeCalls atomic.Uint64

// EncodeCount returns the number of times a message encoding has actually
// been computed process-wide. The fan-out tests snapshot it around a
// multicast to verify the marshal-once property.
func EncodeCount() uint64 { return encodeCalls.Load() }

// bufPool recycles encode scratch buffers. GetBuffer/PutBuffer expose it to
// the transport and protocol layers so hot-path encodes need not allocate.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuffer fetches a pooled scratch buffer. The returned slice has zero
// length and unspecified capacity; append to it and return it to the pool
// with PutBuffer when done.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a scratch buffer to the pool. The caller must not use
// the slice afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > 1<<20 {
		return // don't pool pathological buffers
	}
	bufPool.Put(b)
}

// Marshal encodes the message into a fresh byte slice owned by the caller.
func (m *Message) Marshal() ([]byte, error) {
	return m.AppendMarshal(nil)
}

// AppendMarshal appends the encoding of m to dst and returns the extended
// slice. Given sufficient capacity in dst it does not allocate.
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	encodeCalls.Add(1)
	if dst == nil {
		dst = make([]byte, 0, m.MarshaledSize())
	}
	return m.appendTo(dst)
}

// CachedMarshal returns the wire encoding of m, computing it at most once
// per mutation: repeated calls on an unchanged message (including unchanged
// nested messages) return the same shared slice. The returned bytes are
// owned by the message and MUST be treated as read-only; they remain valid
// until the next mutation. This is the marshal-once handle the daemon uses
// to fan a multicast out to many destination sites.
func (m *Message) CachedMarshal() ([]byte, error) {
	if g := m.treeGen(); m.enc == nil || m.encGen != g {
		enc, err := m.AppendMarshal(make([]byte, 0, m.MarshaledSize()))
		if err != nil {
			return nil, err
		}
		m.enc = enc
		m.encGen = m.treeGen()
	}
	return m.enc, nil
}

// appendTo is the recursive encoder. Payloads are appended directly (their
// sizes are known up front), so no intermediate buffers are built even for
// nested messages.
func (m *Message) appendTo(dst []byte) ([]byte, error) {
	if len(m.fields) > maxFields {
		return nil, ErrTooManyFlds
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.fields)))
	for i := range m.fields {
		f := &m.fields[i]
		if len(f.name) > math.MaxUint8 {
			return nil, fmt.Errorf("%w: %q", ErrNameTooLong, f.name)
		}
		dst = append(dst, byte(len(f.name)))
		dst = append(dst, f.name...)
		dst = append(dst, byte(f.typ))
		switch f.typ {
		case TypeBytes:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.bytes)))
			dst = append(dst, f.bytes...)
		case TypeString:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.str)))
			dst = append(dst, f.str...)
		case TypeInt:
			dst = binary.BigEndian.AppendUint32(dst, 8)
			dst = binary.BigEndian.AppendUint64(dst, uint64(f.i))
		case TypeAddress:
			dst = binary.BigEndian.AppendUint32(dst, addr.EncodedSize)
			dst = f.adr.AppendEncoded(dst)
		case TypeAddressList:
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.adrs)*addr.EncodedSize))
			for _, a := range f.adrs {
				dst = a.AppendEncoded(dst)
			}
		case TypeMessage:
			dst = binary.BigEndian.AppendUint32(dst, uint32(f.sub.MarshaledSize()))
			var err error
			dst, err = f.sub.appendTo(dst)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("msg: cannot marshal field %q of type %v", f.name, f.typ)
		}
	}
	return dst, nil
}

// Unmarshal decodes a message from b. The entire slice must be consumed.
func Unmarshal(b []byte) (*Message, error) {
	m := New()
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes a message from b into m, replacing m's fields. The
// entire slice must be consumed. Field storage held by m (byte buffers,
// address lists, nested messages) is reused where the incoming fields match
// m's existing layout, so decoding a stream of same-shaped packets into a
// recycled message does not allocate. On error m may hold a partial decode.
func UnmarshalInto(m *Message, b []byte) error {
	rest, err := m.unmarshalPrefix(b)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return nil
}

// unmarshalPrefix decodes one message from the front of b into m and returns
// the remaining bytes.
//
// The decoder scans positionally against m's existing (sorted) fields: while
// incoming names match the resident slot at the same index, payloads are
// decoded in place. The first mismatch truncates the leftovers and falls
// back to sorted insertion, which also handles adversarial inputs whose
// fields are unsorted or duplicated.
func (m *Message) unmarshalPrefix(b []byte) ([]byte, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: missing field count", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	m.invalidate()
	idx, inPlace := 0, true
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated field name length", ErrCorrupt)
		}
		nameLen := int(b[0])
		b = b[1:]
		if len(b) < nameLen+1+4 {
			return nil, fmt.Errorf("%w: truncated field header", ErrCorrupt)
		}
		rawName := b[:nameLen]
		typ := FieldType(b[nameLen])
		payloadLen := int(binary.BigEndian.Uint32(b[nameLen+1 : nameLen+5]))
		b = b[nameLen+5:]
		if len(b) < payloadLen {
			return nil, fmt.Errorf("%w: truncated field payload", ErrCorrupt)
		}
		payload := b[:payloadLen]
		b = b[payloadLen:]

		var f *field
		if inPlace && idx < len(m.fields) && m.fields[idx].name == string(rawName) {
			f = &m.fields[idx]
			sub := f.sub // keep the nested message for reuse
			f.reset(typ)
			f.sub = sub
			idx++
		} else {
			if inPlace {
				// Mismatch: drop the stale tail, then insert sorted.
				m.truncateFields(idx)
				inPlace = false
			}
			f = m.slot(string(rawName), typ)
		}
		if err := decodePayload(f, typ, payload); err != nil {
			return nil, err
		}
	}
	if inPlace {
		m.truncateFields(idx)
	}
	return b, nil
}

// truncateFields drops every field at index i and beyond.
func (m *Message) truncateFields(i int) {
	for j := i; j < len(m.fields); j++ {
		m.fields[j] = field{}
	}
	m.fields = m.fields[:i]
}

// decodePayload fills one field from its wire payload, reusing the field's
// existing storage where possible.
func decodePayload(f *field, typ FieldType, payload []byte) error {
	switch typ {
	case TypeBytes:
		f.bytes = append(f.bytes[:0], payload...)
	case TypeString:
		// Avoid re-allocating the string when a recycled field already holds
		// the same value (the common case for protocol constants).
		if f.str != string(payload) {
			f.str = string(payload)
		}
	case TypeInt:
		if len(payload) != 8 {
			return fmt.Errorf("%w: int field %q has %d bytes", ErrCorrupt, f.name, len(payload))
		}
		f.i = int64(binary.BigEndian.Uint64(payload))
	case TypeAddress:
		a, err := addr.Decode(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		f.adr = a
	case TypeAddressList:
		if len(payload)%addr.EncodedSize != 0 {
			return fmt.Errorf("%w: address list field %q has %d bytes", ErrCorrupt, f.name, len(payload))
		}
		f.adrs = f.adrs[:0]
		for off := 0; off < len(payload); off += addr.EncodedSize {
			a, err := addr.Decode(payload[off:])
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			f.adrs = append(f.adrs, a)
		}
	case TypeMessage:
		if f.sub == nil {
			f.sub = New()
		}
		if err := UnmarshalInto(f.sub, payload); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: unknown field type %d", ErrCorrupt, typ)
	}
	return nil
}

// MarshaledSize returns the number of bytes Marshal would produce. It is
// used by the simulated network to charge bandwidth without re-encoding, and
// by the encoder itself to pre-size buffers and nested payload lengths.
func (m *Message) MarshaledSize() int {
	size := 2
	for i := range m.fields {
		f := &m.fields[i]
		size += 1 + len(f.name) + 1 + 4
		switch f.typ {
		case TypeBytes:
			size += len(f.bytes)
		case TypeString:
			size += len(f.str)
		case TypeInt:
			size += 8
		case TypeAddress:
			size += addr.EncodedSize
		case TypeAddressList:
			size += len(f.adrs) * addr.EncodedSize
		case TypeMessage:
			size += f.sub.MarshaledSize()
		}
	}
	return size
}
