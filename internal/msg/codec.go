package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/addr"
)

// Wire format (all integers big endian):
//
//	uint16  field count
//	repeated field:
//	    uint8   name length      (names are limited to 255 bytes)
//	    bytes   name
//	    uint8   field type
//	    uint32  payload length
//	    bytes   payload
//
// Payload encodings:
//
//	bytes / string:  raw bytes
//	int:             8 bytes, two's complement
//	address:         addr.EncodedSize bytes
//	address list:    concatenation of addr.EncodedSize-byte addresses
//	message:         a nested marshalled message
//
// The format is self-describing enough for the paper's needs (nested
// messages, inspection by filters) while staying compact; a 10-byte user
// payload marshals to a few tens of bytes, matching the small-message regime
// of Figure 2.

// Marshalling errors.
var (
	ErrNameTooLong = errors.New("msg: field name longer than 255 bytes")
	ErrCorrupt     = errors.New("msg: corrupt message encoding")
	ErrTooManyFlds = errors.New("msg: too many fields")
)

// maxFields bounds the field count in one message.
const maxFields = math.MaxUint16

// Marshal encodes the message into a fresh byte slice.
func (m *Message) Marshal() ([]byte, error) {
	return m.AppendMarshal(nil)
}

// AppendMarshal appends the encoding of m to dst and returns the extended
// slice.
func (m *Message) AppendMarshal(dst []byte) ([]byte, error) {
	if len(m.fields) > maxFields {
		return nil, ErrTooManyFlds
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.fields)))
	// Marshal in sorted order so the encoding is deterministic; several
	// tests and the stable-storage log rely on byte-for-byte stability.
	for _, name := range m.Names() {
		if len(name) > math.MaxUint8 {
			return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
		}
		f := m.fields[name]
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
		dst = append(dst, byte(f.typ))
		var payload []byte
		switch f.typ {
		case TypeBytes:
			payload = f.bytes
		case TypeString:
			payload = []byte(f.str)
		case TypeInt:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], uint64(f.i))
			payload = b[:]
		case TypeAddress:
			enc := f.adr.Encode()
			payload = enc[:]
		case TypeAddressList:
			payload = make([]byte, 0, len(f.adrs)*addr.EncodedSize)
			for _, a := range f.adrs {
				payload = a.AppendEncoded(payload)
			}
		case TypeMessage:
			var err error
			payload, err = f.sub.Marshal()
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("msg: cannot marshal field %q of type %v", name, f.typ)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
		dst = append(dst, payload...)
	}
	return dst, nil
}

// Unmarshal decodes a message from b. The entire slice must be consumed.
func Unmarshal(b []byte) (*Message, error) {
	m, rest, err := unmarshalPrefix(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return m, nil
}

// unmarshalPrefix decodes one message from the front of b and returns the
// remaining bytes.
func unmarshalPrefix(b []byte) (*Message, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("%w: missing field count", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	m := New()
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("%w: truncated field name length", ErrCorrupt)
		}
		nameLen := int(b[0])
		b = b[1:]
		if len(b) < nameLen+1+4 {
			return nil, nil, fmt.Errorf("%w: truncated field header", ErrCorrupt)
		}
		name := string(b[:nameLen])
		typ := FieldType(b[nameLen])
		payloadLen := int(binary.BigEndian.Uint32(b[nameLen+1 : nameLen+5]))
		b = b[nameLen+5:]
		if len(b) < payloadLen {
			return nil, nil, fmt.Errorf("%w: truncated field payload", ErrCorrupt)
		}
		payload := b[:payloadLen]
		b = b[payloadLen:]
		switch typ {
		case TypeBytes:
			m.PutBytes(name, payload)
		case TypeString:
			m.PutString(name, string(payload))
		case TypeInt:
			if payloadLen != 8 {
				return nil, nil, fmt.Errorf("%w: int field %q has %d bytes", ErrCorrupt, name, payloadLen)
			}
			m.PutInt(name, int64(binary.BigEndian.Uint64(payload)))
		case TypeAddress:
			a, err := addr.Decode(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			m.PutAddress(name, a)
		case TypeAddressList:
			if payloadLen%addr.EncodedSize != 0 {
				return nil, nil, fmt.Errorf("%w: address list field %q has %d bytes", ErrCorrupt, name, payloadLen)
			}
			list := make(addr.List, 0, payloadLen/addr.EncodedSize)
			for off := 0; off < payloadLen; off += addr.EncodedSize {
				a, err := addr.Decode(payload[off:])
				if err != nil {
					return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				list = append(list, a)
			}
			m.PutAddressList(name, list)
		case TypeMessage:
			sub, err := Unmarshal(payload)
			if err != nil {
				return nil, nil, err
			}
			m.PutMessage(name, sub)
		default:
			return nil, nil, fmt.Errorf("%w: unknown field type %d", ErrCorrupt, typ)
		}
	}
	return m, b, nil
}

// MarshaledSize returns the number of bytes Marshal would produce. It is
// used by the simulated network to charge bandwidth without re-encoding.
func (m *Message) MarshaledSize() int {
	size := 2
	for name, f := range m.fields {
		size += 1 + len(name) + 1 + 4
		switch f.typ {
		case TypeBytes:
			size += len(f.bytes)
		case TypeString:
			size += len(f.str)
		case TypeInt:
			size += 8
		case TypeAddress:
			size += addr.EncodedSize
		case TypeAddressList:
			size += len(f.adrs) * addr.EncodedSize
		case TypeMessage:
			size += f.sub.MarshaledSize()
		}
	}
	return size
}
