// Package transport provides reliable, FIFO, fragmenting site-to-site
// message channels on top of the lossy datagram service of internal/simnet.
//
// The paper's system model (Section 2.1) tolerates message loss but not
// partitioning; the ISIS protocols process therefore assumes an underlying
// facility that eventually delivers every message sent between two
// operational sites, in the order sent. This package supplies that facility:
// per-destination sequence numbers, cumulative acknowledgements,
// timer-driven retransmission, and fragmentation of large messages into
// MaxPacket-sized packets (the paper's 4 KB fragmentation, responsible for
// the latency knee between 1 KB and 10 KB messages in Figure 2).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simnet"
)

// SiteID aliases the network's site identifier.
type SiteID = simnet.SiteID

// Handler receives a fully reassembled message from a peer site. Handlers
// are invoked sequentially per source site, preserving FIFO order.
type Handler func(from SiteID, data []byte)

// Config holds transport parameters.
type Config struct {
	// MaxPacket is the largest simnet payload; messages are fragmented so
	// that header+fragment fits within it. Defaults to the network's
	// MaxPacket, or 4096 when the network imposes no limit.
	MaxPacket int
	// RetransmitInterval is how often unacknowledged packets are resent.
	RetransmitInterval time.Duration
	// AckDelay is how long the receiver may wait before acknowledging, to
	// allow cumulative acks. Zero means ack immediately.
	AckDelay time.Duration
}

// DefaultConfig derives a transport configuration from a network
// configuration.
func DefaultConfig(net simnet.Config) Config {
	maxPkt := net.MaxPacket
	if maxPkt <= 0 {
		maxPkt = 4096
	}
	rto := 4 * net.InterSiteDelay
	if rto < 20*time.Millisecond {
		rto = 20 * time.Millisecond
	}
	return Config{MaxPacket: maxPkt, RetransmitInterval: rto}
}

// Stats counts transport-level activity.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	FragmentsSent     uint64
	Retransmissions   uint64
	DuplicatesDropped uint64
	AcksSent          uint64
}

// packet kinds.
const (
	kindData = 1
	kindAck  = 2
)

// header layout for data packets:
//
//	byte 0      kind
//	bytes 1-8   sequence number (big endian)
//	byte 9      flags (bit0: last fragment of its message)
//	bytes 10..  fragment payload
//
// ack packets:
//
//	byte 0      kind
//	bytes 1-8   cumulative ack: highest sequence delivered in order
const dataHeaderSize = 10
const ackSize = 9

const flagLastFragment = 0x01

// Errors.
var (
	ErrClosed   = errors.New("transport: closed")
	ErrTooSmall = errors.New("transport: MaxPacket too small for header")
)

// peerSend tracks the sending half of a connection to one peer site.
type peerSend struct {
	nextSeq uint64
	unacked map[uint64][]byte // seq -> raw packet bytes (header included)
}

// peerRecv tracks the receiving half of a connection from one peer site.
type peerRecv struct {
	nextExpected uint64            // next in-order sequence number
	buffered     map[uint64][]byte // out-of-order packets awaiting gap fill
	assembling   []byte            // fragments of the current message
}

// Transport is one site's reliable messaging endpoint. It is safe for
// concurrent use.
type Transport struct {
	cfg     Config
	ep      *simnet.Endpoint
	site    SiteID
	handler Handler

	mu     sync.Mutex
	sends  map[SiteID]*peerSend
	recvs  map[SiteID]*peerRecv
	stats  Stats
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a transport bound to the given network endpoint and starts its
// receive and retransmission loops. The handler is invoked for every
// reassembled message; it must not block indefinitely.
func New(ep *simnet.Endpoint, cfg Config, handler Handler) (*Transport, error) {
	if cfg.MaxPacket <= dataHeaderSize {
		return nil, fmt.Errorf("%w: MaxPacket=%d", ErrTooSmall, cfg.MaxPacket)
	}
	if cfg.RetransmitInterval <= 0 {
		cfg.RetransmitInterval = 20 * time.Millisecond
	}
	t := &Transport{
		cfg:     cfg,
		ep:      ep,
		site:    ep.Site(),
		handler: handler,
		sends:   make(map[SiteID]*peerSend),
		recvs:   make(map[SiteID]*peerRecv),
		done:    make(chan struct{}),
	}
	t.wg.Add(2)
	go t.recvLoop()
	go t.retransmitLoop()
	return t, nil
}

// Site returns the local site id.
func (t *Transport) Site() SiteID { return t.site }

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Unacked returns the number of transmitted packets not yet acknowledged by
// their destinations, across all peers. The protocols process uses it to
// implement the flush primitive.
func (t *Transport) Unacked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ps := range t.sends {
		n += len(ps.unacked)
	}
	return n
}

// Close stops the transport's background goroutines. In-flight messages may
// be lost, exactly as when a site crashes.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
}

// Send reliably transmits data to the destination site, fragmenting as
// needed. It returns once every fragment has been submitted to the network;
// delivery is asynchronous and guaranteed (unless either site crashes).
func (t *Transport) Send(to SiteID, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ps, ok := t.sends[to]
	if !ok {
		ps = &peerSend{nextSeq: 1, unacked: make(map[uint64][]byte)}
		t.sends[to] = ps
	}
	maxFrag := t.cfg.MaxPacket - dataHeaderSize
	// Build all fragments under the lock so their sequence numbers are
	// contiguous even with concurrent senders, then transmit outside it.
	var packets [][]byte
	remaining := data
	for first := true; first || len(remaining) > 0; first = false {
		frag := remaining
		if len(frag) > maxFrag {
			frag = frag[:maxFrag]
		}
		remaining = remaining[len(frag):]
		flags := byte(0)
		if len(remaining) == 0 {
			flags = flagLastFragment
		}
		pkt := make([]byte, dataHeaderSize+len(frag))
		pkt[0] = kindData
		binary.BigEndian.PutUint64(pkt[1:9], ps.nextSeq)
		pkt[9] = flags
		copy(pkt[dataHeaderSize:], frag)
		ps.unacked[ps.nextSeq] = pkt
		ps.nextSeq++
		packets = append(packets, pkt)
	}
	t.stats.MessagesSent++
	t.stats.FragmentsSent += uint64(len(packets))
	t.mu.Unlock()

	for _, pkt := range packets {
		if err := t.ep.Send(to, pkt); err != nil {
			return err
		}
	}
	return nil
}

// recvLoop dispatches packets arriving from the network.
func (t *Transport) recvLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case pkt := <-t.ep.Recv():
			t.handlePacket(pkt)
		}
	}
}

// retransmitLoop periodically resends unacknowledged packets.
func (t *Transport) retransmitLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.RetransmitInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
			t.retransmit()
		}
	}
}

func (t *Transport) retransmit() {
	type resend struct {
		to  SiteID
		pkt []byte
	}
	var pending []resend
	t.mu.Lock()
	for to, ps := range t.sends {
		for _, pkt := range ps.unacked {
			pending = append(pending, resend{to, pkt})
		}
	}
	t.stats.Retransmissions += uint64(len(pending))
	t.mu.Unlock()
	for _, r := range pending {
		_ = t.ep.Send(r.to, r.pkt)
	}
}

func (t *Transport) handlePacket(pkt simnet.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	switch pkt.Payload[0] {
	case kindAck:
		if len(pkt.Payload) < ackSize {
			return
		}
		t.handleAck(pkt.From, binary.BigEndian.Uint64(pkt.Payload[1:9]))
	case kindData:
		if len(pkt.Payload) < dataHeaderSize {
			return
		}
		t.handleData(pkt.From, pkt.Payload)
	}
}

func (t *Transport) handleAck(from SiteID, cumSeq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.sends[from]
	if !ok {
		return
	}
	for seq := range ps.unacked {
		if seq <= cumSeq {
			delete(ps.unacked, seq)
		}
	}
}

func (t *Transport) handleData(from SiteID, raw []byte) {
	seq := binary.BigEndian.Uint64(raw[1:9])

	t.mu.Lock()
	pr, ok := t.recvs[from]
	if !ok {
		pr = &peerRecv{nextExpected: 1, buffered: make(map[uint64][]byte)}
		t.recvs[from] = pr
	}
	if seq < pr.nextExpected {
		// Duplicate of something already delivered: re-ack so the sender
		// stops retransmitting it.
		t.stats.DuplicatesDropped++
		t.mu.Unlock()
		t.sendAck(from, pr.nextExpected-1)
		return
	}
	if _, dup := pr.buffered[seq]; dup {
		t.stats.DuplicatesDropped++
		t.mu.Unlock()
		return
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	pr.buffered[seq] = cp

	// Deliver every in-order packet now available.
	var complete [][]byte
	for {
		nxt, ok := pr.buffered[pr.nextExpected]
		if !ok {
			break
		}
		delete(pr.buffered, pr.nextExpected)
		pr.nextExpected++
		pr.assembling = append(pr.assembling, nxt[dataHeaderSize:]...)
		if nxt[9]&flagLastFragment != 0 {
			msgData := pr.assembling
			pr.assembling = nil
			complete = append(complete, msgData)
		}
	}
	ackUpTo := pr.nextExpected - 1
	t.stats.MessagesDelivered += uint64(len(complete))
	handler := t.handler
	t.mu.Unlock()

	t.sendAck(from, ackUpTo)
	if handler != nil {
		for _, m := range complete {
			handler(from, m)
		}
	}
}

func (t *Transport) sendAck(to SiteID, cumSeq uint64) {
	var pkt [ackSize]byte
	pkt[0] = kindAck
	binary.BigEndian.PutUint64(pkt[1:9], cumSeq)
	t.mu.Lock()
	t.stats.AcksSent++
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	_ = t.ep.Send(to, pkt[:])
}
