package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/netback"
)

// SiteID aliases the network's site identifier.
type SiteID = addr.SiteID

// Handler receives a fully reassembled message from a peer site. Handlers
// are invoked sequentially per source site, preserving FIFO order.
type Handler func(from SiteID, data []byte)

// Config holds transport parameters.
type Config struct {
	// MaxPacket is the largest backend payload; messages are fragmented so
	// that a frame holding one fragment fits within it, and queued fragments
	// are coalesced into frames up to this size. Defaults to the network's
	// MaxPacket, or 4096 when the network imposes no limit.
	MaxPacket int
	// RetransmitInterval is how often unacknowledged packets are resent.
	RetransmitInterval time.Duration
	// AckDelay is how long the receiver may wait before sending a dedicated
	// ack packet, giving reverse-direction data frames a chance to carry the
	// ack for free. Zero selects a default of 1ms; negative means ack
	// immediately (the pre-piggybacking behaviour).
	AckDelay time.Duration
	// Epoch distinguishes restarts of the same site: it seeds the high bits
	// of every outgoing stream's epoch, so peers recognise a restarted
	// site's fresh sequence numbering instead of discarding it as
	// duplicates. It must increase across restarts; the protocols daemon
	// derives it from the site incarnation. Zero selects 1.
	Epoch uint64
	// FlushDelay is how long the per-peer flusher waits after a fragment is
	// queued before building frames, to aggregate more traffic. Zero (the
	// default) flushes immediately; coalescing still happens whenever sends
	// outpace the link.
	FlushDelay time.Duration
	// DisableBatching sends one fragment per frame on the caller's
	// goroutine, with immediate dedicated acks: the unbatched baseline the
	// benchmark ablation compares against.
	DisableBatching bool
}

// DefaultConfig derives a transport configuration from a backend's
// physical profile.
func DefaultConfig(p netback.Profile) Config {
	maxPkt := p.MaxPacket
	if maxPkt <= 0 {
		maxPkt = 4096
	}
	rto := 4 * p.Delay
	if rto < 20*time.Millisecond {
		rto = 20 * time.Millisecond
	}
	return Config{MaxPacket: maxPkt, RetransmitInterval: rto}
}

// Stats counts transport-level activity.
type Stats struct {
	MessagesSent      uint64
	MessagesDelivered uint64
	FragmentsSent     uint64
	FramesSent        uint64 // simnet frames carrying data (batches count once)
	Coalesced         uint64 // fragments that shared a frame with an earlier one
	Retransmissions   uint64
	DuplicatesDropped uint64
	AcksSent          uint64 // dedicated ack frames
	AcksPiggybacked   uint64 // acks carried by data frames instead
}

// frame kinds.
const (
	kindAck      = 2 // pure cumulative ack
	kindFrame    = 3 // batch of sub-packet records with piggybacked ack
	kindFrameLow = 4 // kindFrame whose first record is the sender's lowest outstanding sequence
)

// Header sizes of the wire format above.
const (
	frameHeaderSize = 25
	subHeaderSize   = 13
	ackSize         = 17
)

const flagLastFragment = 0x01

// Errors.
var (
	ErrClosed   = errors.New("transport: closed")
	ErrTooSmall = errors.New("transport: MaxPacket too small for header")
)

// peerSend tracks the sending half of a connection to one peer site.
type peerSend struct {
	epoch    uint64 // stream epoch stamped on outgoing frames
	nextSeq  uint64
	unacked  map[uint64][]byte // seq -> sub-packet record (header included)
	queue    [][]byte          // records awaiting their first transmission
	sentUpTo uint64            // highest sequence handed to a frame so far
	kick     chan struct{}     // wakes the per-peer flusher
	started  bool              // flusher goroutine running
}

// pendingAck is the receive-side ack bookkeeping for one peer.
type peerRecv struct {
	epoch        uint64            // stream epoch of the incoming stream
	nextExpected uint64            // next in-order sequence number
	buffered     map[uint64]subRec // out-of-order records awaiting gap fill
	assembling   []byte            // fragments of the current message
	delivered    bool              // any record of this epoch delivered in order
	ackOwed      bool              // a (re-)ack must reach the peer
	ackTimerSet  bool              // a delayed pure-ack is scheduled
	ackCh        chan ackNote      // latest-wins mailbox for the ack sender
	ackStarted   bool              // ack-sender goroutine running
}

// ackNote is one epoch-qualified cumulative ack awaiting transmission.
type ackNote struct {
	epoch, cum uint64
}

type subRec struct {
	flags   byte
	payload []byte
}

// Transport is one site's reliable messaging endpoint. It is safe for
// concurrent use.
type Transport struct {
	cfg     Config
	ep      netback.Endpoint
	site    SiteID
	handler Handler

	// epochBase seeds every outgoing stream's epoch: incarnation in the
	// high 32 bits, leaving the low 32 for per-peer stream resets.
	epochBase uint64

	mu     sync.Mutex
	sends  map[SiteID]*peerSend
	recvs  map[SiteID]*peerRecv
	stats  Stats
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New creates a transport bound to the given backend endpoint and starts its
// receive and retransmission loops. The handler is invoked for every
// reassembled message; it must not block indefinitely.
func New(ep netback.Endpoint, cfg Config, handler Handler) (*Transport, error) {
	if cfg.MaxPacket <= frameHeaderSize+subHeaderSize {
		return nil, fmt.Errorf("%w: MaxPacket=%d", ErrTooSmall, cfg.MaxPacket)
	}
	if cfg.RetransmitInterval <= 0 {
		cfg.RetransmitInterval = 20 * time.Millisecond
	}
	if cfg.AckDelay == 0 {
		cfg.AckDelay = time.Millisecond
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	t := &Transport{
		cfg:       cfg,
		ep:        ep,
		site:      ep.Site(),
		handler:   handler,
		epochBase: cfg.Epoch << 32,
		sends:     make(map[SiteID]*peerSend),
		recvs:     make(map[SiteID]*peerRecv),
		done:      make(chan struct{}),
	}
	t.wg.Add(2)
	go t.recvLoop()
	go t.retransmitLoop()
	return t, nil
}

// Site returns the local site id.
func (t *Transport) Site() SiteID { return t.site }

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Unacked returns the number of transmitted packets not yet acknowledged by
// their destinations, across all peers. The protocols process uses it to
// implement the flush primitive.
func (t *Transport) Unacked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ps := range t.sends {
		n += len(ps.unacked)
	}
	return n
}

// Close stops the transport's background goroutines. In-flight messages may
// be lost, exactly as when a site crashes.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
}

// Send reliably transmits data to the destination site, fragmenting as
// needed. The fragments are queued for the destination's flusher, which
// coalesces whatever has accumulated into MaxPacket-sized frames; delivery
// is asynchronous and guaranteed (unless either site crashes).
func (t *Transport) Send(to SiteID, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ps, ok := t.sends[to]
	if !ok {
		ps = &peerSend{epoch: t.epochBase, nextSeq: 1, unacked: make(map[uint64][]byte), kick: make(chan struct{}, 1)}
		t.sends[to] = ps
	}
	maxFrag := t.cfg.MaxPacket - frameHeaderSize - subHeaderSize
	// Build all records under the lock so their sequence numbers are
	// contiguous even with concurrent senders.
	remaining := data
	n := 0
	for first := true; first || len(remaining) > 0; first = false {
		frag := remaining
		if len(frag) > maxFrag {
			frag = frag[:maxFrag]
		}
		remaining = remaining[len(frag):]
		flags := byte(0)
		if len(remaining) == 0 {
			flags = flagLastFragment
		}
		rec := make([]byte, subHeaderSize+len(frag))
		binary.BigEndian.PutUint64(rec[0:8], ps.nextSeq)
		rec[8] = flags
		binary.BigEndian.PutUint32(rec[9:13], uint32(len(frag)))
		copy(rec[subHeaderSize:], frag)
		ps.unacked[ps.nextSeq] = rec
		ps.queue = append(ps.queue, rec)
		ps.nextSeq++
		n++
	}
	t.stats.MessagesSent++
	t.stats.FragmentsSent += uint64(n)

	if !ps.started {
		ps.started = true
		t.wg.Add(1)
		go t.runFlusher(to, ps)
	}
	t.mu.Unlock()
	select {
	case ps.kick <- struct{}{}:
	default: // flusher already signalled
	}
	return nil
}

// runFlusher drains one peer's queue, coalescing queued records into frames.
// While a frame is on the (simulated) wire, newly queued records accumulate
// and share the next frame — batching emerges under load with no idle-path
// latency cost.
func (t *Transport) runFlusher(to SiteID, ps *peerSend) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case <-ps.kick:
		}
		if d := t.cfg.FlushDelay; d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-t.done:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		// The ablation baseline caps every frame at one record (one wire
		// packet per fragment — no coalescing); the flusher still does the
		// sending, so callers never block on a backed-up link.
		maxRecs := 0
		if t.cfg.DisableBatching {
			maxRecs = 1
		}
		for {
			t.mu.Lock()
			if len(ps.queue) == 0 {
				t.mu.Unlock()
				break
			}
			frame := t.buildFrameLocked(to, ps, maxRecs)
			t.mu.Unlock()
			_ = t.ep.Send(to, frame)
		}
	}
}

// buildFrameLocked pops queued records into one frame of at most MaxPacket
// bytes (or at most maxRecs records when maxRecs > 0) and stamps the
// piggybacked ack. Caller holds t.mu and guarantees the queue is non-empty.
func (t *Transport) buildFrameLocked(to SiteID, ps *peerSend, maxRecs int) []byte {
	frame := make([]byte, 0, t.cfg.MaxPacket)
	// Sequences are contiguous, so the queue head is sentUpTo+1: it is the
	// stream's lowest outstanding sequence exactly when nothing older is
	// still awaiting an ack. Receivers may adopt a mid-flight stream only at
	// such a frame (see handleFrame); the map scan exits on the first older
	// record, so a deep unacked backlog costs one probe.
	kind := byte(kindFrameLow)
	for seq := range ps.unacked {
		if seq <= ps.sentUpTo {
			kind = kindFrame
			break
		}
	}
	frame = append(frame, kind)
	frame = binary.BigEndian.AppendUint64(frame, ps.epoch)
	ackEpoch, ackCum := t.takeAckLocked(to)
	frame = binary.BigEndian.AppendUint64(frame, ackEpoch)
	frame = binary.BigEndian.AppendUint64(frame, ackCum)
	n := 0
	for len(ps.queue) > 0 {
		rec := ps.queue[0]
		if n > 0 && (len(frame)+len(rec) > t.cfg.MaxPacket || (maxRecs > 0 && n >= maxRecs)) {
			break
		}
		frame = append(frame, rec...)
		ps.sentUpTo = binary.BigEndian.Uint64(rec[0:8])
		ps.queue[0] = nil
		ps.queue = ps.queue[1:]
		n++
	}
	if len(ps.queue) == 0 {
		ps.queue = nil // release the drained backing array
	}
	t.stats.FramesSent++
	if n > 1 {
		t.stats.Coalesced += uint64(n - 1)
	}
	return frame
}

// takeAckLocked returns the epoch-qualified cumulative ack to piggyback on a
// frame to the given peer and clears the pending dedicated-ack obligation.
// Caller holds t.mu.
func (t *Transport) takeAckLocked(to SiteID) (epoch, cum uint64) {
	pr, ok := t.recvs[to]
	if !ok {
		return 0, 0
	}
	if pr.ackOwed {
		pr.ackOwed = false
		t.stats.AcksPiggybacked++
	}
	return pr.epoch, pr.nextExpected - 1
}

// recvLoop dispatches packets arriving from the network.
func (t *Transport) recvLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case pkt := <-t.ep.Recv():
			t.handlePacket(pkt)
		}
	}
}

// retransmitLoop periodically resends unacknowledged packets.
func (t *Transport) retransmitLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.RetransmitInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
			t.retransmit()
		}
	}
}

// retransmit rebuilds frames from every peer's unacked records (in sequence
// order, re-coalescing them) and resends them.
func (t *Transport) retransmit() {
	type resend struct {
		to     SiteID
		frames [][]byte
	}
	var pending []resend
	t.mu.Lock()
	for to, ps := range t.sends {
		if len(ps.unacked) == 0 {
			continue
		}
		// Only records that have already been on the wire are retransmitted;
		// anything past sentUpTo is still queued for its first transmission
		// by the flusher.
		seqs := make([]uint64, 0, len(ps.unacked))
		for seq := range ps.unacked {
			if seq <= ps.sentUpTo {
				seqs = append(seqs, seq)
			}
		}
		if len(seqs) == 0 {
			continue
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		var ackEpoch, cum uint64
		if pr, ok := t.recvs[to]; ok {
			ackEpoch, cum = pr.epoch, pr.nextExpected-1
		}
		r := resend{to: to}
		var frame []byte
		// The sweep runs in sequence order, so its first frame leads with the
		// stream's lowest outstanding sequence (queued records are all above
		// sentUpTo) and carries the adoption flag.
		kind := byte(kindFrameLow)
		for _, seq := range seqs {
			rec := ps.unacked[seq]
			if frame != nil && len(frame)+len(rec) > t.cfg.MaxPacket {
				r.frames = append(r.frames, frame)
				frame = nil
				kind = kindFrame
			}
			if frame == nil {
				frame = make([]byte, 0, t.cfg.MaxPacket)
				frame = append(frame, kind)
				frame = binary.BigEndian.AppendUint64(frame, ps.epoch)
				frame = binary.BigEndian.AppendUint64(frame, ackEpoch)
				frame = binary.BigEndian.AppendUint64(frame, cum)
			}
			frame = append(frame, rec...)
		}
		if frame != nil {
			r.frames = append(r.frames, frame)
		}
		t.stats.Retransmissions += uint64(len(seqs))
		t.stats.FramesSent += uint64(len(r.frames))
		pending = append(pending, r)
	}
	t.mu.Unlock()
	for _, r := range pending {
		for _, f := range r.frames {
			_ = t.ep.Send(r.to, f)
		}
	}
}

func (t *Transport) handlePacket(pkt netback.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	switch pkt.Payload[0] {
	case kindAck:
		if len(pkt.Payload) < ackSize {
			return
		}
		t.applyAck(pkt.From, binary.BigEndian.Uint64(pkt.Payload[1:9]), binary.BigEndian.Uint64(pkt.Payload[9:17]))
	case kindFrame, kindFrameLow:
		if len(pkt.Payload) < frameHeaderSize {
			return
		}
		t.handleFrame(pkt.From, pkt.Payload)
	}
}

// applyAck retires unacked records covered by a cumulative ack. The ack only
// applies to the stream epoch it names: an ack minted for a previous
// incarnation's numbering must not retire the current stream's records.
func (t *Transport) applyAck(from SiteID, ackEpoch, cumSeq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.sends[from]
	if !ok || ps.epoch != ackEpoch {
		return
	}
	for seq := range ps.unacked {
		if seq <= cumSeq {
			delete(ps.unacked, seq)
		}
	}
}

// handleFrame processes one data frame: applies its piggybacked ack, feeds
// each sub-packet record through the sequencing machinery, delivers every
// message completed by in-order records, and schedules the ack.
func (t *Transport) handleFrame(from SiteID, raw []byte) {
	senderEpoch := binary.BigEndian.Uint64(raw[1:9])
	t.applyAck(from, binary.BigEndian.Uint64(raw[9:17]), binary.BigEndian.Uint64(raw[17:25]))
	body := raw[frameHeaderSize:]

	t.mu.Lock()
	pr, ok := t.recvs[from]
	if !ok {
		pr = &peerRecv{epoch: senderEpoch, nextExpected: 1, buffered: make(map[uint64]subRec)}
		t.recvs[from] = pr
	}
	if senderEpoch < pr.epoch {
		// Straggler from a dead incarnation (or a pre-reset stream): its
		// sequence numbers belong to a numbering that no longer exists.
		t.stats.DuplicatesDropped++
		t.mu.Unlock()
		return
	}
	if senderEpoch > pr.epoch {
		// The peer restarted (higher incarnation) or reset its stream to
		// us: begin a fresh receive stream. Anything buffered belongs to the
		// dead numbering and is discarded, as when a site crashes.
		restarted := senderEpoch>>32 > pr.epoch>>32
		pr.epoch = senderEpoch
		pr.nextExpected = 1
		pr.buffered = make(map[uint64]subRec)
		pr.assembling = nil
		pr.delivered = false
		if restarted {
			// The restarted peer's receive state for our stream is gone
			// too: renumber our stream from 1 under a bumped epoch so the
			// fresh peer accepts it. Unacked records died with the crash.
			t.resetSendLocked(from)
		}
	}
	progress := false
	if raw[0] == kindFrameLow && !pr.delivered && len(body) >= subHeaderSize {
		// Contact with a stream already in flight: this side has no receive
		// state for the numbering (it restarted, or lost the state), but the
		// sender is mid-stream. Records below the frame's first sequence were
		// retired against our predecessor and will never be retransmitted —
		// waiting for them would wedge the stream forever — so adopt the
		// stream at its current position. Adoption is trusted only on frames
		// the sender marked as leading with its lowest outstanding sequence:
		// a fresh frame can outrace the retransmission of an older backlog
		// (the flusher does not wait for the retransmit tick), and adopting
		// at such a frame would silently discard the backlog. Once anything
		// of this epoch has been delivered the stream is established and the
		// gap-fill machinery owns ordering.
		if first := binary.BigEndian.Uint64(body[0:8]); first > pr.nextExpected {
			pr.nextExpected = first
			// Records between the old and new expectation may already sit in
			// the buffer (from unflagged frames that arrived first); count the
			// adoption as progress so they drain now.
			progress = true
		}
	}
	for len(body) >= subHeaderSize {
		seq := binary.BigEndian.Uint64(body[0:8])
		flags := body[8]
		payloadLen := int(binary.BigEndian.Uint32(body[9:13]))
		if len(body) < subHeaderSize+payloadLen {
			break // corrupt tail; drop the rest of the frame
		}
		payload := body[subHeaderSize : subHeaderSize+payloadLen]
		body = body[subHeaderSize+payloadLen:]

		if seq < pr.nextExpected {
			// Duplicate of something already delivered: re-ack so the sender
			// stops retransmitting it.
			t.stats.DuplicatesDropped++
			pr.ackOwed = true
			continue
		}
		if _, dup := pr.buffered[seq]; dup {
			t.stats.DuplicatesDropped++
			continue
		}
		// The backend hands ownership of the delivered payload to the
		// receiver (netback contract), so sub-slices can be kept directly.
		pr.buffered[seq] = subRec{flags: flags, payload: payload}
		progress = true
	}

	// Deliver every in-order record now available.
	var complete [][]byte
	if progress {
		for {
			rec, ok := pr.buffered[pr.nextExpected]
			if !ok {
				break
			}
			delete(pr.buffered, pr.nextExpected)
			pr.nextExpected++
			pr.delivered = true
			pr.assembling = append(pr.assembling, rec.payload...)
			if rec.flags&flagLastFragment != 0 {
				complete = append(complete, pr.assembling)
				pr.assembling = nil
			}
		}
		pr.ackOwed = true
	}
	t.stats.MessagesDelivered += uint64(len(complete))

	// Ack policy: immediately when configured so, otherwise via a short
	// timer that a reverse-direction data frame can beat (piggybacking).
	if pr.ackOwed {
		if t.cfg.AckDelay < 0 || t.cfg.DisableBatching {
			pr.ackOwed = false
			t.queueAckLocked(from, pr, pr.epoch, pr.nextExpected-1)
		} else if !pr.ackTimerSet {
			pr.ackTimerSet = true
			time.AfterFunc(t.cfg.AckDelay, func() { t.ackTimerFire(from) })
		}
	}
	handler := t.handler
	t.mu.Unlock()

	if handler != nil {
		for _, m := range complete {
			handler(from, m)
		}
	}
}

// resetSendLocked restarts the outgoing stream to a peer after the peer is
// known to have lost its receive state (site restart): queued and unacked
// records are dropped and the numbering begins again at 1 under a bumped
// epoch, so stale frames of the old numbering can never be confused with the
// new stream. Caller holds t.mu.
func (t *Transport) resetSendLocked(to SiteID) {
	ps, ok := t.sends[to]
	if !ok {
		return
	}
	ps.epoch++
	ps.nextSeq = 1
	ps.sentUpTo = 0
	ps.unacked = make(map[uint64][]byte)
	ps.queue = nil
}

// ackTimerFire sends the delayed dedicated ack unless a data frame has
// already piggybacked it.
func (t *Transport) ackTimerFire(from SiteID) {
	t.mu.Lock()
	pr, ok := t.recvs[from]
	if !ok || t.closed {
		if ok {
			pr.ackTimerSet = false
		}
		t.mu.Unlock()
		return
	}
	pr.ackTimerSet = false
	owed := pr.ackOwed
	pr.ackOwed = false
	epoch, cum := pr.epoch, pr.nextExpected-1
	t.mu.Unlock()
	if owed {
		t.sendAck(from, epoch, cum)
	}
}

// queueAckLocked hands a dedicated ack to the peer's ack-sender goroutine
// instead of transmitting it from the receive loop. The receive loop must
// never block on a network send: with per-fragment framing under flood, a
// receive loop stuck on a full reverse link while the peer's receive loop
// waits symmetrically on the opposite pair is a distributed buffer deadlock
// (observed as a multi-minute hang of the unbatched ablation benchmark).
// Cumulative acks are monotonic, so the one-slot mailbox keeps only the
// newest — under backlog stale acks are superseded, never reordered.
// Caller holds t.mu.
func (t *Transport) queueAckLocked(to SiteID, pr *peerRecv, epoch, cum uint64) {
	if t.closed {
		// A frame can still arrive between Close and the endpoint detaching;
		// starting the ack sender now would race wg.Add against Close's
		// wg.Wait, and the peer no longer needs the ack.
		return
	}
	if !pr.ackStarted {
		pr.ackStarted = true
		pr.ackCh = make(chan ackNote, 1)
		t.wg.Add(1)
		go t.runAckSender(to, pr.ackCh)
	}
	for {
		select {
		case pr.ackCh <- ackNote{epoch, cum}:
			return
		default:
		}
		select {
		case <-pr.ackCh: // drop the superseded ack
		default:
		}
	}
}

// runAckSender transmits one peer's dedicated acks from its mailbox.
func (t *Transport) runAckSender(to SiteID, ch chan ackNote) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case a := <-ch:
			t.sendAck(to, a.epoch, a.cum)
		}
	}
}

// sendAck transmits a dedicated cumulative-ack frame for one stream epoch.
func (t *Transport) sendAck(to SiteID, epoch, cumSeq uint64) {
	var pkt [ackSize]byte
	pkt[0] = kindAck
	binary.BigEndian.PutUint64(pkt[1:9], epoch)
	binary.BigEndian.PutUint64(pkt[9:17], cumSeq)
	t.mu.Lock()
	t.stats.AcksSent++
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	_ = t.ep.Send(to, pkt[:])
}
