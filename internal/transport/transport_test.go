package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

// collector gathers delivered messages per source site.
type collector struct {
	mu   sync.Mutex
	msgs []string
}

func (c *collector) handler(from SiteID, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, string(data))
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func (c *collector) waitFor(t *testing.T, n int, d time.Duration) []string {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if got := c.snapshot(); len(got) >= n {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out: have %d messages, want %d", len(c.snapshot()), n)
	return nil
}

func pair(t *testing.T, netCfg simnet.Config) (*Transport, *Transport, *collector, *collector, func()) {
	t.Helper()
	n := simnet.New(netCfg)
	cfg := DefaultConfig(n.Profile())
	cfg.RetransmitInterval = 10 * time.Millisecond
	c1, c2 := &collector{}, &collector{}
	t1, err := New(n.AddSite(1), cfg, c1.handler)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := New(n.AddSite(2), cfg, c2.handler)
	if err != nil {
		t.Fatal(err)
	}
	return t1, t2, c1, c2, func() {
		t1.Close()
		t2.Close()
		n.Close()
	}
}

func TestBasicReliableDelivery(t *testing.T) {
	t1, _, _, c2, done := pair(t, simnet.FastConfig())
	defer done()
	if err := t1.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := c2.waitFor(t, 1, time.Second)
	if got[0] != "hello" {
		t.Errorf("got %q", got[0])
	}
	st := t1.Stats()
	if st.MessagesSent != 1 || st.FragmentsSent != 1 {
		t.Errorf("sender stats = %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	t1, _, _, c2, done := pair(t, simnet.FastConfig())
	defer done()
	const k = 100
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c2.waitFor(t, k, 5*time.Second)
	for i := 0; i < k; i++ {
		if got[i] != fmt.Sprintf("m%03d", i) {
			t.Fatalf("position %d: got %q", i, got[i])
		}
	}
}

func TestFragmentationAndReassembly(t *testing.T) {
	cfg := simnet.FastConfig()
	cfg.MaxPacket = 64
	t1, _, _, c2, done := pair(t, cfg)
	defer done()
	big := bytes.Repeat([]byte("abcdefgh"), 100) // 800 bytes >> 64-byte packets
	if err := t1.Send(2, big); err != nil {
		t.Fatal(err)
	}
	got := c2.waitFor(t, 1, 2*time.Second)
	if got[0] != string(big) {
		t.Errorf("reassembled message corrupted: %d bytes vs %d", len(got[0]), len(big))
	}
	if st := t1.Stats(); st.FragmentsSent < 10 {
		t.Errorf("expected many fragments, sent %d", st.FragmentsSent)
	}
}

func TestEmptyMessage(t *testing.T) {
	t1, _, _, c2, done := pair(t, simnet.FastConfig())
	defer done()
	if err := t1.Send(2, nil); err != nil {
		t.Fatal(err)
	}
	got := c2.waitFor(t, 1, time.Second)
	if got[0] != "" {
		t.Errorf("got %q, want empty message", got[0])
	}
}

func TestLossRecovery(t *testing.T) {
	// 30% loss: every message must still arrive, in order, thanks to
	// retransmission.
	cfg := simnet.LossyConfig(0.3, 99)
	t1, _, _, c2, done := pair(t, cfg)
	defer done()
	const k = 60
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("msg-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c2.waitFor(t, k, 20*time.Second)
	for i := 0; i < k; i++ {
		if got[i] != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("position %d: got %q", i, got[i])
		}
	}
	if st := t1.Stats(); st.Retransmissions == 0 {
		t.Error("expected retransmissions under loss")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	t1, t2, c1, c2, done := pair(t, simnet.FastConfig())
	defer done()
	for i := 0; i < 20; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := t2.Send(1, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c2.waitFor(t, 20, 2*time.Second)
	c1.waitFor(t, 20, 2*time.Second)
}

func TestSendAfterClose(t *testing.T) {
	t1, _, _, _, done := pair(t, simnet.FastConfig())
	defer done()
	t1.Close()
	if err := t1.Send(2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Double close must not panic.
	t1.Close()
}

func TestNewRejectsTinyMaxPacket(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	defer n.Close()
	_, err := New(n.AddSite(1), Config{MaxPacket: 4}, nil)
	if !errors.Is(err, ErrTooSmall) {
		t.Errorf("err = %v, want ErrTooSmall", err)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// With heavy loss the sender retransmits aggressively; the receiver
	// must deliver each message exactly once.
	cfg := simnet.LossyConfig(0.4, 5)
	t1, t2, _, c2, done := pair(t, cfg)
	defer done()
	const k = 30
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("dup-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c2.waitFor(t, k, 20*time.Second)
	// Allow extra time for spurious duplicates to show up, then confirm
	// there are none.
	time.Sleep(100 * time.Millisecond)
	got = c2.snapshot()
	if len(got) != k {
		t.Fatalf("delivered %d messages, want exactly %d", len(got), k)
	}
	_ = t2
}

func TestConcurrentSendersToOnePeer(t *testing.T) {
	t1, _, _, c2, done := pair(t, simnet.FastConfig())
	defer done()
	const workers = 8
	const per = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := t1.Send(2, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := c2.waitFor(t, workers*per, 5*time.Second)
	if len(got) != workers*per {
		t.Fatalf("got %d messages", len(got))
	}
	// Per-sender FIFO: for each worker the i values must appear in order.
	pos := map[string]int{}
	for _, m := range got {
		var w, i int
		if _, err := fmt.Sscanf(m, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad message %q", m)
		}
		key := fmt.Sprintf("w%d", w)
		if i < pos[key] {
			t.Fatalf("worker %d message %d arrived after %d", w, i, pos[key])
		}
		pos[key] = i
	}
}

func TestStatsDelivered(t *testing.T) {
	t1, t2, _, c2, done := pair(t, simnet.FastConfig())
	defer done()
	for i := 0; i < 5; i++ {
		if err := t1.Send(2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c2.waitFor(t, 5, time.Second)
	if st := t2.Stats(); st.MessagesDelivered != 5 {
		t.Errorf("receiver delivered = %d", st.MessagesDelivered)
	}
	// Acks are deferred briefly (AckDelay) so reverse traffic can carry
	// them; with no reverse traffic a dedicated ack must still go out.
	deadline := time.Now().Add(time.Second)
	for {
		if st := t2.Stats(); st.AcksSent+st.AcksPiggybacked > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("receiver sent no acks")
			break
		}
		time.Sleep(time.Millisecond)
	}
	_ = t1
}

// TestPeerRestartMidStream lives in conformance_test.go, where it runs
// against every backend.

// Property: any payload survives a lossy link intact (content equality).
func TestPayloadIntegrityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := simnet.LossyConfig(0.2, 11)
	cfg.MaxPacket = 128
	t1, _, _, c2, done := pair(t, cfg)
	defer done()

	sent := 0
	f := func(data []byte) bool {
		if len(data) > 2000 {
			data = data[:2000]
		}
		if err := t1.Send(2, data); err != nil {
			return false
		}
		sent++
		got := c2.waitFor(t, sent, 20*time.Second)
		return bytes.Equal([]byte(got[sent-1]), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
