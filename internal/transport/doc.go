// Package transport provides reliable, FIFO, fragmenting site-to-site
// message channels on top of the lossy datagram service of internal/simnet.
//
// The paper's system model (Section 2.1) tolerates message loss but not
// partitioning; the ISIS protocols process therefore assumes an underlying
// facility that eventually delivers every message sent between two
// operational sites, in the order sent. This package supplies that facility:
// per-destination sequence numbers, cumulative acknowledgements,
// timer-driven retransmission, and fragmentation of large messages into
// MaxPacket-sized packets (the paper's 4 KB fragmentation, responsible for
// the latency knee between 1 KB and 10 KB messages in Figure 2).
//
// Two hot-path optimisations keep protocol overhead off the wire, in the
// spirit of the piggybacking and buffering tricks Section 7 credits for
// ISIS running near raw-datagram speed:
//
//   - Packet coalescing: fragments queued for the same destination site are
//     batched into a single simnet frame (up to MaxPacket) by a per-peer
//     flusher goroutine. Under backpressure — while one frame is being
//     transmitted, more Sends arrive — subsequent fragments share frames,
//     amortising the per-packet send cost without adding latency when the
//     link is idle. Config.FlushDelay optionally trades latency for deeper
//     batches; Config.DisableBatching (one fragment per frame) is the
//     ablation baseline.
//
//   - Piggybacked acks: every outgoing data frame carries the cumulative
//     acknowledgement for the reverse direction, so bidirectional traffic
//     needs no dedicated ack packets. A short ack timer (Config.AckDelay)
//     sends a pure ack only when no reverse traffic shows up in time.
//
// Sequence numbers are qualified by a stream epoch so that a site restart
// (new incarnation, sequence numbers starting over at 1) is not mistaken
// for duplicate traffic, and so that stale acks from a previous incarnation
// cannot retire records of the current one. An epoch's high 32 bits carry
// the sending site's incarnation and the low 32 bits a per-peer reset
// counter, making epochs monotonic across restarts and stream resets: a
// frame with a higher epoch than previously seen starts a fresh stream (the
// old receive state is discarded — whatever was in flight died with the
// crashed incarnation, exactly the loss model of a site crash), and a frame
// with a lower epoch is a straggler from a dead incarnation and is dropped.
//
// Wire format (all integers big endian). A simnet packet is one frame:
//
//	pure ack frame:
//	    byte 0      kindAck
//	    bytes 1-8   epoch of the data stream being acknowledged
//	    bytes 9-16  cumulative ack: highest sequence delivered in order
//
//	data frame:
//	    byte 0      kindFrame
//	    bytes 1-8   sender's stream epoch for this link
//	    bytes 9-16  piggybacked ack: epoch of the reverse data stream
//	    bytes 17-24 piggybacked cumulative ack (0: nothing received yet)
//	    repeated sub-packet record:
//	        bytes 0-7    sequence number
//	        byte  8      flags (bit0: last fragment of its message)
//	        bytes 9-12   fragment length
//	        bytes 13..   fragment payload
package transport
