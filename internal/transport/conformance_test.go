package transport

// The backend conformance suite: every test in this file runs against each
// netback implementation (the simulated LAN and the TCP-loopback wire), so
// the transport's guarantees — reliable FIFO streams, fragmentation, epoch
// handling across peer restarts — are proven equivalent on both fabrics
// rather than assumed from the simulation alone.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netback"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

// fabricCase constructs one backend under test. maxPacket <= 0 selects the
// backend's default frame cap.
type fabricCase struct {
	name string
	make func(maxPacket int) netback.Network
}

func fabricCases() []fabricCase {
	return []fabricCase{
		{"simnet", func(maxPacket int) netback.Network {
			cfg := simnet.FastConfig()
			if maxPacket > 0 {
				cfg.MaxPacket = maxPacket
			}
			return simnet.New(cfg)
		}},
		{"tcp", func(maxPacket int) netback.Network {
			return tcpnet.New(tcpnet.Config{MaxPacket: maxPacket})
		}},
	}
}

// confEndpoint attaches a site with the given epoch and wraps it in a
// transport with a test-friendly retransmission interval.
func confEndpoint(t *testing.T, fab netback.Network, id SiteID, epoch uint64) (*Transport, *collector) {
	t.Helper()
	cfg := DefaultConfig(fab.Profile())
	cfg.RetransmitInterval = 10 * time.Millisecond
	cfg.Epoch = epoch
	ep, err := fab.Attach(id, epoch)
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	tr, err := New(ep, cfg, c.handler)
	if err != nil {
		t.Fatal(err)
	}
	return tr, c
}

func TestConformanceBasicDelivery(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			t1, _ := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			if err := t1.Send(2, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if got := c2.waitFor(t, 1, 2*time.Second); got[0] != "hello" {
				t.Errorf("got %q", got[0])
			}
		})
	}
}

func TestConformanceFIFO(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			t1, _ := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			const k = 200
			for i := 0; i < k; i++ {
				if err := t1.Send(2, []byte(fmt.Sprintf("m%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			got := c2.waitFor(t, k, 10*time.Second)
			for i := 0; i < k; i++ {
				if got[i] != fmt.Sprintf("m%04d", i) {
					t.Fatalf("position %d: got %q", i, got[i])
				}
			}
		})
	}
}

func TestConformanceFragmentation(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(64)
			defer fab.Close()
			t1, _ := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			big := bytes.Repeat([]byte("abcdefgh"), 100) // 800 bytes >> 64-byte frames
			if err := t1.Send(2, big); err != nil {
				t.Fatal(err)
			}
			got := c2.waitFor(t, 1, 5*time.Second)
			if got[0] != string(big) {
				t.Errorf("reassembled message corrupted: %d bytes vs %d", len(got[0]), len(big))
			}
			if st := t1.Stats(); st.FragmentsSent < 10 {
				t.Errorf("expected many fragments, sent %d", st.FragmentsSent)
			}
		})
	}
}

func TestConformanceBidirectional(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			t1, c1 := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			// Simultaneous first sends in both directions also exercise the
			// TCP backend's dial race: both sides dial at once and must
			// settle on one socket without losing either stream.
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := t1.Send(2, []byte(fmt.Sprintf("a%d", i))); err != nil {
						t.Errorf("send a%d: %v", i, err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := t2.Send(1, []byte(fmt.Sprintf("b%d", i))); err != nil {
						t.Errorf("send b%d: %v", i, err)
						return
					}
				}
			}()
			wg.Wait()
			c2.waitFor(t, 50, 5*time.Second)
			c1.waitFor(t, 50, 5*time.Second)
		})
	}
}

func TestConformanceConcurrentSenders(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			t1, _ := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			const workers = 8
			const per = 25
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := t1.Send(2, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			got := c2.waitFor(t, workers*per, 10*time.Second)
			pos := map[int]int{}
			for _, m := range got {
				var w, i int
				if _, err := fmt.Sscanf(m, "w%d-%d", &w, &i); err != nil {
					t.Fatalf("bad message %q", m)
				}
				if i < pos[w] {
					t.Fatalf("worker %d message %d arrived after %d", w, i, pos[w])
				}
				pos[w] = i
			}
		})
	}
}

// TestPeerRestartMidStream is the mid-stream reconnect conformance case: a
// peer that restarts with a higher incarnation epoch must not strand the
// sender's ongoing stream. The fresh receiver has no receive state, so it
// adopts the stream at the first frame's sequence number (records below it
// were retired against its predecessor), and once it sends back, the sender
// detects the higher epoch and renumbers. Under the TCP backend this also
// exercises reconnection: the old socket dies with the old endpoint and the
// sender must re-dial the restarted listener, whose handshake presents the
// bumped epoch.
func TestPeerRestartMidStream(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			trA, cA := confEndpoint(t, fab, 1, 1)
			defer trA.Close()
			trB, _cB := confEndpoint(t, fab, 2, 1)
			for i := 0; i < 3; i++ {
				if err := trA.Send(2, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			_cB.waitFor(t, 3, 2*time.Second)
			// Wait for B's ack to retire the pre-restart messages; if A still
			// held them unacked it would retransmit them to the restarted
			// receiver, which (correctly, by stream adoption) would deliver
			// them to the new incarnation — duplicate suppression across
			// incarnations is the protocol layer's job, not the transport's,
			// and is not what this test is about.
			drain := time.Now().Add(2 * time.Second)
			for trA.Unacked() > 0 {
				if time.Now().After(drain) {
					t.Fatalf("pre-restart window never drained: %d unacked", trA.Unacked())
				}
				time.Sleep(time.Millisecond)
			}

			// B "crashes" and restarts with a higher incarnation.
			trB.Close()
			trB2, cB2 := confEndpoint(t, fab, 2, 2)
			defer trB2.Close()

			// A message sent to the restarted peer before it has ever sent
			// back travels on A's old stream (sequence 4): the fresh receiver
			// must adopt the stream position instead of waiting forever for
			// sequences 1-3.
			if err := trA.Send(2, []byte("to-new-incarnation")); err != nil {
				t.Fatal(err)
			}
			if got := cB2.waitFor(t, 1, 5*time.Second); got[0] != "to-new-incarnation" {
				t.Errorf("restarted peer received %q", got[0])
			}

			// Reverse traffic carries the new incarnation's epoch: A resets
			// its stream to B and both directions keep working.
			if err := trB2.Send(1, []byte("hello-from-reborn")); err != nil {
				t.Fatal(err)
			}
			if got := cA.waitFor(t, 1, 5*time.Second); got[0] != "hello-from-reborn" {
				t.Errorf("A received %q", got[0])
			}
			if err := trA.Send(2, []byte("post-reset")); err != nil {
				t.Fatal(err)
			}
			if got := cB2.waitFor(t, 2, 5*time.Second); got[1] != "post-reset" {
				t.Errorf("restarted peer received %v", got)
			}
		})
	}
}

// TestConformanceBatchCoalescing proves the batch flusher works identically
// over both fabrics: a burst of small sends must coalesce into fewer frames
// than fragments.
func TestConformanceBatchCoalescing(t *testing.T) {
	for _, fc := range fabricCases() {
		t.Run(fc.name, func(t *testing.T) {
			fab := fc.make(0)
			defer fab.Close()
			t1, _ := confEndpoint(t, fab, 1, 1)
			defer t1.Close()
			t2, c2 := confEndpoint(t, fab, 2, 1)
			defer t2.Close()
			const k = 400
			for i := 0; i < k; i++ {
				if err := t1.Send(2, []byte(fmt.Sprintf("burst-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			c2.waitFor(t, k, 10*time.Second)
			st := t1.Stats()
			if st.Coalesced == 0 {
				t.Errorf("no coalescing under burst: %+v", st)
			}
			if st.FramesSent >= st.FragmentsSent {
				t.Errorf("frames (%d) not fewer than fragments (%d)", st.FramesSent, st.FragmentsSent)
			}
		})
	}
}
