package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simnet"
)

// TestCoalescingUnderLoad checks that when sends outpace the link, queued
// fragments share frames: far fewer frames than fragments go on the wire.
func TestCoalescingUnderLoad(t *testing.T) {
	netCfg := simnet.FastConfig()
	netCfg.SendCPU = 200 * time.Microsecond // make each frame cost something
	t1, _, _, c2, done := pair(t, netCfg)
	defer done()

	const k = 100
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c2.waitFor(t, k, 10*time.Second)
	for i := 0; i < k; i++ {
		if got[i] != fmt.Sprintf("m%03d", i) {
			t.Fatalf("position %d: got %q", i, got[i])
		}
	}
	st := t1.Stats()
	if st.FragmentsSent != k {
		t.Errorf("FragmentsSent = %d, want %d", st.FragmentsSent, k)
	}
	if st.Coalesced == 0 {
		t.Error("no fragments were coalesced under load")
	}
	if st.FramesSent >= st.FragmentsSent {
		t.Errorf("FramesSent = %d not smaller than FragmentsSent = %d", st.FramesSent, st.FragmentsSent)
	}
}

// TestPiggybackedAcks checks that reverse-direction data frames carry the
// cumulative ack, sparing dedicated ack packets, and that the sender's
// unacked window still drains.
func TestPiggybackedAcks(t *testing.T) {
	netCfg := simnet.FastConfig()
	n := simnet.New(netCfg)
	defer n.Close()
	cfg := DefaultConfig(n.Profile())
	cfg.RetransmitInterval = 50 * time.Millisecond
	cfg.AckDelay = 25 * time.Millisecond // generous window for piggybacking
	c1, c2 := &collector{}, &collector{}
	t1, err := New(n.AddSite(1), cfg, c1.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := New(n.AddSite(2), cfg, c2.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()

	// Ping-pong traffic: every reply's frame can carry the ack for the
	// request it answers.
	const k = 20
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("req%d", i))); err != nil {
			t.Fatal(err)
		}
		c2.waitFor(t, i+1, 2*time.Second)
		if err := t2.Send(1, []byte(fmt.Sprintf("resp%d", i))); err != nil {
			t.Fatal(err)
		}
		c1.waitFor(t, i+1, 2*time.Second)
	}
	st2 := t2.Stats()
	if st2.AcksPiggybacked == 0 {
		t.Error("no acks were piggybacked on reverse traffic")
	}
	// Both unacked windows drain without waiting for retransmission.
	deadline := time.Now().Add(2 * time.Second)
	for t1.Unacked()+t2.Unacked() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("windows never drained: %d + %d", t1.Unacked(), t2.Unacked())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDisableBatchingAblation checks the unbatched baseline: exactly one
// frame per fragment, nothing coalesced, delivery still reliable and FIFO.
func TestDisableBatchingAblation(t *testing.T) {
	netCfg := simnet.FastConfig()
	n := simnet.New(netCfg)
	defer n.Close()
	cfg := DefaultConfig(n.Profile())
	cfg.RetransmitInterval = 10 * time.Millisecond
	cfg.DisableBatching = true
	c2 := &collector{}
	t1, err := New(n.AddSite(1), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := New(n.AddSite(2), cfg, c2.handler)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()

	const k = 50
	for i := 0; i < k; i++ {
		if err := t1.Send(2, []byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c2.waitFor(t, k, 5*time.Second)
	for i := 0; i < k; i++ {
		if got[i] != fmt.Sprintf("m%02d", i) {
			t.Fatalf("position %d: got %q", i, got[i])
		}
	}
	st := t1.Stats()
	if st.FramesSent != st.FragmentsSent || st.Coalesced != 0 {
		t.Errorf("unbatched baseline coalesced anyway: %+v", st)
	}
}

// BenchmarkTransportThroughput measures one-way small-message throughput
// with coalescing on and off — the transport-level ablation of the
// batching optimisation.
func BenchmarkTransportThroughput(b *testing.B) {
	for _, mode := range []struct {
		name      string
		unbatched bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			netCfg := simnet.FastConfig()
			netCfg.SendCPU = 20 * time.Microsecond
			netCfg.RecvCPU = 20 * time.Microsecond
			n := simnet.New(netCfg)
			defer n.Close()
			cfg := DefaultConfig(n.Profile())
			cfg.DisableBatching = mode.unbatched
			var delivered atomic.Int64
			t1, err := New(n.AddSite(1), cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer t1.Close()
			t2, err := New(n.AddSite(2), cfg, func(SiteID, []byte) { delivered.Add(1) })
			if err != nil {
				b.Fatal(err)
			}
			defer t2.Close()

			payload := make([]byte, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t1.Send(2, payload); err != nil {
					b.Fatal(err)
				}
			}
			for delivered.Load() < int64(b.N) {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			st := t1.Stats()
			if b.N > 1 {
				b.ReportMetric(float64(st.FramesSent)/float64(b.N), "frames/msg")
			}
		})
	}
}
