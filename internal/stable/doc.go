// Package stable implements the stable-storage facility the paper's
// recovery tools depend on (Section 2.2 "Stable storage" and Section 3.6's
// logging mode of the replicated data tool): an append-only log of records
// plus periodic checkpoints, with replay on recovery.
//
// Two implementations are provided: an in-memory store (used by tests and by
// applications that only need the interface) and a file-backed store that
// survives process restarts, which is what the recovery-manager examples and
// the twenty-questions Step 6 ("restarting from total failures") use.
package stable
