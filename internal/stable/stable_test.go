package stable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// storeFactory lets every test run against both implementations.
type storeFactory struct {
	name string
	make func(t *testing.T) Store
}

func factories() []storeFactory {
	return []storeFactory{
		{"mem", func(t *testing.T) Store { return NewMem() }},
		{"file", func(t *testing.T) Store {
			s, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func TestEmptyRecover(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			cp, log, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if cp != nil || len(log) != 0 {
				t.Errorf("empty store recovered cp=%v log=%v", cp, log)
			}
			n, err := s.LogLen()
			if err != nil || n != 0 {
				t.Errorf("LogLen = %d, %v", n, err)
			}
		})
	}
}

func TestAppendAndRecover(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			recs := []Record{
				{Kind: 1, Data: []byte("update price>9000")},
				{Kind: 1, Data: []byte("update color=red")},
				{Kind: 2, Data: nil},
			}
			for _, r := range recs {
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			_, log, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) != len(recs) {
				t.Fatalf("recovered %d records, want %d", len(log), len(recs))
			}
			for i := range recs {
				if log[i].Kind != recs[i].Kind || !bytes.Equal(log[i].Data, recs[i].Data) {
					t.Errorf("record %d = %+v, want %+v", i, log[i], recs[i])
				}
			}
			if n, _ := s.LogLen(); n != len(recs) {
				t.Errorf("LogLen = %d", n)
			}
		})
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			_ = s.Append(Record{Kind: 1, Data: []byte("old")})
			if err := s.WriteCheckpoint([]byte("state-v1")); err != nil {
				t.Fatal(err)
			}
			_ = s.Append(Record{Kind: 1, Data: []byte("new")})
			cp, log, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if string(cp) != "state-v1" {
				t.Errorf("checkpoint = %q", cp)
			}
			if len(log) != 1 || string(log[0].Data) != "new" {
				t.Errorf("log after checkpoint = %+v", log)
			}
		})
	}
}

func TestCheckpointOverwrite(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			defer s.Close()
			_ = s.WriteCheckpoint([]byte("v1"))
			_ = s.WriteCheckpoint([]byte("v2"))
			cp, _, _ := s.Recover()
			if string(cp) != "v2" {
				t.Errorf("checkpoint = %q, want v2", cp)
			}
		})
	}
}

func TestClosedStoreErrors(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			s := f.make(t)
			s.Close()
			if err := s.Append(Record{}); !errors.Is(err, ErrClosed) {
				t.Errorf("Append after close = %v", err)
			}
			if err := s.WriteCheckpoint(nil); !errors.Is(err, ErrClosed) {
				t.Errorf("WriteCheckpoint after close = %v", err)
			}
			if _, _, err := s.Recover(); !errors.Is(err, ErrClosed) {
				t.Errorf("Recover after close = %v", err)
			}
			if _, err := s.LogLen(); !errors.Is(err, ErrClosed) {
				t.Errorf("LogLen after close = %v", err)
			}
		})
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.WriteCheckpoint([]byte("durable"))
	_ = s.Append(Record{Kind: 3, Data: []byte("after-cp")})
	s.Close()

	// "Restart": open a new store on the same directory.
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cp, log, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "durable" {
		t.Errorf("checkpoint = %q", cp)
	}
	if len(log) != 1 || log[0].Kind != 3 || string(log[0].Data) != "after-cp" {
		t.Errorf("log = %+v", log)
	}
}

func TestFileStoreToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Append(Record{Kind: 1, Data: []byte("complete")})
	s.Close()
	// Simulate a crash mid-append by appending a partial header.
	f, err := os.OpenFile(filepath.Join(dir, "log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, log, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || string(log[0].Data) != "complete" {
		t.Errorf("log = %+v, want only the complete record", log)
	}
}

func TestCheckpointCrashRecovery(t *testing.T) {
	// A process that dies without Close — including one that died after
	// writing a checkpoint temp file but before the rename — must recover
	// the last completed checkpoint plus every post-checkpoint record, and
	// the reopened store must keep working across further checkpoint cycles.
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Append(Record{Kind: 1, Data: []byte("pre")})
	if err := s.WriteCheckpoint([]byte("cp1")); err != nil {
		t.Fatal(err)
	}
	_ = s.Append(Record{Kind: 2, Data: []byte("post")})
	// Crash: no Close; a later checkpoint attempt died mid-write, leaving a
	// torn temp file that must not shadow the completed checkpoint.
	if err := os.WriteFile(filepath.Join(dir, checkpointName+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, log, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "cp1" {
		t.Errorf("recovered checkpoint = %q, want cp1", cp)
	}
	if len(log) != 1 || string(log[0].Data) != "post" {
		t.Errorf("recovered log = %+v, want only the post-checkpoint record", log)
	}

	if err := s2.WriteCheckpoint([]byte("cp2")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(Record{Kind: 3, Data: []byte("post2")}); err != nil {
		t.Fatalf("append after checkpoint on recovered store: %v", err)
	}
	s2.Close()

	s3, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	cp, log, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "cp2" || len(log) != 1 || string(log[0].Data) != "post2" {
		t.Errorf("second recovery: cp=%q log=%+v", cp, log)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMem()
	defer s.Close()
	data := []byte("mutate me")
	_ = s.Append(Record{Kind: 1, Data: data})
	data[0] = 'X'
	_, log, _ := s.Recover()
	if string(log[0].Data) != "mutate me" {
		t.Error("MemStore aliased the caller's buffer on Append")
	}
	log[0].Data[0] = 'Y'
	_, log2, _ := s.Recover()
	if string(log2[0].Data) != "mutate me" {
		t.Error("MemStore exposed internal state on Recover")
	}
}

func TestCopyStore(t *testing.T) {
	src := NewMem()
	defer src.Close()
	_ = src.WriteCheckpoint([]byte("base"))
	_ = src.Append(Record{Kind: 1, Data: []byte("delta-1")})
	_ = src.Append(Record{Kind: 1, Data: []byte("delta-2")})

	dst := NewMem()
	defer dst.Close()
	if err := CopyStore(dst, src); err != nil {
		t.Fatal(err)
	}
	cp, log, _ := dst.Recover()
	if string(cp) != "base" || len(log) != 2 || string(log[1].Data) != "delta-2" {
		t.Errorf("copied store: cp=%q log=%+v", cp, log)
	}
}

func TestCopyStoreWithoutCheckpoint(t *testing.T) {
	src := NewMem()
	_ = src.Append(Record{Kind: 1, Data: []byte("only-log")})
	dst := NewMem()
	if err := CopyStore(dst, src); err != nil {
		t.Fatal(err)
	}
	cp, log, _ := dst.Recover()
	if cp != nil || len(log) != 1 {
		t.Errorf("copy without checkpoint: cp=%v log=%+v", cp, log)
	}
}

func TestReadAll(t *testing.T) {
	got, err := ReadAll(strings.NewReader("hello"))
	if err != nil || string(got) != "hello" {
		t.Errorf("ReadAll = %q, %v", got, err)
	}
}

// Property: any sequence of appended records is recovered verbatim, in
// order, by both implementations.
func TestAppendRecoverProperty(t *testing.T) {
	f := func(payloads [][]byte, kinds []uint8) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		mem := NewMem()
		defer mem.Close()
		var want []Record
		for i, p := range payloads {
			k := uint8(1)
			if i < len(kinds) {
				k = kinds[i]
			}
			r := Record{Kind: k, Data: p}
			want = append(want, r)
			if err := mem.Append(r); err != nil {
				return false
			}
		}
		_, got, err := mem.Recover()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
