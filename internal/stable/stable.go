package stable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Record is one log entry. Kind is application-defined; the replicated data
// tool uses it to distinguish updates from checkpoint markers.
type Record struct {
	Kind uint8
	Data []byte
}

// Store is the stable-storage interface: an append-only log plus a
// checkpoint slot. WriteCheckpoint atomically replaces the checkpoint and
// truncates the log (records appended afterwards are "since the
// checkpoint").
type Store interface {
	// Append adds a record to the log.
	Append(rec Record) error
	// WriteCheckpoint replaces the checkpoint and clears the log.
	WriteCheckpoint(data []byte) error
	// Recover returns the latest checkpoint (nil if none) and the records
	// appended since it, in order.
	Recover() (checkpoint []byte, log []Record, err error)
	// LogLen returns the number of records appended since the checkpoint.
	LogLen() (int, error)
	// Close releases any resources.
	Close() error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("stable: store closed")

// ---------------------------------------------------------------------------
// In-memory store

// MemStore is an in-memory Store. It is safe for concurrent use. Its
// contents survive only as long as the process, which is sufficient for
// tests and for simulating partial failures (where the "disk" survives
// because the simulated site object is retained).
type MemStore struct {
	mu         sync.Mutex
	checkpoint []byte
	log        []Record
	closed     bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := Record{Kind: rec.Kind, Data: append([]byte(nil), rec.Data...)}
	s.log = append(s.log, cp)
	return nil
}

// WriteCheckpoint implements Store.
func (s *MemStore) WriteCheckpoint(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.checkpoint = append([]byte(nil), data...)
	s.log = nil
	return nil
}

// Recover implements Store.
func (s *MemStore) Recover() ([]byte, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	var cp []byte
	if s.checkpoint != nil {
		cp = append([]byte(nil), s.checkpoint...)
	}
	out := make([]Record, len(s.log))
	for i, r := range s.log {
		out[i] = Record{Kind: r.Kind, Data: append([]byte(nil), r.Data...)}
	}
	return cp, out, nil
}

// LogLen implements Store.
func (s *MemStore) LogLen() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.log), nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// File-backed store

// FileStore is a Store backed by two files in a directory: "checkpoint"
// holds the latest checkpoint and "log" holds records appended since. The
// formats are length-prefixed binary. Writes are flushed with File.Sync so a
// crashed process can recover what it logged.
type FileStore struct {
	mu      sync.Mutex
	dir     string
	logFile *os.File
	closed  bool
}

const (
	checkpointName = "checkpoint"
	logName        = "log"
)

// NewFile opens (creating if needed) a file-backed store rooted at dir.
func NewFile(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stable: open log: %w", err)
	}
	return &FileStore{dir: dir, logFile: f}, nil
}

// Append implements Store.
func (s *FileStore) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var hdr [5]byte
	hdr[0] = rec.Kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(rec.Data)))
	if _, err := s.logFile.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.logFile.Write(rec.Data); err != nil {
		return err
	}
	return s.logFile.Sync()
}

// WriteCheckpoint implements Store.
func (s *FileStore) WriteCheckpoint(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Write the checkpoint to a temporary file, fsync it, and rename it
	// into place, then fsync the directory: a crash at any point leaves
	// either the old checkpoint or the new one durably on disk, never a
	// torn or unreachable file.
	tmp := filepath.Join(s.dir, checkpointName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Truncate the log: records before the checkpoint are now redundant.
	// The truncated file is opened before the old handle is released, so a
	// failure here leaves s.logFile valid and later Appends still work
	// (replaying pre-checkpoint records on recovery is merely redundant,
	// losing post-checkpoint records would not be).
	nf, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	old := s.logFile
	s.logFile = nf
	_ = old.Close()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// Recover implements Store.
func (s *FileStore) Recover() ([]byte, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	var cp []byte
	b, err := os.ReadFile(filepath.Join(s.dir, checkpointName))
	switch {
	case err == nil:
		cp = b
	case os.IsNotExist(err):
		cp = nil
	default:
		return nil, nil, err
	}
	logBytes, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, err := parseLog(logBytes)
	if err != nil {
		return nil, nil, err
	}
	return cp, recs, nil
}

// parseLog decodes the length-prefixed records, stopping cleanly at a
// truncated tail (which can occur if the process crashed mid-append).
func parseLog(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		if len(b) < 5 {
			break // truncated header: drop the partial record
		}
		kind := b[0]
		n := int(binary.BigEndian.Uint32(b[1:5]))
		if len(b) < 5+n {
			break // truncated payload
		}
		recs = append(recs, Record{Kind: kind, Data: append([]byte(nil), b[5:5+n]...)})
		b = b[5+n:]
	}
	return recs, nil
}

// LogLen implements Store.
func (s *FileStore) LogLen() (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.mu.Unlock()
	_, recs, err := s.Recover()
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.logFile.Close()
}

// CopyStore duplicates the recoverable contents of src into dst. It is used
// by tests and by the recovery-manager example to model moving a service's
// stable state to the site where it restarts.
func CopyStore(dst, src Store) error {
	cp, log, err := src.Recover()
	if err != nil {
		return err
	}
	if cp != nil {
		if err := dst.WriteCheckpoint(cp); err != nil {
			return err
		}
	}
	for _, r := range log {
		if err := dst.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll is a small helper that drains an io.Reader; exported for use by
// the examples when loading seed databases.
func ReadAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }
