// Package addr implements the compact ISIS addressing scheme described in
// Section 4.1 of the paper ("Addresses"). Every process and every process
// group is named by a fixed-size, 8-byte identifier that encodes the site at
// which the entity was created, the site's incarnation number, a locally
// unique identifier, the kind of entity (process or group), and an entry
// point number. Group addresses can be used in any context where a process
// address is acceptable.
//
// Addresses are values; they are comparable with == and can be used as map
// keys. The zero Address is "nil" (no destination) and reports IsNil() ==
// true.
package addr
