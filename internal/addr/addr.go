package addr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind distinguishes the two classes of addressable entities.
type Kind uint8

const (
	// KindNil is the kind of the zero Address.
	KindNil Kind = iota
	// KindProcess addresses a single process.
	KindProcess
	// KindGroup addresses a process group; a multicast to such an address
	// is expanded to the group's current membership by the protocols
	// process.
	KindGroup
)

// String returns a short human readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindProcess:
		return "proc"
	case KindGroup:
		return "group"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// SiteID identifies a computing site (a machine in the paper's model).
type SiteID uint16

// Incarnation distinguishes successive restarts of the same site, so that
// addresses minted before a crash can never collide with addresses minted
// after recovery.
type Incarnation uint8

// EntryID identifies an entry point within a process (a 1-byte identifier in
// the paper). Entry 0 is reserved for "no entry" / default.
type EntryID uint8

// Well-known generic entry points used by the toolkit itself. User entries
// should start at EntryUserBase.
const (
	EntryDefault       EntryID = 0  // default delivery entry
	EntryJoin          EntryID = 1  // group join requests
	EntryMembership    EntryID = 2  // membership change notifications
	EntryStateTransfer EntryID = 3  // state transfer blocks
	EntryGenericCCRply EntryID = 4  // GENERIC_CC_REPLY used by coordinator-cohort
	EntryConfig        EntryID = 5  // configuration tool updates
	EntryNews          EntryID = 6  // news service postings
	EntryUserBase      EntryID = 16 // first entry id available to applications
)

// Address is the 8-byte encoded identifier of a process or a process group.
type Address struct {
	Site    SiteID      // site at which the entity was created
	Incarn  Incarnation // incarnation of that site
	Kind    Kind        // process or group
	Entry   EntryID     // entry point (0 unless the address names an entry)
	LocalID uint32      // locally unique id assigned by the creating site (24 bits used)
}

// Nil is the zero address.
var Nil Address

// NewProcess builds a process address.
func NewProcess(site SiteID, inc Incarnation, local uint32) Address {
	return Address{Site: site, Incarn: inc, Kind: KindProcess, LocalID: local}
}

// NewGroup builds a group address.
func NewGroup(site SiteID, inc Incarnation, local uint32) Address {
	return Address{Site: site, Incarn: inc, Kind: KindGroup, LocalID: local}
}

// IsNil reports whether a is the zero address.
func (a Address) IsNil() bool { return a == Address{} }

// IsProcess reports whether a names a single process.
func (a Address) IsProcess() bool { return a.Kind == KindProcess }

// IsGroup reports whether a names a process group.
func (a Address) IsGroup() bool { return a.Kind == KindGroup }

// WithEntry returns a copy of a that carries the given entry point. The
// original address is unchanged; addresses are values.
func (a Address) WithEntry(e EntryID) Address {
	a.Entry = e
	return a
}

// Base returns a with the entry point cleared; two addresses that differ
// only in entry point have the same Base. Routing and membership operate on
// base addresses.
func (a Address) Base() Address {
	a.Entry = 0
	return a
}

// SameEntity reports whether a and b name the same process or group,
// ignoring the entry point.
func (a Address) SameEntity(b Address) bool { return a.Base() == b.Base() }

// String renders the address in the form used throughout log output, e.g.
// "proc(2.1/17:5)" for process 17 created by incarnation 1 of site 2,
// entry 5.
func (a Address) String() string {
	if a.IsNil() {
		return "addr(nil)"
	}
	if a.Entry != 0 {
		return fmt.Sprintf("%s(%d.%d/%d:%d)", a.Kind, a.Site, a.Incarn, a.LocalID, a.Entry)
	}
	return fmt.Sprintf("%s(%d.%d/%d)", a.Kind, a.Site, a.Incarn, a.LocalID)
}

// Compare totally orders addresses: first by site, then incarnation, kind,
// local id, and finally entry. It returns -1, 0, or +1. The total order is
// used to break ties deterministically in the ABCAST protocol and when
// ranking otherwise-equal members.
func (a Address) Compare(b Address) int {
	switch {
	case a.Site != b.Site:
		return cmpU64(uint64(a.Site), uint64(b.Site))
	case a.Incarn != b.Incarn:
		return cmpU64(uint64(a.Incarn), uint64(b.Incarn))
	case a.Kind != b.Kind:
		return cmpU64(uint64(a.Kind), uint64(b.Kind))
	case a.LocalID != b.LocalID:
		return cmpU64(uint64(a.LocalID), uint64(b.LocalID))
	default:
		return cmpU64(uint64(a.Entry), uint64(b.Entry))
	}
}

// Less reports whether a orders before b under Compare.
func (a Address) Less(b Address) bool { return a.Compare(b) < 0 }

func cmpU64(x, y uint64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// EncodedSize is the number of bytes produced by Encode: the paper's 8-byte
// identifier.
const EncodedSize = 8

// Encode packs the address into its 8-byte wire form:
//
//	bytes 0-1  site id (big endian)
//	byte  2    incarnation
//	byte  3    kind
//	byte  4    entry id
//	bytes 5-7  local id (24 bits, big endian)
func (a Address) Encode() [EncodedSize]byte {
	var b [EncodedSize]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(a.Site))
	b[2] = byte(a.Incarn)
	b[3] = byte(a.Kind)
	b[4] = byte(a.Entry)
	b[5] = byte(a.LocalID >> 16)
	b[6] = byte(a.LocalID >> 8)
	b[7] = byte(a.LocalID)
	return b
}

// AppendEncoded appends the 8-byte wire form of a to dst and returns the
// extended slice.
func (a Address) AppendEncoded(dst []byte) []byte {
	enc := a.Encode()
	return append(dst, enc[:]...)
}

// ErrShortAddress is returned by Decode when fewer than EncodedSize bytes
// are available.
var ErrShortAddress = errors.New("addr: short address encoding")

// ErrBadKind is returned by Decode when the kind byte is not a known Kind.
var ErrBadKind = errors.New("addr: invalid address kind")

// Decode parses an address from the first EncodedSize bytes of b.
func Decode(b []byte) (Address, error) {
	if len(b) < EncodedSize {
		return Address{}, ErrShortAddress
	}
	k := Kind(b[3])
	if k > KindGroup {
		return Address{}, ErrBadKind
	}
	a := Address{
		Site:    SiteID(binary.BigEndian.Uint16(b[0:2])),
		Incarn:  Incarnation(b[2]),
		Kind:    k,
		Entry:   EntryID(b[4]),
		LocalID: uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}
	return a, nil
}

// List is a destination list: the paper's broadcasts accept a list of
// destinations, each of which may be a process or a group address.
type List []Address

// Contains reports whether the list contains an address with the same
// entity as a (entry points ignored).
func (l List) Contains(a Address) bool {
	for _, x := range l {
		if x.SameEntity(a) {
			return true
		}
	}
	return false
}

// Clone returns a copy of the list.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Dedup returns a copy of the list with duplicate entities removed,
// preserving the order of first occurrence.
func (l List) Dedup() List {
	seen := make(map[Address]bool, len(l))
	out := make(List, 0, len(l))
	for _, a := range l {
		b := a.Base()
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, a)
	}
	return out
}

// Generator mints locally unique addresses for one site incarnation. It is
// not safe for concurrent use; each site wraps it in its own lock.
type Generator struct {
	site SiteID
	inc  Incarnation
	next uint32
}

// NewGenerator returns a generator for the given site and incarnation. The
// first identifier handed out is 1; local id 0 is reserved.
func NewGenerator(site SiteID, inc Incarnation) *Generator {
	return &Generator{site: site, inc: inc, next: 1}
}

// NextProcess returns a fresh process address.
func (g *Generator) NextProcess() Address {
	a := NewProcess(g.site, g.inc, g.next)
	g.next++
	return a
}

// NextGroup returns a fresh group address.
func (g *Generator) NextGroup() Address {
	a := NewGroup(g.site, g.inc, g.next)
	g.next++
	return a
}
