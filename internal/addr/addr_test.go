package addr

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNil:     "nil",
		KindProcess: "proc",
		KindGroup:   "group",
		Kind(9):     "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNilAddress(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	a := NewProcess(1, 0, 7)
	if a.IsNil() {
		t.Fatal("process address reported nil")
	}
	if Nil.String() != "addr(nil)" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
}

func TestProcessAndGroupConstructors(t *testing.T) {
	p := NewProcess(3, 2, 99)
	if !p.IsProcess() || p.IsGroup() {
		t.Errorf("NewProcess kind wrong: %+v", p)
	}
	g := NewGroup(3, 2, 100)
	if !g.IsGroup() || g.IsProcess() {
		t.Errorf("NewGroup kind wrong: %+v", g)
	}
	if p.Site != 3 || p.Incarn != 2 || p.LocalID != 99 {
		t.Errorf("NewProcess fields wrong: %+v", p)
	}
}

func TestWithEntryAndBase(t *testing.T) {
	p := NewProcess(1, 0, 5)
	e := p.WithEntry(7)
	if e.Entry != 7 {
		t.Fatalf("WithEntry entry = %d", e.Entry)
	}
	if p.Entry != 0 {
		t.Fatal("WithEntry mutated the original")
	}
	if e.Base() != p {
		t.Fatal("Base did not strip the entry")
	}
	if !e.SameEntity(p) || !p.SameEntity(e) {
		t.Fatal("SameEntity should ignore entry points")
	}
	q := NewProcess(1, 0, 6)
	if q.SameEntity(p) {
		t.Fatal("distinct processes reported as same entity")
	}
}

func TestString(t *testing.T) {
	p := NewProcess(2, 1, 17)
	if got := p.String(); got != "proc(2.1/17)" {
		t.Errorf("String() = %q", got)
	}
	if got := p.WithEntry(5).String(); got != "proc(2.1/17:5)" {
		t.Errorf("String() with entry = %q", got)
	}
	g := NewGroup(0, 0, 3)
	if got := g.String(); got != "group(0.0/3)" {
		t.Errorf("group String() = %q", got)
	}
}

func TestCompareOrdering(t *testing.T) {
	low := NewProcess(1, 0, 1)
	cases := []struct {
		name string
		hi   Address
	}{
		{"site", NewProcess(2, 0, 1)},
		{"incarnation", NewProcess(1, 1, 1)},
		{"localid", NewProcess(1, 0, 2)},
		{"kind", NewGroup(1, 0, 1)},
		{"entry", NewProcess(1, 0, 1).WithEntry(1)},
	}
	for _, c := range cases {
		if low.Compare(c.hi) != -1 {
			t.Errorf("%s: Compare(low, hi) = %d, want -1", c.name, low.Compare(c.hi))
		}
		if c.hi.Compare(low) != 1 {
			t.Errorf("%s: Compare(hi, low) = %d, want 1", c.name, c.hi.Compare(low))
		}
		if !low.Less(c.hi) || c.hi.Less(low) {
			t.Errorf("%s: Less inconsistent with Compare", c.name)
		}
	}
	if low.Compare(low) != 0 {
		t.Error("Compare(a, a) != 0")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Address{
		NewProcess(0, 0, 1),
		NewProcess(65535, 255, 0xFFFFFF),
		NewGroup(12, 3, 42).WithEntry(200),
		Nil,
	}
	// Nil has Kind 0 which decodes fine.
	for _, a := range cases {
		enc := a.Encode()
		got, err := Decode(enc[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", a, err)
		}
		if got != a {
			t.Errorf("round trip mismatch: %v != %v", got, a)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); err != ErrShortAddress {
		t.Errorf("short decode err = %v, want ErrShortAddress", err)
	}
	var b [8]byte
	b[3] = 200 // invalid kind
	if _, err := Decode(b[:]); err != ErrBadKind {
		t.Errorf("bad kind err = %v, want ErrBadKind", err)
	}
}

func TestAppendEncoded(t *testing.T) {
	a := NewProcess(1, 2, 3)
	buf := []byte{0xAA}
	buf = a.AppendEncoded(buf)
	if len(buf) != 1+EncodedSize {
		t.Fatalf("AppendEncoded length = %d", len(buf))
	}
	got, err := Decode(buf[1:])
	if err != nil || got != a {
		t.Fatalf("AppendEncoded round trip failed: %v %v", got, err)
	}
}

// Property: Encode/Decode round-trips for all well-formed addresses.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(site uint16, inc uint8, kindSel bool, entry uint8, local uint32) bool {
		k := KindProcess
		if kindSel {
			k = KindGroup
		}
		a := Address{Site: SiteID(site), Incarn: Incarnation(inc), Kind: k,
			Entry: EntryID(entry), LocalID: local & 0xFFFFFF}
		enc := a.Encode()
		got, err := Decode(enc[:])
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Compare(a,a)==0.
func TestCompareProperty(t *testing.T) {
	gen := func(site uint16, inc, entry uint8, grp bool, local uint32) Address {
		k := KindProcess
		if grp {
			k = KindGroup
		}
		return Address{Site: SiteID(site), Incarn: Incarnation(inc), Kind: k,
			Entry: EntryID(entry), LocalID: local & 0xFFFFFF}
	}
	f := func(s1 uint16, i1, e1 uint8, g1 bool, l1 uint32, s2 uint16, i2, e2 uint8, g2 bool, l2 uint32) bool {
		a, b := gen(s1, i1, e1, g1, l1), gen(s2, i2, e2, g2, l2)
		if a == b {
			return a.Compare(b) == 0
		}
		return a.Compare(b) == -b.Compare(a) && a.Compare(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestListContains(t *testing.T) {
	p1 := NewProcess(1, 0, 1)
	p2 := NewProcess(1, 0, 2)
	g := NewGroup(1, 0, 3)
	l := List{p1, g}
	if !l.Contains(p1) || !l.Contains(g) {
		t.Error("Contains missed present members")
	}
	if l.Contains(p2) {
		t.Error("Contains found absent member")
	}
	if !l.Contains(p1.WithEntry(9)) {
		t.Error("Contains should ignore entry point")
	}
}

func TestListCloneAndDedup(t *testing.T) {
	p1 := NewProcess(1, 0, 1)
	p2 := NewProcess(1, 0, 2)
	l := List{p1, p2, p1.WithEntry(3), p2}
	d := l.Dedup()
	if len(d) != 2 || d[0] != p1 || d[1] != p2 {
		t.Errorf("Dedup = %v", d)
	}
	c := l.Clone()
	if len(c) != len(l) {
		t.Fatal("Clone length mismatch")
	}
	c[0] = Nil
	if l[0] == Nil {
		t.Error("Clone aliases the original")
	}
	if List(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestGenerator(t *testing.T) {
	g := NewGenerator(4, 1)
	p := g.NextProcess()
	q := g.NextProcess()
	grp := g.NextGroup()
	if p == q {
		t.Error("generator returned duplicate addresses")
	}
	if p.LocalID != 1 || q.LocalID != 2 || grp.LocalID != 3 {
		t.Errorf("unexpected local ids: %d %d %d", p.LocalID, q.LocalID, grp.LocalID)
	}
	if p.Site != 4 || p.Incarn != 1 {
		t.Errorf("generator site/incarnation wrong: %v", p)
	}
	if !grp.IsGroup() || !p.IsProcess() {
		t.Error("generator kinds wrong")
	}
}
