// Package fdetect implements the ISIS site-monitoring facility of Section
// 3.7 of the paper: failures of remote sites are detected by timeout on
// periodic heartbeats, and the timeout interval adapts to the observed
// heartbeat inter-arrival times so that an overloaded (slow) site is not
// hastily declared dead. Process failures within a site are detected
// directly by the local protocols process and do not involve this package.
//
// The detector reports clean events: once a site is declared failed, it
// stays failed until a later heartbeat arrives, at which point a recovery
// event is reported (in the full system the recovered site rejoins with a
// new incarnation; see internal/protos).
package fdetect
