package fdetect

import (
	"sort"
	"sync"
	"time"

	"repro/internal/simnet"
)

// SiteID aliases the network site identifier.
type SiteID = simnet.SiteID

// EventKind distinguishes failure from recovery notifications.
type EventKind uint8

const (
	// SiteFailed is reported when a monitored site misses heartbeats for
	// longer than the adaptive timeout.
	SiteFailed EventKind = iota + 1
	// SiteRecovered is reported when a heartbeat arrives from a site that
	// had been declared failed.
	SiteRecovered
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case SiteFailed:
		return "site-failed"
	case SiteRecovered:
		return "site-recovered"
	default:
		return "unknown"
	}
}

// Event is one failure-detector notification.
type Event struct {
	Site SiteID
	Kind EventKind
	When time.Time
}

// SendHeartbeat is the function the detector uses to emit a heartbeat to a
// peer site; the protocols process wires it to the transport.
type SendHeartbeat func(to SiteID)

// Notify receives detector events. It is called from the detector's
// goroutine and must not block for long.
type Notify func(Event)

// Config holds detector parameters.
type Config struct {
	// HeartbeatInterval is how often heartbeats are sent to every peer.
	HeartbeatInterval time.Duration
	// InitialTimeout is the failure timeout used before enough heartbeat
	// history exists to adapt.
	InitialTimeout time.Duration
	// MinTimeout and MaxTimeout clamp the adaptive timeout.
	MinTimeout time.Duration
	MaxTimeout time.Duration
	// DeviationFactor is the multiple of the observed mean deviation added
	// to the observed mean inter-arrival time (the adaptive rule is
	// timeout = mean + DeviationFactor*dev, in the spirit of TCP's RTO).
	DeviationFactor float64
	// CheckInterval is how often peers are examined for timeout; defaults
	// to HeartbeatInterval.
	CheckInterval time.Duration
}

// DefaultConfig returns parameters suitable for unit tests and the simulated
// cluster: 10 ms heartbeats, 100 ms initial timeout.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval: 10 * time.Millisecond,
		InitialTimeout:    100 * time.Millisecond,
		MinTimeout:        50 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		DeviationFactor:   4,
	}
}

type peerState struct {
	lastSeen   time.Time
	meanGap    time.Duration // smoothed inter-arrival time
	devGap     time.Duration // smoothed mean deviation
	haveSample bool
	failed     bool
}

// Detector monitors a set of peer sites.
type Detector struct {
	self   SiteID
	cfg    Config
	send   SendHeartbeat
	notify Notify

	mu    sync.Mutex
	peers map[SiteID]*peerState

	done    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// New creates a detector. Call Start to begin monitoring.
func New(self SiteID, cfg Config, send SendHeartbeat, notify Notify) *Detector {
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = cfg.HeartbeatInterval
	}
	if cfg.DeviationFactor <= 0 {
		cfg.DeviationFactor = 4
	}
	return &Detector{
		self:   self,
		cfg:    cfg,
		send:   send,
		notify: notify,
		peers:  make(map[SiteID]*peerState),
		done:   make(chan struct{}),
	}
}

// AddPeer begins monitoring a site. Adding an already-monitored site resets
// its failure state (used when a site rejoins).
func (d *Detector) AddPeer(site SiteID) {
	if site == d.self {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peers[site] = &peerState{lastSeen: time.Now()}
}

// RemovePeer stops monitoring a site (e.g. after its failure has been fully
// handled and it is no longer part of any view).
func (d *Detector) RemovePeer(site SiteID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.peers, site)
}

// Peers returns the monitored sites in ascending order.
func (d *Detector) Peers() []SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]SiteID, 0, len(d.peers))
	for s := range d.peers {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Suspected returns the sites currently considered failed.
func (d *Detector) Suspected() []SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []SiteID
	for s, p := range d.peers {
		if p.failed {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnHeartbeat records a heartbeat received from a peer. If the peer had been
// declared failed, a recovery event is emitted.
func (d *Detector) OnHeartbeat(from SiteID) {
	now := time.Now()
	var recovered bool
	d.mu.Lock()
	p, ok := d.peers[from]
	if !ok {
		// Heartbeat from an unmonitored site: start monitoring it. This is
		// how a freshly started site becomes known to its peers.
		p = &peerState{lastSeen: now}
		d.peers[from] = p
		d.mu.Unlock()
		return
	}
	gap := now.Sub(p.lastSeen)
	p.lastSeen = now
	if p.haveSample {
		// Exponentially weighted mean and mean deviation (alpha = 1/8,
		// beta = 1/4), mirroring the classic RTO estimator.
		diff := gap - p.meanGap
		if diff < 0 {
			diff = -diff
		}
		p.meanGap += (gap - p.meanGap) / 8
		p.devGap += (diff - p.devGap) / 4
	} else {
		p.meanGap = gap
		p.devGap = gap / 2
		p.haveSample = true
	}
	if p.failed {
		p.failed = false
		recovered = true
	}
	notify := d.notify
	d.mu.Unlock()
	if recovered && notify != nil {
		notify(Event{Site: from, Kind: SiteRecovered, When: now})
	}
}

// TimeoutFor returns the current adaptive timeout for a peer. Exposed for
// tests and for the bench harness that reports detector behaviour.
func (d *Detector) TimeoutFor(site SiteID) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.peers[site]
	if !ok || !p.haveSample {
		return d.cfg.InitialTimeout
	}
	return d.clampTimeout(p)
}

func (d *Detector) clampTimeout(p *peerState) time.Duration {
	t := p.meanGap + time.Duration(float64(p.devGap)*d.cfg.DeviationFactor)
	if t < d.cfg.MinTimeout {
		t = d.cfg.MinTimeout
	}
	if t > d.cfg.MaxTimeout {
		t = d.cfg.MaxTimeout
	}
	return t
}

// Start launches the heartbeat and timeout-check loops.
func (d *Detector) Start() {
	d.wg.Add(2)
	go d.heartbeatLoop()
	go d.checkLoop()
}

// Stop terminates the background loops.
func (d *Detector) Stop() {
	d.stopped.Do(func() { close(d.done) })
	d.wg.Wait()
}

func (d *Detector) heartbeatLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			if d.send == nil {
				continue
			}
			for _, peer := range d.Peers() {
				d.send(peer)
			}
		}
	}
}

func (d *Detector) checkLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ticker.C:
			d.checkTimeouts()
		}
	}
}

func (d *Detector) checkTimeouts() {
	now := time.Now()
	var failures []SiteID
	d.mu.Lock()
	for s, p := range d.peers {
		if p.failed {
			continue
		}
		timeout := d.cfg.InitialTimeout
		if p.haveSample {
			timeout = d.clampTimeout(p)
		}
		if now.Sub(p.lastSeen) > timeout {
			p.failed = true
			failures = append(failures, s)
		}
	}
	notify := d.notify
	d.mu.Unlock()
	if notify == nil {
		return
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i] < failures[j] })
	for _, s := range failures {
		notify(Event{Site: s, Kind: SiteFailed, When: now})
	}
}
