package fdetect

import (
	"sync"
	"testing"
	"time"
)

// eventSink collects detector events.
type eventSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *eventSink) notify(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

func (s *eventSink) snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

func (s *eventSink) waitFor(t *testing.T, pred func([]Event) bool, d time.Duration) []Event {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if evs := s.snapshot(); pred(evs) {
			return evs
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached; events = %+v", s.snapshot())
	return nil
}

func fastConfig() Config {
	return Config{
		HeartbeatInterval: 5 * time.Millisecond,
		InitialTimeout:    40 * time.Millisecond,
		MinTimeout:        20 * time.Millisecond,
		MaxTimeout:        500 * time.Millisecond,
		DeviationFactor:   4,
	}
}

func TestEventKindString(t *testing.T) {
	if SiteFailed.String() != "site-failed" || SiteRecovered.String() != "site-recovered" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(9).String() != "unknown" {
		t.Error("unknown EventKind string wrong")
	}
}

func TestHeartbeatsAreSent(t *testing.T) {
	var mu sync.Mutex
	sent := map[SiteID]int{}
	d := New(1, fastConfig(), func(to SiteID) {
		mu.Lock()
		sent[to]++
		mu.Unlock()
	}, nil)
	d.AddPeer(2)
	d.AddPeer(3)
	d.Start()
	defer d.Stop()
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if sent[2] < 3 || sent[3] < 3 {
		t.Errorf("heartbeats sent = %v, want several to each peer", sent)
	}
}

func TestSelfIsNeverMonitored(t *testing.T) {
	d := New(1, fastConfig(), nil, nil)
	d.AddPeer(1)
	if len(d.Peers()) != 0 {
		t.Error("detector monitors itself")
	}
}

func TestFailureDetection(t *testing.T) {
	sink := &eventSink{}
	d := New(1, fastConfig(), func(SiteID) {}, sink.notify)
	d.AddPeer(2)
	d.Start()
	defer d.Stop()
	// Site 2 never sends a heartbeat: it must be declared failed.
	evs := sink.waitFor(t, func(evs []Event) bool {
		return len(evs) >= 1
	}, time.Second)
	if evs[0].Site != 2 || evs[0].Kind != SiteFailed {
		t.Errorf("event = %+v", evs[0])
	}
	if got := d.Suspected(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Suspected = %v", got)
	}
}

func TestFailureReportedOnce(t *testing.T) {
	sink := &eventSink{}
	d := New(1, fastConfig(), func(SiteID) {}, sink.notify)
	d.AddPeer(2)
	d.Start()
	defer d.Stop()
	sink.waitFor(t, func(evs []Event) bool { return len(evs) >= 1 }, time.Second)
	time.Sleep(100 * time.Millisecond)
	if evs := sink.snapshot(); len(evs) != 1 {
		t.Errorf("failure reported %d times", len(evs))
	}
}

func TestHealthySiteNotSuspected(t *testing.T) {
	sink := &eventSink{}
	d := New(1, fastConfig(), func(SiteID) {}, sink.notify)
	d.AddPeer(2)
	d.Start()
	defer d.Stop()
	// Simulate regular heartbeats from site 2.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				d.OnHeartbeat(2)
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if evs := sink.snapshot(); len(evs) != 0 {
		t.Errorf("healthy site produced events: %+v", evs)
	}
}

func TestRecoveryEvent(t *testing.T) {
	sink := &eventSink{}
	d := New(1, fastConfig(), func(SiteID) {}, sink.notify)
	d.AddPeer(2)
	d.Start()
	defer d.Stop()
	// Let it fail, then deliver a heartbeat: a recovery event must follow.
	sink.waitFor(t, func(evs []Event) bool { return len(evs) >= 1 }, time.Second)
	d.OnHeartbeat(2)
	evs := sink.waitFor(t, func(evs []Event) bool { return len(evs) >= 2 }, time.Second)
	if evs[1].Kind != SiteRecovered || evs[1].Site != 2 {
		t.Errorf("second event = %+v", evs[1])
	}
	if len(d.Suspected()) != 0 {
		t.Errorf("Suspected after recovery = %v", d.Suspected())
	}
}

func TestAdaptiveTimeoutGrowsWithSlowHeartbeats(t *testing.T) {
	cfg := fastConfig()
	d := New(1, cfg, nil, nil)
	d.AddPeer(2)
	// Before any samples the initial timeout applies.
	if got := d.TimeoutFor(2); got != cfg.InitialTimeout {
		t.Errorf("initial timeout = %v", got)
	}
	// Feed slow heartbeats (about 60 ms apart, beyond MinTimeout).
	for i := 0; i < 6; i++ {
		time.Sleep(60 * time.Millisecond)
		d.OnHeartbeat(2)
	}
	slow := d.TimeoutFor(2)
	if slow <= cfg.MinTimeout {
		t.Errorf("adaptive timeout %v did not grow beyond the minimum", slow)
	}
	if slow > cfg.MaxTimeout {
		t.Errorf("adaptive timeout %v exceeds the maximum", slow)
	}
	// An overloaded-but-alive site with heartbeats slower than the
	// *initial* timeout must not be declared failed once the estimator has
	// adapted: its timeout must exceed the observed 60 ms gap.
	if slow < 60*time.Millisecond {
		t.Errorf("adaptive timeout %v would misclassify a slow site", slow)
	}
	if d.TimeoutFor(99) != cfg.InitialTimeout {
		t.Error("unknown peer should use the initial timeout")
	}
}

func TestTimeoutClamping(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxTimeout = 80 * time.Millisecond
	d := New(1, cfg, nil, nil)
	d.AddPeer(2)
	for i := 0; i < 4; i++ {
		time.Sleep(50 * time.Millisecond)
		d.OnHeartbeat(2)
	}
	if got := d.TimeoutFor(2); got > cfg.MaxTimeout {
		t.Errorf("timeout %v exceeds the configured maximum %v", got, cfg.MaxTimeout)
	}
	cfg2 := fastConfig()
	cfg2.MinTimeout = 70 * time.Millisecond
	d2 := New(1, cfg2, nil, nil)
	d2.AddPeer(3)
	for i := 0; i < 6; i++ {
		time.Sleep(time.Millisecond)
		d2.OnHeartbeat(3)
	}
	if got := d2.TimeoutFor(3); got < cfg2.MinTimeout {
		t.Errorf("timeout %v fell below the configured minimum %v", got, cfg2.MinTimeout)
	}
}

func TestHeartbeatFromUnknownSiteStartsMonitoring(t *testing.T) {
	d := New(1, fastConfig(), nil, nil)
	d.OnHeartbeat(7)
	peers := d.Peers()
	if len(peers) != 1 || peers[0] != 7 {
		t.Errorf("Peers = %v", peers)
	}
}

func TestRemovePeerStopsMonitoring(t *testing.T) {
	sink := &eventSink{}
	d := New(1, fastConfig(), func(SiteID) {}, sink.notify)
	d.AddPeer(2)
	d.RemovePeer(2)
	d.Start()
	defer d.Stop()
	time.Sleep(100 * time.Millisecond)
	if evs := sink.snapshot(); len(evs) != 0 {
		t.Errorf("removed peer produced events: %+v", evs)
	}
	if len(d.Peers()) != 0 {
		t.Errorf("Peers = %v", d.Peers())
	}
}

func TestStopIsIdempotent(t *testing.T) {
	d := New(1, fastConfig(), nil, nil)
	d.Start()
	d.Stop()
	d.Stop()
}
