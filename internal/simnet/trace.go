package simnet

import (
	"sync"
	"time"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// EventSend is recorded when a packet is submitted to the network.
	EventSend EventKind = iota + 1
	// EventDeliver is recorded when a packet reaches its destination.
	EventDeliver
	// EventDrop is recorded when the loss model discards a packet.
	EventDrop
	// EventDiscard is recorded when a packet arrives at a detached site.
	EventDiscard
	// EventPhase is recorded by protocol layers (not by simnet itself) to
	// mark protocol phases; it carries a label. The Figure 3 breakdown is
	// assembled from these events plus the send/deliver events between
	// them.
	EventPhase
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventDrop:
		return "drop"
	case EventDiscard:
		return "discard"
	case EventPhase:
		return "phase"
	default:
		return "unknown"
	}
}

// Event is one trace record.
type Event struct {
	Kind    EventKind
	From    SiteID
	To      SiteID
	Size    int
	When    time.Time
	Latency time.Duration // link delay assigned (EventSend only)
	Label   string        // protocol phase label (EventPhase only)
}

// Tracer receives trace events. Implementations must be safe for concurrent
// use; the network calls Trace from many goroutines.
type Tracer interface {
	Trace(Event)
}

// trace is a nil-safe helper.
func trace(t Tracer, e Event) {
	if t != nil {
		t.Trace(e)
	}
}

// Recorder is a Tracer that accumulates events in memory.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Trace appends an event.
func (r *Recorder) Trace(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// CountKind returns the number of recorded events of the given kind.
func (r *Recorder) CountKind(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
