// Package simnet simulates the conventional LAN assumed by the paper
// (Section 2.1): a set of computing sites exchanging packets over links with
// configurable latency, bandwidth, per-packet CPU cost, and probabilistic
// message loss. Links never partition (partitioning failures are outside the
// paper's fault model) but individual packets may be lost; the reliable
// transport layered above (internal/transport) masks loss with
// retransmission.
//
// The simulator is a real-time one: a packet handed to Send is delivered to
// the destination endpoint's receive channel after the configured delay has
// elapsed on the wall clock. Per-link FIFO order is preserved, which matches
// Ethernet behaviour and is what the transport's sequence numbers expect in
// the common case.
//
// The default parameters of PaperConfig are calibrated to the numbers quoted
// in Section 7 and Figure 3 of the paper: roughly 10 µs to traverse a link
// within a site, about 16 ms to send an inter-site packet on the 10 Mbit
// Ethernet of 1987, and fragmentation of large messages into 4 KB packets.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/addr"
)

// SiteID aliases the address package's site identifier.
type SiteID = addr.SiteID

// Config holds the physical parameters of the simulated LAN.
type Config struct {
	// IntraSiteDelay is the one-way delay for a packet whose source and
	// destination are the same site (client <-> local protos traffic).
	IntraSiteDelay time.Duration
	// InterSiteDelay is the one-way propagation plus protocol-stack delay
	// for a packet between two different sites.
	InterSiteDelay time.Duration
	// BytesPerSecond is the inter-site link bandwidth; 0 means infinite.
	// The transmission time len/BytesPerSecond is added to the delay.
	BytesPerSecond int64
	// MaxPacket is the largest payload a single packet may carry. Larger
	// messages must be fragmented by the transport. Zero means unlimited.
	MaxPacket int
	// LossRate is the probability in [0,1) that an inter-site packet is
	// silently dropped. Intra-site packets are never lost.
	LossRate float64
	// SendCPU is the CPU time charged to (and spent by) the sending site
	// for each packet submitted.
	SendCPU time.Duration
	// RecvCPU is the CPU time charged to the receiving site for each
	// packet delivered.
	RecvCPU time.Duration
	// Seed seeds the loss-model random source, making loss reproducible.
	Seed int64
	// QueueLen is the capacity of each endpoint's receive channel.
	QueueLen int
}

// PaperConfig returns parameters calibrated to the 1987 testbed: 10 µs
// intra-site hops, 16 ms inter-site packets, a 10 Mbit/s Ethernet
// (1.25 MB/s), 4 KB fragmentation, no loss.
func PaperConfig() Config {
	return Config{
		IntraSiteDelay: 10 * time.Microsecond,
		InterSiteDelay: 16 * time.Millisecond,
		BytesPerSecond: 1_250_000,
		MaxPacket:      4096,
		LossRate:       0,
		SendCPU:        300 * time.Microsecond,
		RecvCPU:        300 * time.Microsecond,
		QueueLen:       4096,
	}
}

// FastConfig returns near-zero delays, suitable for unit tests where only
// ordering and correctness matter.
func FastConfig() Config {
	return Config{
		IntraSiteDelay: 0,
		InterSiteDelay: 0,
		BytesPerSecond: 0,
		MaxPacket:      4096,
		LossRate:       0,
		SendCPU:        0,
		RecvCPU:        0,
		QueueLen:       4096,
	}
}

// LossyConfig returns FastConfig with the given inter-site loss rate, for
// fault-injection tests of the reliable transport.
func LossyConfig(rate float64, seed int64) Config {
	c := FastConfig()
	c.LossRate = rate
	c.Seed = seed
	return c
}

// Packet is one datagram travelling between sites.
type Packet struct {
	From    SiteID
	To      SiteID
	Payload []byte
}

// Errors returned by Send.
var (
	ErrUnknownSite = errors.New("simnet: destination site not attached")
	ErrTooLarge    = errors.New("simnet: payload exceeds MaxPacket")
	ErrClosed      = errors.New("simnet: endpoint closed")
)

// Stats aggregates network activity counters. All byte counts refer to
// packet payloads.
type Stats struct {
	PacketsSent      uint64
	PacketsDelivered uint64
	PacketsDropped   uint64 // lost by the loss model
	PacketsDiscarded uint64 // destination detached before delivery
	BytesSent        uint64
	BytesDelivered   uint64
	IntraSitePackets uint64
	InterSitePackets uint64
}

// Network is the simulated LAN. It is safe for concurrent use.
type Network struct {
	cfg Config

	mu        sync.Mutex
	endpoints map[SiteID]*Endpoint
	links     map[linkKey]*link // per-directed-link FIFO delivery queues
	rng       *rand.Rand
	stats     Stats
	busy      map[SiteID]time.Duration
	tracer    Tracer
	closed    bool
	done      chan struct{} // closed when the network shuts down
}

type linkKey struct{ from, to SiteID }

// link is a directed FIFO queue between two sites. A dedicated goroutine
// drains it, sleeping until each packet's delivery time, which guarantees
// per-link FIFO delivery regardless of timer scheduling.
type link struct {
	ch chan scheduled
}

type scheduled struct {
	pkt       Packet
	deliverAt time.Time
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	return &Network{
		cfg:       cfg,
		endpoints: make(map[SiteID]*Endpoint),
		links:     make(map[linkKey]*link),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		busy:      make(map[SiteID]time.Duration),
		done:      make(chan struct{}),
	}
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// SetTracer installs an event tracer (may be nil). Used by the Figure 3
// breakdown harness.
func (n *Network) SetTracer(t Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}

// AddSite attaches a site to the network and returns its endpoint. Attaching
// an already-attached site replaces the previous endpoint (the old one stops
// receiving), which models a site recovering with a new incarnation.
func (n *Network) AddSite(id SiteID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[id]; ok {
		old.markClosed()
	}
	ep := &Endpoint{
		id:   id,
		net:  n,
		recv: make(chan Packet, n.cfg.QueueLen),
	}
	n.endpoints[id] = ep
	return ep
}

// RemoveSite detaches a site, modelling a site crash. Packets already in
// flight toward it are discarded at delivery time.
func (n *Network) RemoveSite(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		ep.markClosed()
		delete(n.endpoints, id)
	}
}

// Sites returns the ids of currently attached sites.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]SiteID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

// Stats returns a snapshot of the activity counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the activity counters and per-site busy time.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	n.busy = make(map[SiteID]time.Duration)
}

// BusyTime returns the cumulative CPU time charged to the given site.
func (n *Network) BusyTime(id SiteID) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.busy[id]
}

// chargeBusy adds CPU time to a site's busy counter.
func (n *Network) chargeBusy(id SiteID, d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	n.busy[id] += d
	n.mu.Unlock()
}

// Close detaches all sites and stops the per-link delivery goroutines.
// Packets still queued on links are silently dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for id, ep := range n.endpoints {
		ep.markClosed()
		delete(n.endpoints, id)
	}
	n.closed = true
	close(n.done)
}

// delayFor computes the one-way delay for a packet of the given size.
func (n *Network) delayFor(from, to SiteID, size int) time.Duration {
	if from == to {
		return n.cfg.IntraSiteDelay
	}
	d := n.cfg.InterSiteDelay
	if n.cfg.BytesPerSecond > 0 {
		d += time.Duration(float64(size) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
	}
	return d
}

// send performs the actual transmission for an endpoint.
func (n *Network) send(from SiteID, to SiteID, payload []byte) error {
	if n.cfg.MaxPacket > 0 && len(payload) > n.cfg.MaxPacket {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), n.cfg.MaxPacket)
	}

	interSite := from != to
	delay := n.delayFor(from, to, len(payload))

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.stats.PacketsSent++
	n.stats.BytesSent += uint64(len(payload))
	if interSite {
		n.stats.InterSitePackets++
	} else {
		n.stats.IntraSitePackets++
	}
	n.busy[from] += n.cfg.SendCPU

	// Loss model: only inter-site packets are lost.
	if interSite && n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.PacketsDropped++
		tr := n.tracer
		n.mu.Unlock()
		trace(tr, Event{Kind: EventDrop, From: from, To: to, Size: len(payload), When: time.Now()})
		return nil
	}

	// FIFO per directed link: a single goroutine drains each link's queue
	// in submission order, so a packet is never overtaken by a later one.
	key := linkKey{from, to}
	lk, ok := n.links[key]
	if !ok {
		lk = &link{ch: make(chan scheduled, 4096)}
		n.links[key] = lk
		go n.runLink(lk)
	}
	now := time.Now()
	tr := n.tracer
	n.mu.Unlock()

	trace(tr, Event{Kind: EventSend, From: from, To: to, Size: len(payload), When: now, Latency: delay})

	// Copy the payload so callers may reuse their buffer.
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s := scheduled{
		pkt:       Packet{From: from, To: to, Payload: cp},
		deliverAt: now.Add(delay),
	}
	select {
	case lk.ch <- s:
		return nil
	case <-n.done:
		return ErrClosed
	}
}

// runLink drains one directed link's queue, delivering each packet no
// earlier than its scheduled time and never ahead of an earlier packet.
func (n *Network) runLink(lk *link) {
	for {
		select {
		case s := <-lk.ch:
			if wait := time.Until(s.deliverAt); wait > 0 {
				select {
				case <-time.After(wait):
				case <-n.done:
					return
				}
			}
			n.deliver(s.pkt)
		case <-n.done:
			return
		}
	}
}

// deliver hands a packet to its destination if still attached.
func (n *Network) deliver(pkt Packet) {
	n.mu.Lock()
	ep, ok := n.endpoints[pkt.To]
	if !ok || ep.isClosed() {
		n.stats.PacketsDiscarded++
		tr := n.tracer
		n.mu.Unlock()
		trace(tr, Event{Kind: EventDiscard, From: pkt.From, To: pkt.To, Size: len(pkt.Payload), When: time.Now()})
		return
	}
	n.stats.PacketsDelivered++
	n.stats.BytesDelivered += uint64(len(pkt.Payload))
	n.busy[pkt.To] += n.cfg.RecvCPU
	tr := n.tracer
	n.mu.Unlock()

	trace(tr, Event{Kind: EventDeliver, From: pkt.From, To: pkt.To, Size: len(pkt.Payload), When: time.Now()})

	// Block rather than drop if the receiver is slow: the reliable
	// transport above depends on eventual delivery of non-lost packets.
	select {
	case ep.recv <- pkt:
	default:
		// Queue full: deliver in a goroutine so the network never drops a
		// packet the loss model decided to deliver.
		go func() { ep.recv <- pkt }()
	}
}

// Endpoint is one site's attachment to the network.
type Endpoint struct {
	id   SiteID
	net  *Network
	recv chan Packet

	mu     sync.Mutex
	closed bool
}

// Site returns the endpoint's site id.
func (e *Endpoint) Site() SiteID { return e.id }

// Recv returns the channel on which delivered packets arrive.
func (e *Endpoint) Recv() <-chan Packet { return e.recv }

// Send transmits payload to the destination site. Send spends the
// configured per-packet CPU cost on the caller's goroutine, which is how the
// simulator models sender-side processing load (Section 7's CPU-utilisation
// observations).
func (e *Endpoint) Send(to SiteID, payload []byte) error {
	if e.isClosed() {
		return ErrClosed
	}
	if cpu := e.net.cfg.SendCPU; cpu > 0 {
		time.Sleep(cpu)
	}
	return e.net.send(e.id, to, payload)
}

// Close detaches the endpoint from the network.
func (e *Endpoint) Close() { e.net.RemoveSite(e.id) }

func (e *Endpoint) markClosed() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
