package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/netback"
)

// SiteID aliases the address package's site identifier.
type SiteID = addr.SiteID

// Config holds the physical parameters of the simulated LAN.
type Config struct {
	// IntraSiteDelay is the one-way delay for a packet whose source and
	// destination are the same site (client <-> local protos traffic).
	IntraSiteDelay time.Duration
	// InterSiteDelay is the one-way propagation plus protocol-stack delay
	// for a packet between two different sites.
	InterSiteDelay time.Duration
	// BytesPerSecond is the inter-site link bandwidth; 0 means infinite.
	// The transmission time len/BytesPerSecond is added to the delay.
	BytesPerSecond int64
	// MaxPacket is the largest payload a single packet may carry. Larger
	// messages must be fragmented by the transport. Zero means unlimited.
	MaxPacket int
	// LossRate is the probability in [0,1) that an inter-site packet is
	// silently dropped. Intra-site packets are never lost.
	LossRate float64
	// SendCPU is the CPU time charged to (and spent by) the sending site
	// for each packet submitted.
	SendCPU time.Duration
	// RecvCPU is the CPU time charged to the receiving site for each
	// packet delivered.
	RecvCPU time.Duration
	// Seed seeds the loss-model random source, making loss reproducible.
	Seed int64
	// QueueLen is the capacity of each endpoint's receive channel.
	QueueLen int
}

// PaperConfig returns parameters calibrated to the 1987 testbed: 10 µs
// intra-site hops, 16 ms inter-site packets, a 10 Mbit/s Ethernet
// (1.25 MB/s), 4 KB fragmentation, no loss.
func PaperConfig() Config {
	return Config{
		IntraSiteDelay: 10 * time.Microsecond,
		InterSiteDelay: 16 * time.Millisecond,
		BytesPerSecond: 1_250_000,
		MaxPacket:      4096,
		LossRate:       0,
		SendCPU:        300 * time.Microsecond,
		RecvCPU:        300 * time.Microsecond,
		QueueLen:       4096,
	}
}

// FastConfig returns near-zero delays, suitable for unit tests where only
// ordering and correctness matter.
func FastConfig() Config {
	return Config{
		IntraSiteDelay: 0,
		InterSiteDelay: 0,
		BytesPerSecond: 0,
		MaxPacket:      4096,
		LossRate:       0,
		SendCPU:        0,
		RecvCPU:        0,
		QueueLen:       4096,
	}
}

// LossyConfig returns FastConfig with the given inter-site loss rate, for
// fault-injection tests of the reliable transport.
func LossyConfig(rate float64, seed int64) Config {
	c := FastConfig()
	c.LossRate = rate
	c.Seed = seed
	return c
}

// Packet is one datagram travelling between sites. It aliases the
// backend-neutral packet type, so a simnet endpoint satisfies
// netback.Endpoint directly.
type Packet = netback.Packet

// Errors returned by Send.
var (
	ErrUnknownSite = errors.New("simnet: destination site not attached")
	ErrTooLarge    = errors.New("simnet: payload exceeds MaxPacket")
	ErrClosed      = errors.New("simnet: endpoint closed")
)

// Stats aggregates network activity counters. All byte counts refer to
// packet payloads.
type Stats struct {
	PacketsSent      uint64
	PacketsDelivered uint64
	PacketsDropped   uint64 // lost by the loss model
	PacketsBlocked   uint64 // dropped by an injected partition
	PacketsDiscarded uint64 // destination detached before delivery
	BytesSent        uint64
	BytesDelivered   uint64
	IntraSitePackets uint64
	InterSitePackets uint64
}

// Network is the simulated LAN. It is safe for concurrent use.
type Network struct {
	cfg Config

	mu           sync.Mutex
	endpoints    map[SiteID]*Endpoint
	links        map[linkKey]*link         // per-directed-link FIFO delivery queues
	blocked      map[linkKey]bool          // injected partitions (packets dropped at send)
	paused       map[linkKey]chan struct{} // injected pauses (packets held in order)
	rng          *rand.Rand
	stats        Stats
	busy         map[SiteID]time.Duration
	tracer       Tracer
	linkWatch    map[uint64]func(LinkEvent)
	linkWatchSeq uint64
	closed       bool
	done         chan struct{} // closed when the network shuts down
}

type linkKey struct{ from, to SiteID }

// link is a directed FIFO queue between two sites. A dedicated goroutine
// drains it, sleeping until each packet's delivery time, which guarantees
// per-link FIFO delivery regardless of timer scheduling.
type link struct {
	key linkKey
	ch  chan scheduled
}

type scheduled struct {
	pkt       Packet
	deliverAt time.Time
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	return &Network{
		cfg:       cfg,
		endpoints: make(map[SiteID]*Endpoint),
		links:     make(map[linkKey]*link),
		blocked:   make(map[linkKey]bool),
		paused:    make(map[linkKey]chan struct{}),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		busy:      make(map[SiteID]time.Duration),
		done:      make(chan struct{}),
	}
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// SetTracer installs an event tracer (may be nil). Used by the Figure 3
// breakdown harness.
func (n *Network) SetTracer(t Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}

// AddSite attaches a site to the network and returns its endpoint. Attaching
// an already-attached site replaces the previous endpoint (the old one stops
// receiving), which models a site recovering with a new incarnation.
func (n *Network) AddSite(id SiteID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[id]; ok {
		old.markClosed()
	}
	ep := &Endpoint{
		id:   id,
		net:  n,
		recv: make(chan Packet, n.cfg.QueueLen),
		done: make(chan struct{}),
	}
	n.endpoints[id] = ep
	return ep
}

// Attach connects a site to the network as a netback.Network fabric would:
// it is AddSite under the backend-neutral signature. The epoch is ignored —
// the simulated network needs no connection handshake, and incarnation
// handling lives in the transport's stream epochs.
func (n *Network) Attach(id SiteID, epoch uint64) (netback.Endpoint, error) {
	_ = epoch
	return n.AddSite(id), nil
}

// Profile returns the network's physical parameters in backend-neutral
// form, for deriving the transport configuration.
func (n *Network) Profile() netback.Profile {
	return netback.Profile{MaxPacket: n.cfg.MaxPacket, Delay: n.cfg.InterSiteDelay}
}

// RemoveSite detaches a site, modelling a site crash. Packets already in
// flight toward it are discarded at delivery time.
func (n *Network) RemoveSite(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		ep.markClosed()
		delete(n.endpoints, id)
	}
}

// Sites returns the ids of currently attached sites.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]SiteID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

// Stats returns a snapshot of the activity counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the activity counters and per-site busy time.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	n.busy = make(map[SiteID]time.Duration)
}

// BusyTime returns the cumulative CPU time charged to the given site.
func (n *Network) BusyTime(id SiteID) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.busy[id]
}

// chargeBusy adds CPU time to a site's busy counter.
func (n *Network) chargeBusy(id SiteID, d time.Duration) {
	if d <= 0 {
		return
	}
	n.mu.Lock()
	n.busy[id] += d
	n.mu.Unlock()
}

// Close detaches all sites and stops the per-link delivery goroutines.
// Packets still queued on links are silently dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for id, ep := range n.endpoints {
		ep.markClosed()
		delete(n.endpoints, id)
	}
	n.closed = true
	close(n.done)
}

// ---------------------------------------------------------------------------
// Controllable link faults. The paper's fault model assumes the LAN never
// partitions; these controls deliberately step outside it so tests can drive
// the protocols through coordinator crashes, lost flushes, and recovery.

// LinkEvent reports an injected partition being installed (Up=false) or
// healed (Up=true) on the undirected (A, B) link. Watchers registered with
// WatchLinks receive one event per pair, not per direction. It aliases the
// backend-neutral event type, so the simulated network satisfies
// netback.LinkWatcher.
type LinkEvent = netback.LinkEvent

// The simulated LAN is both a link watcher and a fault injector; partition
// tests written against the netback capabilities run on it unchanged.
var (
	_ netback.FaultInjector = (*Network)(nil)
	_ netback.LinkWatcher   = (*Network)(nil)
)

// WatchLinks registers a callback invoked whenever a partition is injected
// or healed, and returns a function that unregisters it. The protocols
// daemon uses heal events to probe the peer immediately (an instant
// heartbeat) so that the failure detector — and the partition-merge
// machinery above it — reacts to the heal right away instead of waiting out
// a heartbeat round trip, and unregisters on Close so retired daemons are
// not kept alive by the network. Callbacks run outside the network's lock
// but must still be quick.
func (n *Network) WatchLinks(cb func(LinkEvent)) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkWatchSeq++
	id := n.linkWatchSeq
	if n.linkWatch == nil {
		n.linkWatch = make(map[uint64]func(LinkEvent))
	}
	n.linkWatch[id] = cb
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.linkWatch, id)
	}
}

// notifyLinks delivers a link event to every watcher. Caller must NOT hold
// n.mu.
func (n *Network) notifyLinks(ev LinkEvent) {
	n.mu.Lock()
	watchers := make([]func(LinkEvent), 0, len(n.linkWatch))
	for _, w := range n.linkWatch {
		watchers = append(watchers, w)
	}
	n.mu.Unlock()
	for _, w := range watchers {
		w(ev)
	}
}

// Partition cuts both directions of the (a, b) link: packets submitted while
// the partition is in place are silently dropped, exactly as if the wire
// were unplugged. Packets already in flight still arrive. The reliable
// transport retransmits across the outage, so Heal lets traffic resume.
func (n *Network) Partition(a, b SiteID) {
	n.mu.Lock()
	n.blocked[linkKey{a, b}] = true
	n.blocked[linkKey{b, a}] = true
	n.mu.Unlock()
	n.notifyLinks(LinkEvent{A: a, B: b, Up: false})
}

// Heal removes the partition between a and b.
func (n *Network) Heal(a, b SiteID) {
	n.mu.Lock()
	_, was := n.blocked[linkKey{a, b}]
	delete(n.blocked, linkKey{a, b})
	delete(n.blocked, linkKey{b, a})
	n.mu.Unlock()
	if was {
		n.notifyLinks(LinkEvent{A: a, B: b, Up: true})
	}
}

// HealAll removes every injected partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	healed := make([]linkKey, 0, len(n.blocked))
	for k := range n.blocked {
		if k.from < k.to { // one event per undirected pair
			healed = append(healed, k)
		}
	}
	n.blocked = make(map[linkKey]bool)
	n.mu.Unlock()
	for _, k := range healed {
		n.notifyLinks(LinkEvent{A: k.from, B: k.to, Up: true})
	}
}

// PauseLink suspends delivery on the directed link from → to: packets
// already in flight and packets sent while paused are held, in order, and
// delivered when the link resumes. Unlike Partition nothing is lost — pause
// models a congested or slow link rather than a cut one, and is the tool
// for freezing a protocol at a chosen point (e.g. a coordinator's commit).
func (n *Network) PauseLink(from, to SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.paused[linkKey{from, to}]; !ok {
		n.paused[linkKey{from, to}] = make(chan struct{})
	}
}

// ResumeLink releases a paused directed link; held packets deliver in order.
func (n *Network) ResumeLink(from, to SiteID) {
	n.mu.Lock()
	gate, ok := n.paused[linkKey{from, to}]
	if ok {
		delete(n.paused, linkKey{from, to})
	}
	n.mu.Unlock()
	if ok {
		close(gate)
	}
}

// ResumeAll releases every paused link.
func (n *Network) ResumeAll() {
	n.mu.Lock()
	gates := make([]chan struct{}, 0, len(n.paused))
	for _, g := range n.paused {
		gates = append(gates, g)
	}
	n.paused = make(map[linkKey]chan struct{})
	n.mu.Unlock()
	for _, g := range gates {
		close(g)
	}
}

// waitLinkResumed blocks while the directed link is paused. Returns early
// when the network shuts down.
func (n *Network) waitLinkResumed(key linkKey) {
	for {
		n.mu.Lock()
		gate := n.paused[key]
		n.mu.Unlock()
		if gate == nil {
			return
		}
		select {
		case <-gate:
		case <-n.done:
			return
		}
	}
}

// delayFor computes the one-way delay for a packet of the given size.
func (n *Network) delayFor(from, to SiteID, size int) time.Duration {
	if from == to {
		return n.cfg.IntraSiteDelay
	}
	d := n.cfg.InterSiteDelay
	if n.cfg.BytesPerSecond > 0 {
		d += time.Duration(float64(size) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
	}
	return d
}

// send performs the actual transmission for an endpoint.
func (n *Network) send(from SiteID, to SiteID, payload []byte) error {
	if n.cfg.MaxPacket > 0 && len(payload) > n.cfg.MaxPacket {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), n.cfg.MaxPacket)
	}

	interSite := from != to
	delay := n.delayFor(from, to, len(payload))

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.stats.PacketsSent++
	n.stats.BytesSent += uint64(len(payload))
	if interSite {
		n.stats.InterSitePackets++
	} else {
		n.stats.IntraSitePackets++
	}
	n.busy[from] += n.cfg.SendCPU

	// Injected partition: the wire is cut, the packet vanishes.
	if n.blocked[linkKey{from, to}] {
		n.stats.PacketsBlocked++
		tr := n.tracer
		n.mu.Unlock()
		trace(tr, Event{Kind: EventDrop, From: from, To: to, Size: len(payload), When: time.Now()})
		return nil
	}

	// Loss model: only inter-site packets are lost.
	if interSite && n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.PacketsDropped++
		tr := n.tracer
		n.mu.Unlock()
		trace(tr, Event{Kind: EventDrop, From: from, To: to, Size: len(payload), When: time.Now()})
		return nil
	}

	// FIFO per directed link: a single goroutine drains each link's queue
	// in submission order, so a packet is never overtaken by a later one.
	key := linkKey{from, to}
	lk, ok := n.links[key]
	if !ok {
		lk = &link{key: key, ch: make(chan scheduled, 4096)}
		n.links[key] = lk
		go n.runLink(lk)
	}
	now := time.Now()
	tr := n.tracer
	n.mu.Unlock()

	trace(tr, Event{Kind: EventSend, From: from, To: to, Size: len(payload), When: now, Latency: delay})

	// Copy the payload so callers may reuse their buffer.
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s := scheduled{
		pkt:       Packet{From: from, To: to, Payload: cp},
		deliverAt: now.Add(delay),
	}
	select {
	case lk.ch <- s:
		return nil
	case <-n.done:
		return ErrClosed
	}
}

// runLink drains one directed link's queue, delivering each packet no
// earlier than its scheduled time and never ahead of an earlier packet.
func (n *Network) runLink(lk *link) {
	for {
		select {
		case s := <-lk.ch:
			if wait := time.Until(s.deliverAt); wait > 0 {
				select {
				case <-time.After(wait):
				case <-n.done:
					return
				}
			}
			n.waitLinkResumed(lk.key)
			n.deliver(s.pkt)
		case <-n.done:
			return
		}
	}
}

// deliver hands a packet to its destination if still attached.
func (n *Network) deliver(pkt Packet) {
	n.mu.Lock()
	ep, ok := n.endpoints[pkt.To]
	if !ok || ep.isClosed() {
		n.stats.PacketsDiscarded++
		tr := n.tracer
		n.mu.Unlock()
		trace(tr, Event{Kind: EventDiscard, From: pkt.From, To: pkt.To, Size: len(pkt.Payload), When: time.Now()})
		return
	}
	n.stats.PacketsDelivered++
	n.stats.BytesDelivered += uint64(len(pkt.Payload))
	n.busy[pkt.To] += n.cfg.RecvCPU
	tr := n.tracer
	n.mu.Unlock()

	trace(tr, Event{Kind: EventDeliver, From: pkt.From, To: pkt.To, Size: len(pkt.Payload), When: time.Now()})

	// Block rather than drop if the receiver is slow: the reliable
	// transport above depends on eventual delivery of non-lost packets.
	// Blocking must happen here, on the link goroutine, so a later packet
	// can never overtake this one — delivering from a spawned goroutine
	// would break the per-link FIFO guarantee the transport's sequence
	// numbers rely on (and leak the goroutine if the endpoint detaches).
	select {
	case ep.recv <- pkt:
	case <-ep.done:
		// The endpoint detached while the delivery was blocked: roll the
		// optimistic delivery accounting back so the packet is counted as
		// discarded, not as both delivered and discarded.
		n.mu.Lock()
		n.stats.PacketsDelivered--
		n.stats.BytesDelivered -= uint64(len(pkt.Payload))
		n.busy[pkt.To] -= n.cfg.RecvCPU
		n.stats.PacketsDiscarded++
		n.mu.Unlock()
	case <-n.done:
	}
}

// Endpoint is one site's attachment to the network.
type Endpoint struct {
	id   SiteID
	net  *Network
	recv chan Packet
	done chan struct{} // closed when the endpoint detaches

	mu     sync.Mutex
	closed bool
}

// Site returns the endpoint's site id.
func (e *Endpoint) Site() SiteID { return e.id }

// Recv returns the channel on which delivered packets arrive.
func (e *Endpoint) Recv() <-chan Packet { return e.recv }

// Send transmits payload to the destination site. Send spends the
// configured per-packet CPU cost on the caller's goroutine, which is how the
// simulator models sender-side processing load (Section 7's CPU-utilisation
// observations).
func (e *Endpoint) Send(to SiteID, payload []byte) error {
	if e.isClosed() {
		return ErrClosed
	}
	if cpu := e.net.cfg.SendCPU; cpu > 0 {
		time.Sleep(cpu)
	}
	return e.net.send(e.id, to, payload)
}

// Close detaches the endpoint from the network. Only this endpoint is
// detached: if the site id has already been re-attached (a restart replaced
// this endpoint), the successor endpoint keeps receiving.
func (e *Endpoint) Close() {
	e.net.mu.Lock()
	if cur, ok := e.net.endpoints[e.id]; ok && cur == e {
		delete(e.net.endpoints, e.id)
	}
	e.net.mu.Unlock()
	e.markClosed()
}

func (e *Endpoint) markClosed() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
	e.mu.Unlock()
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
