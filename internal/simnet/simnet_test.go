package simnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func recvWithTimeout(t *testing.T, ep *Endpoint, d time.Duration) Packet {
	t.Helper()
	select {
	case p := <-ep.Recv():
		return p
	case <-time.After(d):
		t.Fatalf("timed out waiting for packet at site %d", ep.Site())
		return Packet{}
	}
}

func TestBasicDelivery(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	if err := a.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvWithTimeout(t, b, time.Second)
	if string(p.Payload) != "hello" || p.From != 1 || p.To != 2 {
		t.Errorf("packet = %+v", p)
	}
	st := n.Stats()
	if st.PacketsSent != 1 || st.PacketsDelivered != 1 || st.BytesSent != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.InterSitePackets != 1 || st.IntraSitePackets != 0 {
		t.Errorf("site packet classification wrong: %+v", st)
	}
}

func TestIntraSiteDelivery(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	if err := a.Send(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	p := recvWithTimeout(t, a, time.Second)
	if string(p.Payload) != "self" {
		t.Errorf("payload = %q", p.Payload)
	}
	if n.Stats().IntraSitePackets != 1 {
		t.Errorf("intra-site packet not counted: %+v", n.Stats())
	}
}

func TestSendToUnknownSiteIsDiscarded(t *testing.T) {
	// The destination not being attached is detected at delivery time (a
	// real LAN cannot tell at send time); the packet is discarded.
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	if err := a.Send(99, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if n.Stats().PacketsDiscarded == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("packet to unknown site not discarded: %+v", n.Stats())
}

func TestPayloadTooLarge(t *testing.T) {
	cfg := FastConfig()
	cfg.MaxPacket = 16
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	n.AddSite(2)
	if err := a.Send(2, make([]byte, 17)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if err := a.Send(2, make([]byte, 16)); err != nil {
		t.Errorf("err = %v for max-size payload", err)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	n.AddSite(2)
	a.Close()
	if err := a.Send(2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestRemoveSiteDiscardsInFlight(t *testing.T) {
	cfg := FastConfig()
	cfg.InterSiteDelay = 30 * time.Millisecond
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	n.AddSite(2)
	if err := a.Send(2, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	n.RemoveSite(2)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.Stats().PacketsDiscarded == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("in-flight packet to crashed site not discarded: %+v", n.Stats())
}

func TestPerLinkFIFO(t *testing.T) {
	cfg := FastConfig()
	cfg.InterSiteDelay = time.Millisecond
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	const k = 50
	for i := 0; i < k; i++ {
		if err := a.Send(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		p := recvWithTimeout(t, b, time.Second)
		if int(p.Payload[0]) != i {
			t.Fatalf("out of order delivery: got %d at position %d", p.Payload[0], i)
		}
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	buf := []byte{1, 2, 3}
	if err := a.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	p := recvWithTimeout(t, b, time.Second)
	if p.Payload[0] != 1 {
		t.Error("network aliased the caller's buffer")
	}
}

func TestLossModel(t *testing.T) {
	cfg := LossyConfig(0.5, 7)
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	n.AddSite(2)
	const total = 400
	for i := 0; i < total; i++ {
		if err := a.Send(2, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.PacketsDropped == 0 || st.PacketsDropped == total {
		t.Errorf("loss model inactive or total: dropped %d of %d", st.PacketsDropped, total)
	}
	// With rate 0.5 and 400 packets the drop count should be within a wide
	// tolerance of 200.
	if st.PacketsDropped < 120 || st.PacketsDropped > 280 {
		t.Errorf("drop count %d far from expectation 200", st.PacketsDropped)
	}
	// Intra-site packets are never dropped.
	n.ResetStats()
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if d := n.Stats().PacketsDropped; d != 0 {
		t.Errorf("intra-site packets dropped: %d", d)
	}
}

func TestLossIsReproducible(t *testing.T) {
	run := func() uint64 {
		n := New(LossyConfig(0.3, 42))
		defer n.Close()
		a := n.AddSite(1)
		n.AddSite(2)
		for i := 0; i < 200; i++ {
			_ = a.Send(2, []byte{1})
		}
		return n.Stats().PacketsDropped
	}
	if run() != run() {
		t.Error("same seed produced different loss patterns")
	}
}

func TestInterSiteDelayApplied(t *testing.T) {
	cfg := FastConfig()
	cfg.InterSiteDelay = 50 * time.Millisecond
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	start := time.Now()
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("packet arrived after %v, expected >= ~50ms", elapsed)
	}
}

func TestBandwidthAddsTransmissionTime(t *testing.T) {
	cfg := FastConfig()
	cfg.BytesPerSecond = 100_000 // 10 KB payload -> 100 ms
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	start := time.Now()
	if err := a.Send(2, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, 2*time.Second)
	// 4096 bytes at 100 KB/s is ~41 ms.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("transmission time not charged, elapsed = %v", elapsed)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	cfg := FastConfig()
	cfg.SendCPU = time.Millisecond
	cfg.RecvCPU = 2 * time.Millisecond
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	for i := 0; i < 5; i++ {
		if err := a.Send(2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		recvWithTimeout(t, b, time.Second)
	}
	if got := n.BusyTime(1); got != 5*time.Millisecond {
		t.Errorf("sender busy time = %v, want 5ms", got)
	}
	if got := n.BusyTime(2); got != 10*time.Millisecond {
		t.Errorf("receiver busy time = %v, want 10ms", got)
	}
	n.ResetStats()
	if n.BusyTime(1) != 0 || n.Stats().PacketsSent != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestRecorderTracing(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	rec := NewRecorder()
	n.SetTracer(rec)
	a := n.AddSite(1)
	b := n.AddSite(2)
	if err := a.Send(2, []byte("traced")); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, b, time.Second)
	// Wait briefly for the deliver event to be recorded.
	time.Sleep(10 * time.Millisecond)
	if rec.CountKind(EventSend) != 1 {
		t.Errorf("send events = %d", rec.CountKind(EventSend))
	}
	if rec.CountKind(EventDeliver) != 1 {
		t.Errorf("deliver events = %d", rec.CountKind(EventDeliver))
	}
	evs := rec.Events()
	if len(evs) < 2 || evs[0].Kind != EventSend || evs[0].Size != 6 {
		t.Errorf("events = %+v", evs)
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventSend: "send", EventDeliver: "deliver", EventDrop: "drop",
		EventDiscard: "discard", EventPhase: "phase", EventKind(99): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSitesAndReattach(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	n.AddSite(1)
	n.AddSite(2)
	if len(n.Sites()) != 2 {
		t.Errorf("Sites = %v", n.Sites())
	}
	// Re-attaching models recovery: the old endpoint stops working.
	old := n.AddSite(3)
	renewed := n.AddSite(3)
	if err := old.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("old endpoint still sends after reattach: %v", err)
	}
	if err := renewed.Send(1, []byte("x")); err != nil {
		t.Errorf("new endpoint cannot send: %v", err)
	}
	if len(n.Sites()) != 3 {
		t.Errorf("Sites after reattach = %v", n.Sites())
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	dst := n.AddSite(100)
	const senders = 8
	const per = 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := n.AddSite(SiteID(s + 1))
		wg.Add(1)
		go func(ep *Endpoint, s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(100, []byte(fmt.Sprintf("%d-%d", s, i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep, s)
	}
	wg.Wait()
	got := 0
	timeout := time.After(5 * time.Second)
	for got < senders*per {
		select {
		case <-dst.Recv():
			got++
		case <-timeout:
			t.Fatalf("received %d of %d packets", got, senders*per)
		}
	}
	if st := n.Stats(); st.PacketsDelivered != senders*per {
		t.Errorf("delivered = %d", st.PacketsDelivered)
	}
}

func TestNetworkCloseStopsTraffic(t *testing.T) {
	n := New(FastConfig())
	a := n.AddSite(1)
	n.AddSite(2)
	n.Close()
	if err := a.Send(2, []byte("x")); err == nil {
		t.Error("send after network close succeeded")
	}
}

func TestQueueOverflowPreservesFIFO(t *testing.T) {
	// A receive queue far smaller than the burst forces most deliveries
	// through the queue-full fallback; they must still arrive in send order
	// (the transport's sequence numbers depend on per-link FIFO).
	cfg := FastConfig()
	cfg.QueueLen = 2
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		p := recvWithTimeout(t, b, 5*time.Second)
		if int(p.Payload[0]) != i {
			t.Fatalf("FIFO violated under queue overflow: got %d at position %d", p.Payload[0], i)
		}
	}
}

func TestDetachUnblocksOverflowedDelivery(t *testing.T) {
	// With the receive queue full, delivery blocks on the link goroutine;
	// detaching the endpoint must release it (and discard the packets)
	// rather than leaving the goroutine blocked forever.
	cfg := FastConfig()
	cfg.QueueLen = 1
	n := New(cfg)
	defer n.Close()
	a := n.AddSite(1)
	n.AddSite(2)
	// One packet fills the queue, the second blocks the link goroutine, the
	// third waits behind it.
	for i := 0; i < 3; i++ {
		if err := a.Send(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && n.Stats().PacketsDelivered < 2 {
		time.Sleep(time.Millisecond)
	}
	n.RemoveSite(2)
	for time.Now().Before(deadline) {
		if n.Stats().PacketsDiscarded >= 2 {
			// Exactly one packet actually reached the receive queue; the
			// blocked one must have had its optimistic delivery accounting
			// rolled back, not be counted as both delivered and discarded.
			if d := n.Stats().PacketsDelivered; d != 1 {
				t.Errorf("PacketsDelivered = %d after detach, want 1", d)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("blocked deliveries not released by detach: %+v", n.Stats())
}

func TestPartitionBlocksUntilHealed(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	n.Partition(1, 2)
	if err := a.Send(2, []byte("cut")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, []byte("cut-back")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-b.Recv():
		t.Fatalf("packet crossed a partition: %+v", p)
	case <-time.After(50 * time.Millisecond):
	}
	if st := n.Stats(); st.PacketsBlocked != 2 {
		t.Errorf("PacketsBlocked = %d, want 2", st.PacketsBlocked)
	}
	n.Heal(1, 2)
	if err := a.Send(2, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if p := recvWithTimeout(t, b, time.Second); string(p.Payload) != "ok" {
		t.Errorf("post-heal payload = %q", p.Payload)
	}
	// HealAll clears every cut.
	n.Partition(1, 2)
	n.HealAll()
	if err := a.Send(2, []byte("ok2")); err != nil {
		t.Fatal(err)
	}
	if p := recvWithTimeout(t, b, time.Second); string(p.Payload) != "ok2" {
		t.Errorf("post-HealAll payload = %q", p.Payload)
	}
}

func TestPauseLinkHoldsPacketsInOrder(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	a := n.AddSite(1)
	b := n.AddSite(2)
	n.PauseLink(1, 2)
	const k = 5
	for i := 0; i < k; i++ {
		if err := a.Send(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case p := <-b.Recv():
		t.Fatalf("packet crossed a paused link: %+v", p)
	case <-time.After(50 * time.Millisecond):
	}
	// Pause is directional: the reverse link still delivers.
	if err := b.Send(1, []byte{99}); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, a, time.Second)
	n.ResumeLink(1, 2)
	for i := 0; i < k; i++ {
		p := recvWithTimeout(t, b, time.Second)
		if int(p.Payload[0]) != i {
			t.Fatalf("held packets resumed out of order: got %d at position %d", p.Payload[0], i)
		}
	}
	// ResumeAll releases any remaining pause.
	n.PauseLink(1, 2)
	if err := a.Send(2, []byte{7}); err != nil {
		t.Fatal(err)
	}
	n.ResumeAll()
	if p := recvWithTimeout(t, b, time.Second); p.Payload[0] != 7 {
		t.Errorf("post-ResumeAll payload = %v", p.Payload)
	}
}

func TestPaperConfigValues(t *testing.T) {
	c := PaperConfig()
	if c.InterSiteDelay != 16*time.Millisecond {
		t.Errorf("InterSiteDelay = %v", c.InterSiteDelay)
	}
	if c.IntraSiteDelay != 10*time.Microsecond {
		t.Errorf("IntraSiteDelay = %v", c.IntraSiteDelay)
	}
	if c.MaxPacket != 4096 {
		t.Errorf("MaxPacket = %d", c.MaxPacket)
	}
	if c.BytesPerSecond != 1_250_000 {
		t.Errorf("BytesPerSecond = %d", c.BytesPerSecond)
	}
}

func TestWatchLinksReportsPartitionAndHeal(t *testing.T) {
	n := New(FastConfig())
	defer n.Close()
	var mu sync.Mutex
	var evs []LinkEvent
	n.WatchLinks(func(ev LinkEvent) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})

	n.Partition(1, 2)
	n.Heal(1, 2)
	n.Heal(1, 2) // healing a healthy link is not an event
	n.Partition(3, 4)
	n.Partition(5, 6)
	n.HealAll()

	mu.Lock()
	defer mu.Unlock()
	want := []LinkEvent{
		{A: 1, B: 2, Up: false},
		{A: 1, B: 2, Up: true},
		{A: 3, B: 4, Up: false},
		{A: 5, B: 6, Up: false},
	}
	if len(evs) < 4 {
		t.Fatalf("events = %v", evs)
	}
	for i, w := range want {
		if evs[i] != w {
			t.Errorf("event %d = %v, want %v", i, evs[i], w)
		}
	}
	// HealAll reports one Up event per partitioned pair, in any order.
	up := map[LinkEvent]bool{}
	for _, ev := range evs[4:] {
		up[ev] = true
	}
	if len(evs[4:]) != 2 || !up[LinkEvent{A: 3, B: 4, Up: true}] || !up[LinkEvent{A: 5, B: 6, Up: true}] {
		t.Errorf("HealAll events = %v", evs[4:])
	}
}
