// Package simnet simulates the conventional LAN assumed by the paper
// (Section 2.1): a set of computing sites exchanging packets over links with
// configurable latency, bandwidth, per-packet CPU cost, and probabilistic
// message loss. Individual packets may be lost; the reliable transport
// layered above (internal/transport) masks loss with retransmission. Links
// never partition spontaneously (partitioning failures are outside the
// paper's fault model), but fault-injection tests may cut or pause links
// deliberately with Partition and PauseLink to drive the protocols through
// failure scenarios.
//
// The simulator is a real-time one: a packet handed to Send is delivered to
// the destination endpoint's receive channel after the configured delay has
// elapsed on the wall clock. Per-link FIFO order is preserved, which matches
// Ethernet behaviour and is what the transport's sequence numbers expect in
// the common case.
//
// The default parameters of PaperConfig are calibrated to the numbers quoted
// in Section 7 and Figure 3 of the paper: roughly 10 µs to traverse a link
// within a site, about 16 ms to send an inter-site packet on the 10 Mbit
// Ethernet of 1987, and fragmentation of large messages into 4 KB packets.
package simnet
