// Package vclock implements the vector timestamps used by the CBCAST
// protocol (Section 3.1 of the paper). Each member of a process group keeps
// a vector clock with one entry per member rank in the current view; a
// CBCAST carries the sender's timestamp, and a receiver delays delivery
// until the message is causally deliverable.
package vclock
