package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock indexed by member rank. The zero value (nil) is a
// valid all-zeros clock of length zero.
type VC []uint64

// New returns an all-zero clock with n entries.
func New(n int) VC { return make(VC, n) }

// Len returns the number of entries.
func (v VC) Len() int { return len(v) }

// Get returns entry i, treating out-of-range indices as zero so that clocks
// from slightly shorter views compare sensibly during view changes.
func (v VC) Get(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Clone returns a copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Resize returns a clock with exactly n entries, preserving existing values
// and zero-filling new ones. The receiver is not modified.
func (v VC) Resize(n int) VC {
	out := make(VC, n)
	copy(out, v)
	return out
}

// Tick increments entry i in place, growing the clock if necessary, and
// returns the clock.
func (v *VC) Tick(i int) VC {
	if i >= len(*v) {
		*v = v.Resize(i + 1)
	}
	(*v)[i]++
	return *v
}

// Merge sets each entry of v to the max of v and o, growing v if needed, and
// returns the merged clock.
func (v *VC) Merge(o VC) VC {
	if len(o) > len(*v) {
		*v = v.Resize(len(o))
	}
	for i, x := range o {
		if x > (*v)[i] {
			(*v)[i] = x
		}
	}
	return *v
}

// Equal reports whether v and o represent the same timestamp (trailing
// zeros ignored).
func (v VC) Equal(o VC) bool {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if v.Get(i) != o.Get(i) {
			return false
		}
	}
	return true
}

// LE reports whether v ≤ o pointwise (v happened-before-or-equal o).
func (v VC) LE(o VC) bool {
	n := len(v)
	if len(o) > n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if v.Get(i) > o.Get(i) {
			return false
		}
	}
	return true
}

// Before reports whether v happened strictly before o: v ≤ o and v ≠ o.
func (v VC) Before(o VC) bool { return v.LE(o) && !v.Equal(o) }

// Concurrent reports whether neither clock happened before the other.
func (v VC) Concurrent(o VC) bool { return !v.LE(o) && !o.LE(v) }

// Deliverable implements the CBCAST delivery condition. A message stamped
// with timestamp ts by the sender at rank senderRank is deliverable at a
// process whose current clock is v when:
//
//	ts[senderRank] == v[senderRank] + 1          (next message from sender)
//	ts[k] <= v[k] for every k != senderRank      (all causal predecessors seen)
//
// This is the standard causal-delivery predicate; the sender increments its
// own entry immediately before sending.
func (v VC) Deliverable(ts VC, senderRank int) bool {
	n := len(v)
	if len(ts) > n {
		n = len(ts)
	}
	for k := 0; k < n; k++ {
		tk, vk := ts.Get(k), v.Get(k)
		if k == senderRank {
			if tk != vk+1 {
				return false
			}
			continue
		}
		if tk > vk {
			return false
		}
	}
	return true
}

// String renders the clock as "[a b c]".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Encode flattens the clock for inclusion in a message field.
func (v VC) Encode() []byte {
	return v.AppendEncode(make([]byte, 0, len(v)*8))
}

// AppendEncode appends the wire form of v to dst and returns the extended
// slice. Given sufficient capacity it does not allocate, which is what the
// multicast hot path relies on when stamping packets from pooled scratch.
func (v VC) AppendEncode(dst []byte) []byte {
	for _, x := range v {
		dst = append(dst,
			byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
			byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return dst
}

// Decode parses a clock previously produced by Encode. Trailing partial
// entries are an error.
func Decode(b []byte) (VC, error) {
	return DecodeInto(nil, b)
}

// DecodeInto parses a clock from b into dst's storage, growing dst only when
// its capacity is insufficient, and returns the decoded clock. Decoding a
// stream of same-width timestamps into a recycled clock does not allocate.
func DecodeInto(dst VC, b []byte) (VC, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("vclock: encoding length %d is not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if cap(dst) < n {
		dst = make(VC, n)
	}
	dst = dst[:n]
	for i := range dst {
		off := i * 8
		dst[i] = uint64(b[off])<<56 | uint64(b[off+1])<<48 | uint64(b[off+2])<<40 | uint64(b[off+3])<<32 |
			uint64(b[off+4])<<24 | uint64(b[off+5])<<16 | uint64(b[off+6])<<8 | uint64(b[off+7])
	}
	return dst, nil
}
