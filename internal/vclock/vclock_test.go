package vclock

import (
	"testing"
	"testing/quick"
)

func TestNewAndGet(t *testing.T) {
	v := New(3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 3; i++ {
		if v.Get(i) != 0 {
			t.Errorf("Get(%d) = %d", i, v.Get(i))
		}
	}
	if v.Get(-1) != 0 || v.Get(100) != 0 {
		t.Error("out-of-range Get should be zero")
	}
}

func TestTickAndMerge(t *testing.T) {
	v := New(2)
	v.Tick(0)
	v.Tick(0)
	v.Tick(1)
	if v[0] != 2 || v[1] != 1 {
		t.Errorf("after ticks: %v", v)
	}
	// Tick past the end grows the clock.
	v.Tick(4)
	if v.Len() != 5 || v[4] != 1 {
		t.Errorf("Tick growth: %v", v)
	}

	o := VC{5, 0, 3}
	v.Merge(o)
	if v[0] != 5 || v[1] != 1 || v[2] != 3 || v[4] != 1 {
		t.Errorf("after merge: %v", v)
	}
	// Merge a longer clock into a shorter one.
	s := New(1)
	s.Merge(VC{0, 0, 7})
	if s.Len() != 3 || s[2] != 7 {
		t.Errorf("merge growth: %v", s)
	}
}

func TestCloneAndResize(t *testing.T) {
	v := VC{1, 2}
	c := v.Clone()
	c.Tick(0)
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if VC(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
	r := v.Resize(4)
	if r.Len() != 4 || r[0] != 1 || r[3] != 0 {
		t.Errorf("Resize = %v", r)
	}
	short := v.Resize(1)
	if short.Len() != 1 || short[0] != 1 {
		t.Errorf("Resize shrink = %v", short)
	}
}

func TestComparisons(t *testing.T) {
	a := VC{1, 2, 0}
	b := VC{1, 2}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("trailing zeros should compare equal")
	}
	c := VC{2, 2, 0}
	if !a.Before(c) || c.Before(a) {
		t.Error("Before wrong")
	}
	if !a.LE(c) || c.LE(a) {
		t.Error("LE wrong")
	}
	d := VC{0, 3}
	if !a.Concurrent(d) || !d.Concurrent(a) {
		t.Error("Concurrent wrong")
	}
	if a.Concurrent(c) {
		t.Error("ordered clocks reported concurrent")
	}
}

func TestDeliverable(t *testing.T) {
	// Receiver has seen one message from rank 0 and none from rank 1.
	recv := VC{1, 0}
	// Next message from rank 0.
	if !recv.Deliverable(VC{2, 0}, 0) {
		t.Error("next message from sender should be deliverable")
	}
	// A message from rank 0 that skips ahead is not deliverable.
	if recv.Deliverable(VC{3, 0}, 0) {
		t.Error("gap in sender sequence should block delivery")
	}
	// Duplicate / old message is not deliverable.
	if recv.Deliverable(VC{1, 0}, 0) {
		t.Error("old message should not be deliverable")
	}
	// A message from rank 1 that causally depends on an unseen message from
	// rank 0 is not deliverable.
	if recv.Deliverable(VC{2, 1}, 1) {
		t.Error("message with unseen causal predecessor should block")
	}
	// Once the dependency is satisfied it becomes deliverable.
	recv2 := VC{2, 0}
	if !recv2.Deliverable(VC{2, 1}, 1) {
		t.Error("message should be deliverable once predecessors seen")
	}
}

func TestDeliverableAcrossDifferentLengths(t *testing.T) {
	// Receiver joined later and has a shorter clock than the sender.
	recv := VC{0}
	ts := VC{1, 0, 0}
	if !recv.Deliverable(ts, 0) {
		t.Error("length mismatch should not block a deliverable message")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 2, 3}).String(); got != "[1 2 3]" {
		t.Errorf("String = %q", got)
	}
	if got := (VC{}).String(); got != "[]" {
		t.Errorf("empty String = %q", got)
	}
}

func TestEncodeDecode(t *testing.T) {
	v := VC{0, 1, 1 << 40, ^uint64(0)}
	got, err := Decode(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) || got.Len() != v.Len() {
		t.Errorf("round trip = %v, want %v", got, v)
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("Decode accepted a truncated encoding")
	}
	empty, err := Decode(nil)
	if err != nil || empty.Len() != 0 {
		t.Error("Decode(nil) should give an empty clock")
	}
}

// Property: Merge is an upper bound of both inputs.
func TestMergeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		va := make(VC, len(a))
		for i, x := range a {
			va[i] = uint64(x)
		}
		vb := make(VC, len(b))
		for i, x := range b {
			vb[i] = uint64(x)
		}
		m := va.Clone()
		(&m).Merge(vb)
		return va.LE(m) && vb.LE(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encode/decode round-trips.
func TestEncodeProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		v := VC(vals)
		got, err := Decode(v.Encode())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LE is a partial order (reflexive, antisymmetric up to Equal,
// transitive on random triples).
func TestLEPartialOrderProperty(t *testing.T) {
	toVC := func(xs []uint8) VC {
		v := make(VC, len(xs))
		for i, x := range xs {
			v[i] = uint64(x % 4)
		}
		return v
	}
	f := func(a, b, c []uint8) bool {
		va, vb, vc := toVC(a), toVC(b), toVC(c)
		if !va.LE(va) {
			return false
		}
		if va.LE(vb) && vb.LE(va) && !va.Equal(vb) {
			return false
		}
		if va.LE(vb) && vb.LE(vc) && !va.LE(vc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
