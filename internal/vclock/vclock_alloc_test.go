package vclock

import (
	"bytes"
	"testing"
)

func TestAppendEncodeMatchesEncode(t *testing.T) {
	v := VC{1, 1 << 40, 0, 7}
	prefix := []byte{0xAA}
	got := v.AppendEncode(append([]byte(nil), prefix...))
	if !bytes.Equal(got[:1], prefix) {
		t.Error("AppendEncode clobbered the prefix")
	}
	if !bytes.Equal(got[1:], v.Encode()) {
		t.Errorf("AppendEncode = %x, Encode = %x", got[1:], v.Encode())
	}
}

func TestDecodeIntoReusesStorage(t *testing.T) {
	v := VC{3, 2, 1}
	enc := v.Encode()
	dst := make(VC, 0, 8)
	out, err := DecodeInto(dst, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(v) {
		t.Errorf("DecodeInto = %v, want %v", out, v)
	}
	if &out[0] != &dst[:1][0] {
		t.Error("DecodeInto did not reuse the provided storage")
	}
	// Too-small capacity grows.
	small := make(VC, 0, 1)
	out, err = DecodeInto(small, enc)
	if err != nil || !out.Equal(v) {
		t.Errorf("DecodeInto with small scratch = %v, %v", out, err)
	}
	// Bad length still rejected.
	if _, err := DecodeInto(nil, enc[:5]); err == nil {
		t.Error("DecodeInto accepted a truncated encoding")
	}
}

// TestEncodeDecodeZeroAllocs pins the allocation-free property of the
// append-into-scratch variants the CBCAST stamping path depends on.
func TestEncodeDecodeZeroAllocs(t *testing.T) {
	v := VC{5, 4, 3, 2, 1}
	scratch := make([]byte, 0, len(v)*8)
	dst := make(VC, 0, len(v))
	allocs := testing.AllocsPerRun(200, func() {
		b := v.AppendEncode(scratch[:0])
		out, err := DecodeInto(dst, b)
		if err != nil {
			panic(err)
		}
		dst = out[:0]
	})
	if allocs != 0 {
		t.Errorf("encode/decode round trip allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	v := VC{1, 2, 3, 4, 5, 6, 7, 8}
	scratch := make([]byte, 0, len(v)*8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scratch = v.AppendEncode(scratch[:0])
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	v := VC{1, 2, 3, 4, 5, 6, 7, 8}
	enc := v.Encode()
	dst := make(VC, 0, len(v))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := DecodeInto(dst, enc)
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}
