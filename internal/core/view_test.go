package core

import (
	"strings"
	"testing"

	"repro/internal/addr"
)

func p(site addr.SiteID, id uint32) addr.Address { return addr.NewProcess(site, 0, id) }

func testView() View {
	return View{
		Group:   addr.NewGroup(1, 0, 100),
		Name:    "twenty",
		ID:      1,
		Members: []addr.Address{p(1, 1), p(2, 2), p(3, 3)},
	}
}

func TestViewRankAndContains(t *testing.T) {
	v := testView()
	if v.Size() != 3 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.RankOf(p(1, 1)) != 0 || v.RankOf(p(2, 2)) != 1 || v.RankOf(p(3, 3)) != 2 {
		t.Error("ranks wrong")
	}
	if v.RankOf(p(9, 9)) != -1 {
		t.Error("non-member has a rank")
	}
	if !v.Contains(p(2, 2)) || v.Contains(p(9, 9)) {
		t.Error("Contains wrong")
	}
	// Entry points must not affect rank.
	if v.RankOf(p(2, 2).WithEntry(7)) != 1 {
		t.Error("entry point affected rank")
	}
}

func TestViewCoordinator(t *testing.T) {
	v := testView()
	if v.Coordinator() != p(1, 1) {
		t.Errorf("Coordinator = %v", v.Coordinator())
	}
	if (View{}).Coordinator() != addr.Nil {
		t.Error("empty view coordinator should be nil")
	}
}

func TestWithJoined(t *testing.T) {
	v := testView()
	v2 := v.WithJoined(p(4, 4))
	if v2.ID != v.ID+1 {
		t.Errorf("joined view id = %d", v2.ID)
	}
	if v2.Size() != 4 || v2.RankOf(p(4, 4)) != 3 {
		t.Errorf("joiner should rank last: %v", v2)
	}
	// Original view unchanged.
	if v.Size() != 3 {
		t.Error("WithJoined mutated the original view")
	}
	// Joining an existing member does not duplicate it.
	v3 := v.WithJoined(p(2, 2))
	if v3.Size() != 3 {
		t.Errorf("duplicate join changed membership: %v", v3)
	}
}

func TestWithRemoved(t *testing.T) {
	v := testView()
	v2 := v.WithRemoved(p(1, 1))
	if v2.ID != v.ID+1 || v2.Size() != 2 {
		t.Errorf("removed view = %v", v2)
	}
	// Remaining members keep their relative order: the new coordinator is
	// the previously second-oldest member.
	if v2.Coordinator() != p(2, 2) || v2.RankOf(p(3, 3)) != 1 {
		t.Errorf("ranking after removal wrong: %v", v2)
	}
	if v.Size() != 3 {
		t.Error("WithRemoved mutated the original view")
	}
	// Removing a non-member only bumps the id.
	v3 := v.WithRemoved(p(9, 9))
	if v3.Size() != 3 {
		t.Errorf("removing non-member changed membership: %v", v3)
	}
}

func TestViewEqualAndClone(t *testing.T) {
	v := testView()
	c := v.Clone()
	if !v.Equal(c) {
		t.Error("clone not equal")
	}
	c.Members[0] = p(9, 9)
	if v.Members[0] == p(9, 9) {
		t.Error("Clone shares the member slice")
	}
	if v.Equal(c) {
		t.Error("Equal missed a member difference")
	}
	d := v.Clone()
	d.ID = 99
	if v.Equal(d) {
		t.Error("Equal missed an id difference")
	}
	e := v.Clone()
	e.Members = e.Members[:2]
	if v.Equal(e) {
		t.Error("Equal missed a size difference")
	}
}

func TestViewString(t *testing.T) {
	v := testView()
	s := v.String()
	if !strings.Contains(s, "twenty#1") || !strings.Contains(s, "proc(1.0/1)") {
		t.Errorf("String = %q", s)
	}
	anon := View{Group: addr.NewGroup(1, 0, 5), ID: 2}
	if !strings.Contains(anon.String(), "group(1.0/5)#2") {
		t.Errorf("anonymous String = %q", anon.String())
	}
}

func TestSitesOfAndMembersAtSite(t *testing.T) {
	v := View{
		Group: addr.NewGroup(1, 0, 1),
		ID:    1,
		Members: []addr.Address{
			p(1, 1), p(2, 2), p(1, 3), p(3, 4),
		},
	}
	sites := v.SitesOf()
	if len(sites) != 3 || sites[0] != 1 || sites[1] != 2 || sites[2] != 3 {
		t.Errorf("SitesOf = %v", sites)
	}
	at1 := v.MembersAtSite(1)
	if len(at1) != 2 || at1[0] != p(1, 1) || at1[1] != p(1, 3) {
		t.Errorf("MembersAtSite(1) = %v", at1)
	}
	if len(v.MembersAtSite(9)) != 0 {
		t.Error("MembersAtSite of absent site should be empty")
	}
}

func TestMsgIDOrderingAndString(t *testing.T) {
	a := MsgID{Sender: p(1, 1), Seq: 1}
	b := MsgID{Sender: p(1, 1), Seq: 2}
	c := MsgID{Sender: p(2, 1), Seq: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("seq ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("sender ordering wrong")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
	if a.IsZero() || !(MsgID{}).IsZero() {
		t.Error("IsZero wrong")
	}
	if a.String() != "proc(1.0/1)#1" {
		t.Errorf("String = %q", a.String())
	}
}
