// Package core contains the virtual-synchrony kernel of the reproduction:
// group views (membership lists ranked by age), message identifiers, and the
// pure ordering state machines used by the CBCAST (causal) and ABCAST
// (total-order) multicast primitives of Section 3.1 of the paper. The
// distributed wiring of these state machines — who sends what packet to whom
// — lives in internal/protos; this package is deliberately free of I/O so
// that the ordering logic can be tested exhaustively in isolation.
package core
