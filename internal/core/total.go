package core

import "sort"

// The ABCAST protocol (Section 3.1 of the paper, specified in [Birman-a]) is
// a two-phase priority-agreement protocol:
//
//  1. the sender multicasts the message to every destination;
//  2. each destination assigns it a proposed priority (one larger than any
//     priority it has used or seen) and sends the proposal back;
//  3. the sender picks the maximum proposal as the final priority and
//     multicasts a commit;
//  4. destinations hold messages in a priority-ordered queue and deliver a
//     message once it is committed and no pending message — committed or not
//     — has a smaller priority.
//
// Because every destination agrees on the final priority and ties are broken
// by the globally unique message id, the delivery order is identical at all
// destinations, which is exactly the ABCAST guarantee.

// TotalDelivery is one message released by the total-order queue, with the
// final priority it was delivered at (the GBCAST flush reports it so other
// sites can complete a straggler at the exact same final).
type TotalDelivery struct {
	ID       MsgID
	Payload  any
	Priority uint64
}

// abPending is one message awaiting delivery at a destination.
type abPending struct {
	id        MsgID
	payload   any
	priority  uint64 // proposed until committed, then final
	committed bool
}

// TotalQueue is the per-member receiver state of the ABCAST protocol. It is
// not safe for concurrent use; the owning protocols process serializes
// access.
type TotalQueue struct {
	clock     uint64 // largest priority proposed or observed
	pending   map[MsgID]*abPending
	delivered map[MsgID]bool // dedup of already-delivered ids (bounded)
	history   []MsgID        // insertion order of delivered, for bounding
	maxHist   int
}

// NewTotalQueue returns an empty queue. historyLimit bounds the
// duplicate-suppression memory; 0 selects a reasonable default.
func NewTotalQueue(historyLimit int) *TotalQueue {
	if historyLimit <= 0 {
		historyLimit = 1024
	}
	return &TotalQueue{
		pending:   make(map[MsgID]*abPending),
		delivered: make(map[MsgID]bool),
		maxHist:   historyLimit,
	}
}

// Propose records the arrival of phase-1 data for a message and returns the
// priority this member proposes for it. Proposing the same message twice
// returns the original proposal (idempotent).
func (q *TotalQueue) Propose(id MsgID, payload any) uint64 {
	if p, ok := q.pending[id]; ok {
		return p.priority
	}
	if q.delivered[id] {
		// Already delivered (a late duplicate); re-propose its old priority
		// is impossible, but any value is safe because the sender has
		// already committed. Return the current clock.
		return q.clock
	}
	q.clock++
	q.pending[id] = &abPending{id: id, payload: payload, priority: q.clock}
	return q.clock
}

// Commit records the final priority decided by the sender and returns every
// message that has become deliverable, in delivery order. Committing an
// unknown or already-delivered message returns only whatever else may have
// become deliverable (it is not an error: commits can race with view-change
// reconciliation).
func (q *TotalQueue) Commit(id MsgID, final uint64) []TotalDelivery {
	if p, ok := q.pending[id]; ok {
		p.priority = final
		p.committed = true
		if final > q.clock {
			q.clock = final
		}
	}
	return q.drain()
}

// drain delivers committed messages from the head of the priority order.
func (q *TotalQueue) drain() []TotalDelivery {
	var out []TotalDelivery
	for {
		head := q.minPending()
		if head == nil || !head.committed {
			return out
		}
		delete(q.pending, head.id)
		q.markDelivered(head.id)
		out = append(out, TotalDelivery{ID: head.id, Payload: head.payload, Priority: head.priority})
	}
}

// minPending returns the pending message with the smallest (priority, id).
func (q *TotalQueue) minPending() *abPending {
	var best *abPending
	for _, p := range q.pending {
		if best == nil {
			best = p
			continue
		}
		if p.priority < best.priority ||
			(p.priority == best.priority && p.id.Less(best.id)) {
			best = p
		}
	}
	return best
}

func (q *TotalQueue) markDelivered(id MsgID) {
	q.delivered[id] = true
	q.history = append(q.history, id)
	if len(q.history) > q.maxHist {
		old := q.history[0]
		q.history = q.history[1:]
		delete(q.delivered, old)
	}
}

// Delivered reports whether the queue has already delivered the message
// (within its bounded memory).
func (q *TotalQueue) Delivered(id MsgID) bool { return q.delivered[id] }

// HeadBlocked returns the message at the head of the priority order when it
// is still uncommitted — the entry whose missing final priority is blocking
// every later committed delivery. The second result is false when the queue
// is empty or its head is committed (and therefore about to drain). The
// re-solicitation watchdog polls this to detect stragglers.
func (q *TotalQueue) HeadBlocked() (MsgID, any, bool) {
	head := q.minPending()
	if head == nil || head.committed {
		return MsgID{}, nil, false
	}
	return head.id, head.payload, true
}

// PendingCount returns the number of messages awaiting delivery.
func (q *TotalQueue) PendingCount() int { return len(q.pending) }

// PendingState describes one pending ABCAST for view-change reconciliation.
type PendingState struct {
	ID        MsgID
	Payload   any
	Priority  uint64
	Committed bool
}

// Pending returns a snapshot of the pending messages sorted by id. The
// GBCAST flush collects these from every member when a view change is being
// installed, so that a message committed at some member but not others can
// be completed everywhere (the all-or-nothing atomicity rule when a sender
// fails).
func (q *TotalQueue) Pending() []PendingState {
	out := make([]PendingState, 0, len(q.pending))
	for _, p := range q.pending {
		out = append(out, PendingState{ID: p.id, Payload: p.payload, Priority: p.priority, Committed: p.committed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// ForceCommit is used by view-change reconciliation: it installs (if absent)
// and commits a message at the given final priority, returning any newly
// deliverable messages. Already-delivered messages are ignored.
func (q *TotalQueue) ForceCommit(id MsgID, payload any, final uint64) []TotalDelivery {
	if q.delivered[id] {
		return q.drain()
	}
	p, ok := q.pending[id]
	if !ok {
		p = &abPending{id: id, payload: payload}
		q.pending[id] = p
	}
	p.priority = final
	p.committed = true
	if final > q.clock {
		q.clock = final
	}
	return q.drain()
}

// Discard removes a pending, uncommitted message (the fate of an ABCAST
// whose sender failed before any member learned the final priority — the
// "none" branch of the atomicity rule — or of one a GBCAST flush fences
// behind a view change) and returns any messages its removal unblocks: a
// committed entry queued behind the discarded head becomes deliverable the
// moment the head disappears. Discarding an unknown id is a no-op.
func (q *TotalQueue) Discard(id MsgID) []TotalDelivery {
	if p, ok := q.pending[id]; ok && !p.committed {
		delete(q.pending, id)
	}
	return q.drain()
}

// Clock returns the largest priority proposed or observed so far.
func (q *TotalQueue) Clock() uint64 { return q.clock }
