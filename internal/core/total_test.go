package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// runABCAST simulates the full two-phase protocol for a set of destination
// queues: phase 1 proposes at every destination, the "sender" picks the max,
// and phase 2 commits everywhere. Deliveries at each destination are
// appended to the per-destination logs. The commit order across different
// messages can be permuted by the caller via the apply function.
func propose(queues []*TotalQueue, id MsgID, payload any) uint64 {
	var max uint64
	for _, q := range queues {
		if p := q.Propose(id, payload); p > max {
			max = p
		}
	}
	return max
}

func TestSingleABCASTDelivery(t *testing.T) {
	q := NewTotalQueue(0)
	id := mkID(0, 1)
	prio := q.Propose(id, "hello")
	if prio != 1 {
		t.Errorf("first proposal = %d", prio)
	}
	out := q.Commit(id, prio)
	if len(out) != 1 || out[0].Payload != "hello" || out[0].ID != id {
		t.Fatalf("deliveries = %v", out)
	}
	if !q.Delivered(id) {
		t.Error("Delivered() false after delivery")
	}
	if q.PendingCount() != 0 {
		t.Error("pending not drained")
	}
}

func TestCommitBlocksBehindSmallerUncommitted(t *testing.T) {
	q := NewTotalQueue(0)
	a := mkID(0, 1)
	b := mkID(1, 1)
	pa := q.Propose(a, "a") // priority 1
	pb := q.Propose(b, "b") // priority 2
	if pa != 1 || pb != 2 {
		t.Fatalf("proposals = %d %d", pa, pb)
	}
	// Commit b first with final priority 2: it must NOT be delivered while
	// a (priority 1, uncommitted) is still pending, because a's final
	// priority could end up below 2.
	if out := q.Commit(b, 2); len(out) != 0 {
		t.Fatalf("b delivered ahead of uncommitted a: %v", out)
	}
	// Now commit a at priority 5 (> b): both become deliverable, b first.
	out := q.Commit(a, 5)
	if len(out) != 2 || out[0].Payload != "b" || out[1].Payload != "a" {
		t.Fatalf("delivery order = %v", out)
	}
}

func TestIdenticalOrderAcrossDestinations(t *testing.T) {
	// Three destinations, five concurrent ABCASTs committed in different
	// orders at each destination: the delivery order must nevertheless be
	// identical everywhere.
	const dests = 3
	const msgs = 5
	queues := make([]*TotalQueue, dests)
	for i := range queues {
		queues[i] = NewTotalQueue(0)
	}
	ids := make([]MsgID, msgs)
	finals := make([]uint64, msgs)
	for m := 0; m < msgs; m++ {
		ids[m] = mkID(m%2, uint64(m+1))
		finals[m] = propose(queues, ids[m], m)
	}
	// Commit in a different permutation at each destination.
	perms := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	logs := make([][]int, dests)
	for d, q := range queues {
		for _, m := range perms[d] {
			for _, del := range q.Commit(ids[m], finals[m]) {
				logs[d] = append(logs[d], del.Payload.(int))
			}
		}
	}
	for d := 1; d < dests; d++ {
		if !reflect.DeepEqual(logs[0], logs[d]) {
			t.Fatalf("destination %d delivered %v, destination 0 delivered %v", d, logs[d], logs[0])
		}
	}
	if len(logs[0]) != msgs {
		t.Fatalf("delivered %d of %d", len(logs[0]), msgs)
	}
}

func TestProposeIdempotent(t *testing.T) {
	q := NewTotalQueue(0)
	id := mkID(0, 1)
	p1 := q.Propose(id, "x")
	p2 := q.Propose(id, "x")
	if p1 != p2 {
		t.Errorf("duplicate proposal changed priority: %d vs %d", p1, p2)
	}
	if q.PendingCount() != 1 {
		t.Errorf("duplicate proposal duplicated pending entry")
	}
}

func TestCommitUnknownIsHarmless(t *testing.T) {
	q := NewTotalQueue(0)
	if out := q.Commit(mkID(0, 9), 10); len(out) != 0 {
		t.Errorf("commit of unknown id delivered something: %v", out)
	}
}

func TestProposeAfterDelivery(t *testing.T) {
	q := NewTotalQueue(0)
	id := mkID(0, 1)
	q.Propose(id, "x")
	q.Commit(id, 1)
	// A late duplicate of phase 1 must not resurrect the message.
	q.Propose(id, "x")
	if q.PendingCount() != 0 {
		t.Error("late duplicate re-queued a delivered message")
	}
}

func TestClockAdvancesToFinalPriority(t *testing.T) {
	q := NewTotalQueue(0)
	a := mkID(0, 1)
	q.Propose(a, "a")
	q.Commit(a, 10) // some other destination proposed 10
	if q.Clock() != 10 {
		t.Errorf("clock = %d, want 10", q.Clock())
	}
	// The next proposal must exceed any priority this member has observed,
	// otherwise total order could be violated.
	b := mkID(1, 1)
	if p := q.Propose(b, "b"); p != 11 {
		t.Errorf("next proposal = %d, want 11", p)
	}
}

func TestForceCommitAndDiscard(t *testing.T) {
	q := NewTotalQueue(0)
	known := mkID(0, 1)
	q.Propose(known, "known")
	// Reconciliation forces an unknown message through: it must be
	// installed and delivered at the given priority.
	unknown := mkID(1, 7)
	out := q.ForceCommit(unknown, "recovered", 1)
	// known (uncommitted, priority 1 proposed) may block depending on tie
	// break: known has id sender rank 0 < unknown's sender rank 1 at the
	// same priority, so nothing is deliverable yet.
	if len(out) != 0 {
		t.Fatalf("force-commit delivered ahead of a smaller pending id: %v", out)
	}
	// Discarding the blocking head unblocks — and delivers — the committed
	// entry queued behind it.
	out = q.Discard(known)
	if len(out) != 1 || out[0].Payload != "recovered" {
		t.Fatalf("discard did not unblock the committed entry behind it: %v", out)
	}
	// Force-committing an already delivered message is a no-op.
	if out := q.ForceCommit(unknown, "dup", 1); len(out) != 0 {
		t.Errorf("duplicate force-commit delivered: %v", out)
	}
	// Discarding a committed or unknown message is a no-op.
	q.Discard(unknown)
	q.Discard(mkID(5, 5))
}

func TestDiscardOnlyUncommitted(t *testing.T) {
	q := NewTotalQueue(0)
	id := mkID(0, 1)
	q.Propose(id, "x")
	q.Commit(id, 1)
	q2 := NewTotalQueue(0)
	id2 := mkID(0, 2)
	q2.Propose(id2, "y")
	// Commit with a priority that keeps it pending behind nothing: deliver.
	q2.Commit(id2, 1)
	q2.Discard(id2) // already delivered: no-op
	if q2.PendingCount() != 0 {
		t.Error("Discard corrupted state")
	}
}

func TestPendingSnapshot(t *testing.T) {
	q := NewTotalQueue(0)
	a, b := mkID(1, 1), mkID(0, 1)
	q.Propose(a, "a")
	q.Propose(b, "b")
	q.Commit(a, 5)
	pend := q.Pending()
	if len(pend) != 2 {
		t.Fatalf("Pending = %v", pend)
	}
	// Sorted by id: b's sender (site 1) sorts before a's (site 2).
	if pend[0].ID != b || pend[1].ID != a {
		t.Errorf("Pending order = %v", pend)
	}
	if !pend[1].Committed || pend[0].Committed {
		t.Error("commit flags wrong in snapshot")
	}
	if pend[1].Priority != 5 {
		t.Error("priority wrong in snapshot")
	}
}

func TestHistoryBound(t *testing.T) {
	q := NewTotalQueue(3)
	for i := 1; i <= 5; i++ {
		id := mkID(0, uint64(i))
		p := q.Propose(id, i)
		q.Commit(id, p)
	}
	// Only the last 3 ids are remembered.
	if q.Delivered(mkID(0, 1)) {
		t.Error("history not bounded")
	}
	if !q.Delivered(mkID(0, 5)) {
		t.Error("recent delivery forgotten")
	}
}

// Property test: for random message sets and random per-destination commit
// interleavings, all destinations deliver the same sequence, exactly once
// per message (agreement + total order + integrity).
func TestTotalOrderRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		dests := 2 + rng.Intn(4)
		msgs := 1 + rng.Intn(12)
		queues := make([]*TotalQueue, dests)
		for i := range queues {
			queues[i] = NewTotalQueue(0)
		}
		ids := make([]MsgID, msgs)
		finals := make([]uint64, msgs)
		// Phase 1 in a random per-destination arrival order.
		for m := 0; m < msgs; m++ {
			ids[m] = mkID(rng.Intn(5), uint64(trial*100+m))
		}
		for _, q := range queues {
			for _, m := range rng.Perm(msgs) {
				if p := q.Propose(ids[m], m); p > finals[m] {
					finals[m] = p
				}
			}
		}
		logs := make([][]int, dests)
		for d, q := range queues {
			for _, m := range rng.Perm(msgs) {
				for _, del := range q.Commit(ids[m], finals[m]) {
					logs[d] = append(logs[d], del.Payload.(int))
				}
			}
		}
		for d := 0; d < dests; d++ {
			if len(logs[d]) != msgs {
				t.Fatalf("trial %d: destination %d delivered %d of %d", trial, d, len(logs[d]), msgs)
			}
			if !reflect.DeepEqual(logs[d], logs[0]) {
				t.Fatalf("trial %d: destination %d order %v != %v", trial, d, logs[d], logs[0])
			}
		}
	}
}
