package core

import (
	"sort"

	"repro/internal/addr"
	"repro/internal/vclock"
)

// CausalIncoming is one CBCAST as seen by a receiving member: the message
// identifier, the rank of the sender in the view the message was sent in
// (-1 when the sender is not a group member), the sender's vector timestamp
// (ranked senders) or per-sender sequence number (external senders), and the
// opaque payload the protocols process will eventually hand to the
// application.
type CausalIncoming struct {
	ID         MsgID
	SenderRank int
	VT         vclock.VC
	Seq        uint64
	Payload    any
}

// CausalQueue is the per-member receiver state of the CBCAST protocol. It
// buffers messages that are not yet causally deliverable and releases them
// as their causal predecessors arrive. Vector timestamps are per view: the
// GBCAST flush that precedes every view change guarantees that no CBCAST
// crosses a view boundary, so the clock is simply reset when a new view is
// installed.
//
// CausalQueue is not safe for concurrent use; the owning protocols process
// serializes access.
type CausalQueue struct {
	selfRank int
	vc       vclock.VC

	pending []CausalIncoming // messages from ranked senders, not yet deliverable

	// External (non-member) senders get FIFO ordering: the queue tracks the
	// next expected sequence number per sender and buffers out-of-order
	// arrivals. This state survives view changes.
	extNext    map[addr.Address]uint64
	extPending map[addr.Address]map[uint64]CausalIncoming
}

// NewCausalQueue creates the receiver state for a member with the given rank
// in a view of the given size.
func NewCausalQueue(selfRank, viewSize int) *CausalQueue {
	return &CausalQueue{
		selfRank:   selfRank,
		vc:         vclock.New(viewSize),
		extNext:    make(map[addr.Address]uint64),
		extPending: make(map[addr.Address]map[uint64]CausalIncoming),
	}
}

// Clock returns a copy of the member's current vector clock.
func (q *CausalQueue) Clock() vclock.VC { return q.vc.Clone() }

// SelfRank returns the member's rank in the current view.
func (q *CausalQueue) SelfRank() int { return q.selfRank }

// PrepareSend advances the member's own clock entry and returns the vector
// timestamp to stamp on an outgoing CBCAST. The caller must deliver the
// message locally right away (a sender always sees its own multicast
// immediately; this is what makes asynchronous use safe — Section 3.4).
func (q *CausalQueue) PrepareSend() vclock.VC {
	q.vc.Tick(q.selfRank)
	return q.vc.Clone()
}

// Receive buffers an incoming CBCAST and returns every message (including
// possibly this one) that has now become deliverable, in causal order.
// Messages from the member itself are ignored (they were delivered at send
// time).
func (q *CausalQueue) Receive(in CausalIncoming) []CausalIncoming {
	if in.SenderRank == q.selfRank && in.SenderRank >= 0 {
		return nil
	}
	if in.SenderRank < 0 {
		return q.receiveExternal(in)
	}
	q.pending = append(q.pending, in)
	return q.drain()
}

// receiveExternal handles FIFO ordering for non-member senders.
func (q *CausalQueue) receiveExternal(in CausalIncoming) []CausalIncoming {
	sender := in.ID.Sender.Base()
	next, ok := q.extNext[sender]
	if !ok {
		next = 1
		q.extNext[sender] = 1
	}
	if in.Seq < next {
		return nil // duplicate
	}
	buf := q.extPending[sender]
	if buf == nil {
		buf = make(map[uint64]CausalIncoming)
		q.extPending[sender] = buf
	}
	buf[in.Seq] = in
	var out []CausalIncoming
	for {
		m, ok := buf[q.extNext[sender]]
		if !ok {
			break
		}
		delete(buf, q.extNext[sender])
		q.extNext[sender]++
		out = append(out, m)
	}
	return out
}

// drain repeatedly scans the pending buffer for deliverable messages until
// none remains deliverable, returning them in delivery order.
func (q *CausalQueue) drain() []CausalIncoming {
	var out []CausalIncoming
	for {
		idx := -1
		for i, m := range q.pending {
			if q.vc.Deliverable(m.VT, m.SenderRank) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return out
		}
		m := q.pending[idx]
		q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
		q.vc.Merge(m.VT)
		out = append(out, m)
	}
}

// Pending returns the messages from ranked senders that are buffered but not
// yet deliverable, sorted by message id. The GBCAST flush collects these for
// reconciliation during a view change.
func (q *CausalQueue) Pending() []CausalIncoming {
	out := append([]CausalIncoming(nil), q.pending...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// PendingCount returns the number of buffered, undeliverable messages from
// ranked senders.
func (q *CausalQueue) PendingCount() int { return len(q.pending) }

// InstallView resets the per-view state for a new view in which the member
// has the given rank and the view has the given size. Messages still pending
// from the old view are returned so the caller (the flush protocol) can
// decide their fate; after the call the queue is empty with a zero clock.
func (q *CausalQueue) InstallView(selfRank, viewSize int) []CausalIncoming {
	dropped := q.Pending()
	q.pending = nil
	q.selfRank = selfRank
	q.vc = vclock.New(viewSize)
	return dropped
}
