package core

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/vclock"
)

// sim is a tiny in-memory harness that runs the sender side of CBCAST for a
// set of members and lets tests deliver the resulting messages to receivers
// in arbitrary network orders.
type cbMsg struct {
	in   CausalIncoming
	from int // sender rank
}

func mkID(rank int, seq uint64) MsgID {
	return MsgID{Sender: addr.NewProcess(addr.SiteID(rank+1), 0, uint32(rank+1)), Seq: seq}
}

func TestCausalFIFOFromSingleSender(t *testing.T) {
	// Sender rank 0, receiver rank 1 in a 2-member view.
	sender := NewCausalQueue(0, 2)
	recv := NewCausalQueue(1, 2)

	var msgs []CausalIncoming
	for i := 1; i <= 3; i++ {
		vt := sender.PrepareSend()
		msgs = append(msgs, CausalIncoming{ID: mkID(0, uint64(i)), SenderRank: 0, VT: vt, Payload: i})
	}
	// Deliver out of order: 2, 3, 1. Nothing may be delivered until 1
	// arrives, then all three come out in send order.
	if out := recv.Receive(msgs[1]); len(out) != 0 {
		t.Fatalf("message 2 delivered before 1: %v", out)
	}
	if out := recv.Receive(msgs[2]); len(out) != 0 {
		t.Fatalf("message 3 delivered before 1: %v", out)
	}
	if recv.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d", recv.PendingCount())
	}
	out := recv.Receive(msgs[0])
	if len(out) != 3 {
		t.Fatalf("expected 3 deliveries, got %d", len(out))
	}
	for i, m := range out {
		if m.Payload.(int) != i+1 {
			t.Errorf("delivery %d = %v", i, m.Payload)
		}
	}
}

func TestCausalCrossSenderDependency(t *testing.T) {
	// Three members. Member 0 multicasts m1; member 1 delivers m1 and then
	// multicasts m2 (so m1 -> m2 causally). Member 2 receives m2 first: it
	// must be buffered until m1 arrives.
	q0 := NewCausalQueue(0, 3)
	q1 := NewCausalQueue(1, 3)
	q2 := NewCausalQueue(2, 3)

	vt1 := q0.PrepareSend()
	m1 := CausalIncoming{ID: mkID(0, 1), SenderRank: 0, VT: vt1, Payload: "m1"}

	// Member 1 receives and delivers m1, then sends m2.
	if out := q1.Receive(m1); len(out) != 1 {
		t.Fatalf("member 1 did not deliver m1: %v", out)
	}
	vt2 := q1.PrepareSend()
	m2 := CausalIncoming{ID: mkID(1, 1), SenderRank: 1, VT: vt2, Payload: "m2"}

	// Member 2 gets m2 before m1.
	if out := q2.Receive(m2); len(out) != 0 {
		t.Fatal("m2 delivered before its causal predecessor m1")
	}
	out := q2.Receive(m1)
	if len(out) != 2 || out[0].Payload != "m1" || out[1].Payload != "m2" {
		t.Fatalf("causal order violated: %v", out)
	}
}

func TestConcurrentMessagesDeliverInAnyOrder(t *testing.T) {
	// Members 0 and 1 multicast concurrently; member 2 may deliver them in
	// either order but must deliver both.
	q0 := NewCausalQueue(0, 3)
	q1 := NewCausalQueue(1, 3)
	q2 := NewCausalQueue(2, 3)

	a := CausalIncoming{ID: mkID(0, 1), SenderRank: 0, VT: q0.PrepareSend(), Payload: "a"}
	b := CausalIncoming{ID: mkID(1, 1), SenderRank: 1, VT: q1.PrepareSend(), Payload: "b"}

	out := append(q2.Receive(b), q2.Receive(a)...)
	if len(out) != 2 {
		t.Fatalf("expected both concurrent messages delivered, got %v", out)
	}
}

func TestOwnMessagesAreSkipped(t *testing.T) {
	q := NewCausalQueue(0, 2)
	vt := q.PrepareSend()
	in := CausalIncoming{ID: mkID(0, 1), SenderRank: 0, VT: vt, Payload: "self"}
	if out := q.Receive(in); out != nil {
		t.Errorf("own message was re-delivered: %v", out)
	}
}

func TestExternalSenderFIFO(t *testing.T) {
	q := NewCausalQueue(0, 2)
	ext := addr.NewProcess(9, 0, 99)
	mk := func(seq uint64, pay string) CausalIncoming {
		return CausalIncoming{ID: MsgID{Sender: ext, Seq: seq}, SenderRank: -1, Seq: seq, Payload: pay}
	}
	if out := q.Receive(mk(2, "second")); len(out) != 0 {
		t.Fatal("out-of-order external message delivered early")
	}
	out := q.Receive(mk(1, "first"))
	if len(out) != 2 || out[0].Payload != "first" || out[1].Payload != "second" {
		t.Fatalf("external FIFO violated: %v", out)
	}
	// Duplicate of an already-delivered message is dropped.
	if out := q.Receive(mk(1, "dup")); len(out) != 0 {
		t.Errorf("duplicate external message delivered: %v", out)
	}
	// Two distinct external senders are independent.
	ext2 := addr.NewProcess(8, 0, 88)
	out = q.Receive(CausalIncoming{ID: MsgID{Sender: ext2, Seq: 1}, SenderRank: -1, Seq: 1, Payload: "other"})
	if len(out) != 1 {
		t.Errorf("independent external sender blocked: %v", out)
	}
}

func TestInstallViewResetsState(t *testing.T) {
	q := NewCausalQueue(1, 3)
	// Buffer an undeliverable message (depends on an unseen one).
	vt := vclock.VC{2, 0, 0}
	in := CausalIncoming{ID: mkID(0, 2), SenderRank: 0, VT: vt, Payload: "late"}
	if out := q.Receive(in); len(out) != 0 {
		t.Fatal("unexpectedly deliverable")
	}
	dropped := q.InstallView(0, 2)
	if len(dropped) != 1 || dropped[0].Payload != "late" {
		t.Errorf("InstallView dropped = %v", dropped)
	}
	if q.PendingCount() != 0 || q.SelfRank() != 0 {
		t.Error("InstallView did not reset state")
	}
	if !q.Clock().Equal(vclock.New(2)) {
		t.Errorf("clock not reset: %v", q.Clock())
	}
	// The queue works normally in the new view.
	q2 := NewCausalQueue(1, 2)
	m := CausalIncoming{ID: mkID(1, 1), SenderRank: 1, VT: q2.PrepareSend(), Payload: "fresh"}
	if out := q.Receive(m); len(out) != 1 {
		t.Errorf("delivery in new view failed: %v", out)
	}
}

func TestPendingSorted(t *testing.T) {
	q := NewCausalQueue(2, 3)
	// Two undeliverable messages with gaps.
	m2 := CausalIncoming{ID: mkID(1, 2), SenderRank: 1, VT: vclock.VC{0, 2, 0}, Payload: "b2"}
	m5 := CausalIncoming{ID: mkID(0, 5), SenderRank: 0, VT: vclock.VC{5, 0, 0}, Payload: "a5"}
	q.Receive(m5)
	q.Receive(m2)
	pend := q.Pending()
	if len(pend) != 2 {
		t.Fatalf("Pending = %v", pend)
	}
	if !pend[0].ID.Less(pend[1].ID) {
		t.Error("Pending not sorted by id")
	}
}

// Property-style test: for random interleavings of per-sender FIFO streams,
// every receiver delivers all messages, respects per-sender FIFO order, and
// respects causality chains created by alternating senders.
func TestCausalRandomInterleavings(t *testing.T) {
	const members = 4
	const perSender = 5
	rng := rand.New(rand.NewSource(3))

	for trial := 0; trial < 50; trial++ {
		queues := make([]*CausalQueue, members)
		for i := range queues {
			queues[i] = NewCausalQueue(i, members)
		}
		// Build a causal history: senders take turns; each sender delivers
		// everything available to it before sending (simulated by merging
		// clocks through a shared "omniscient" sequence, which produces a
		// totally ordered causal chain — the strongest causality case).
		var stream []cbMsg
		for round := 0; round < perSender; round++ {
			for s := 0; s < members; s++ {
				// Before sending, sender s receives everything sent so far.
				for _, m := range stream {
					queues[s].Receive(m.in)
				}
				vt := queues[s].PrepareSend()
				in := CausalIncoming{
					ID:         mkID(s, uint64(round*members+s+1)),
					SenderRank: s,
					VT:         vt,
					Payload:    len(stream),
				}
				stream = append(stream, cbMsg{in: in, from: s})
			}
		}
		// Deliver the whole stream to a fresh observer in random order;
		// since the history is a single causal chain, the observer must
		// deliver in exactly stream order.
		obs := NewCausalQueue(members, members+1)
		perm := rng.Perm(len(stream))
		var delivered []int
		for _, idx := range perm {
			for _, d := range obs.Receive(stream[idx].in) {
				delivered = append(delivered, d.Payload.(int))
			}
		}
		if len(delivered) != len(stream) {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), len(stream))
		}
		for i, v := range delivered {
			if v != i {
				t.Fatalf("trial %d: causal chain broken at %d: %v", trial, i, delivered)
			}
		}
	}
}
