package core

import (
	"fmt"

	"repro/internal/addr"
)

// MsgID uniquely identifies one multicast system-wide: the sending process
// plus a per-sender sequence number. It is comparable and usable as a map
// key; the total order on MsgIDs (sender address order, then sequence) is
// used to break priority ties in the ABCAST protocol, which is what makes
// the delivery order identical at every destination.
type MsgID struct {
	Sender addr.Address
	Seq    uint64
}

// Less totally orders message identifiers.
func (m MsgID) Less(o MsgID) bool {
	if c := m.Sender.Compare(o.Sender); c != 0 {
		return c < 0
	}
	return m.Seq < o.Seq
}

// IsZero reports whether the id is unset.
func (m MsgID) IsZero() bool { return m == MsgID{} }

// String renders the id as "proc(1.0/2)#17".
func (m MsgID) String() string { return fmt.Sprintf("%s#%d", m.Sender, m.Seq) }
