package core

import (
	"fmt"
	"strings"

	"repro/internal/addr"
)

// ViewID numbers the successive membership views of one group. The first
// view installed when a group is created has ViewID 1.
type ViewID uint64

// View is one membership view of a process group. Members are listed in
// order of decreasing age (the creator first, then in join order), providing
// the natural ranking the paper describes in Section 3.2: because every
// member sees the same sequence of views, a member's index in this list can
// be used to coordinate actions with no extra communication (the
// twenty-questions example bases work division on it).
type View struct {
	Group   addr.Address // the group address
	Name    string       // the group's symbolic name
	ID      ViewID       // monotonically increasing view number
	Members []addr.Address
}

// Clone returns a deep copy of the view.
func (v View) Clone() View {
	cp := v
	cp.Members = append([]addr.Address(nil), v.Members...)
	return cp
}

// Size returns the number of members.
func (v View) Size() int { return len(v.Members) }

// RankOf returns the member's index in the age ranking, or -1 if the
// process is not a member. Entry points are ignored.
func (v View) RankOf(p addr.Address) int {
	base := p.Base()
	for i, m := range v.Members {
		if m.Base() == base {
			return i
		}
	}
	return -1
}

// Contains reports whether p is a member of the view.
func (v View) Contains(p addr.Address) bool { return v.RankOf(p) >= 0 }

// Coordinator returns the oldest member (rank 0), which acts as the group
// coordinator for GBCAST and view-change protocols, or addr.Nil for an
// empty view.
func (v View) Coordinator() addr.Address {
	if len(v.Members) == 0 {
		return addr.Nil
	}
	return v.Members[0]
}

// WithJoined returns a new view with ID+1 and the given processes appended
// in order (joiners are youngest, so they rank last). Processes already
// present are not duplicated.
func (v View) WithJoined(ps ...addr.Address) View {
	next := v.Clone()
	next.ID++
	for _, p := range ps {
		if !next.Contains(p) {
			next.Members = append(next.Members, p.Base())
		}
	}
	return next
}

// WithRemoved returns a new view with ID+1 and the given processes removed
// (whether they left voluntarily or failed). The relative order of the
// remaining members is preserved, so ranks only ever shift down.
func (v View) WithRemoved(ps ...addr.Address) View {
	next := v.Clone()
	next.ID++
	drop := make(map[addr.Address]bool, len(ps))
	for _, p := range ps {
		drop[p.Base()] = true
	}
	kept := next.Members[:0]
	for _, m := range next.Members {
		if !drop[m.Base()] {
			kept = append(kept, m)
		}
	}
	next.Members = kept
	return next
}

// Equal reports whether two views have the same group, id, and membership in
// the same order.
func (v View) Equal(o View) bool {
	if v.Group != o.Group || v.ID != o.ID || len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// String renders the view for logs: "name#3{proc(1.0/2) proc(2.0/5)}".
func (v View) String() string {
	parts := make([]string, len(v.Members))
	for i, m := range v.Members {
		parts[i] = m.String()
	}
	name := v.Name
	if name == "" {
		name = v.Group.String()
	}
	return fmt.Sprintf("%s#%d{%s}", name, v.ID, strings.Join(parts, " "))
}

// SitesOf returns the distinct sites hosting members, in rank order of first
// appearance. The protocols process uses it to route one copy of each
// protocol packet per site.
func (v View) SitesOf() []addr.SiteID {
	seen := make(map[addr.SiteID]bool)
	var out []addr.SiteID
	for _, m := range v.Members {
		if !seen[m.Site] {
			seen[m.Site] = true
			out = append(out, m.Site)
		}
	}
	return out
}

// MembersAtSite returns the members hosted at the given site, in rank order.
func (v View) MembersAtSite(s addr.SiteID) []addr.Address {
	var out []addr.Address
	for _, m := range v.Members {
		if m.Site == s {
			out = append(out, m)
		}
	}
	return out
}
