// Package events is the toolkit's operational event stream: a typed,
// site-local record of the protocol decisions that an operator (or a fault
// injector) needs to see as they happen — view installs, primary loss and
// resumption, partition wedges, merges, flushes, ABCAST fences and
// re-solicitations, coordinator takeovers, relay repair, and site up/down
// transitions.
//
// Each protocols daemon owns one Bus. Emitters publish without blocking:
// every subscriber has a bounded queue, and when a subscriber falls behind
// its oldest pending events are counted as dropped rather than stalling the
// protocol path. Subscribers therefore see a gap-free prefix of the stream
// up to the first drop; the per-event Seq field makes gaps detectable.
//
// The package also defines Counters, the per-site tally of protocol
// activity, so that both the daemon and the public API share one
// observability vocabulary.
package events
