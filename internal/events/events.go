package events

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
)

// Kind classifies an operational event.
type Kind uint8

// Event kinds, grouped by the protocol layer that emits them.
const (
	// KindNone is the zero Kind; it is never published.
	KindNone Kind = iota

	// ViewInstalled marks a new membership view taking effect at a site
	// (the GBCAST commit, or the initial view when a group is created).
	ViewInstalled
	// ViewCommitted marks the coordinator completing the two-phase GBCAST
	// for a membership change (emitted once, at the coordinator).
	ViewCommitted

	// PrimaryLost marks a group's local copy losing primaryness (it was
	// wedged into a non-primary partition).
	PrimaryLost
	// PrimaryResumed marks a group's local copy becoming primary again
	// (after a merge or an in-place resume).
	PrimaryResumed
	// PartitionWedge marks a gbNonPrimary notice wedging the local copy
	// read-only under the primary-partition rule.
	PartitionWedge

	// MergeStart marks the beginning of a partition merge for a group.
	MergeStart
	// MergePark marks a merge attempt parking after repeated failures
	// (it will be retried when a site recovers).
	MergePark
	// MergeRetry marks a parked merge being retried.
	MergeRetry
	// MergeLand marks a merge completing: the minority copy has rejoined
	// the primary partition.
	MergeLand

	// FlushBegin marks a member site wedging for a GBCAST flush.
	FlushBegin
	// AbcastFenced marks pending ABCASTs being fenced behind a new view
	// during a flush (their initiators restart them).
	AbcastFenced
	// FlushComplete marks the flush ending: the view is installed and
	// held-back traffic is released.
	FlushComplete

	// AbcastResolicit marks a site asking a peer for a straggler ABCAST's
	// commit record.
	AbcastResolicit

	// Takeover marks a surviving member forcing a view change past
	// unresponsive peers after a coordinator failure.
	Takeover

	// RelayRollback marks an external sender rolling back a relayed
	// multicast's sequence number after its relay failed.
	RelayRollback
	// RelayNullFill marks a null message filling the FIFO sequence of a
	// relayed multicast lost with its relay.
	RelayNullFill

	// SiteDown marks the failure detector declaring a site faulty.
	SiteDown
	// SiteUp marks the failure detector observing a site (re)appear.
	SiteUp
	// SiteRestart marks a site being restarted with a new incarnation.
	SiteRestart

	// LinkDown marks the network backend reporting a link cut.
	LinkDown
	// LinkUp marks the network backend reporting a link heal.
	LinkUp

	numKinds // sentinel; keep last
)

var kindNames = [...]string{
	KindNone:        "none",
	ViewInstalled:   "view-installed",
	ViewCommitted:   "view-committed",
	PrimaryLost:     "primary-lost",
	PrimaryResumed:  "primary-resumed",
	PartitionWedge:  "partition-wedge",
	MergeStart:      "merge-start",
	MergePark:       "merge-park",
	MergeRetry:      "merge-retry",
	MergeLand:       "merge-land",
	FlushBegin:      "flush-begin",
	AbcastFenced:    "abcast-fenced",
	FlushComplete:   "flush-complete",
	AbcastResolicit: "abcast-resolicit",
	Takeover:        "takeover",
	RelayRollback:   "relay-rollback",
	RelayNullFill:   "relay-null-fill",
	SiteDown:        "site-down",
	SiteUp:          "site-up",
	SiteRestart:     "site-restart",
	LinkDown:        "link-down",
	LinkUp:          "link-up",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one operational event. Seq increases by one per event published
// on a bus, so a subscriber can detect dropped events; Site is the site the
// event was observed at, which for cluster-wide streams disambiguates the
// same protocol step seen from several sites.
type Event struct {
	Seq    uint64       // per-bus sequence number, starting at 1
	Time   time.Time    // wall-clock emission time
	Site   addr.SiteID  // site the event was observed at
	Kind   Kind         // what happened
	Group  addr.Address // group concerned, if any
	View   core.ViewID  // view id concerned, if any
	Peer   addr.SiteID  // other site concerned (takeover target, link peer, ...)
	Msg    core.MsgID   // multicast concerned, if any
	Detail string       // free-form human-readable context
}

// String renders the event compactly for traces and dumps.
func (e Event) String() string {
	s := fmt.Sprintf("#%d site%d %s", e.Seq, e.Site, e.Kind)
	if !e.Group.IsNil() {
		s += fmt.Sprintf(" %s", e.Group)
	}
	if e.View != 0 {
		s += fmt.Sprintf(" view=%d", e.View)
	}
	if e.Peer != 0 {
		s += fmt.Sprintf(" peer=site%d", e.Peer)
	}
	if !e.Msg.IsZero() {
		s += fmt.Sprintf(" msg=%s", e.Msg)
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Filter selects a subset of the stream. The zero Filter matches everything.
type Filter struct {
	// Kinds restricts the stream to the listed kinds; empty means all.
	Kinds []Kind
	// Group restricts the stream to events about one group (events that
	// carry no group, such as SiteDown, are excluded). The zero Address
	// disables the restriction.
	Group addr.Address
}

func (f Filter) match(e Event) bool {
	if !f.Group.IsNil() && e.Group.Base() != f.Group.Base() {
		return false
	}
	if len(f.Kinds) == 0 {
		return true
	}
	for _, k := range f.Kinds {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Stats summarises a bus's activity: how many events of each kind were
// published and how many were dropped at slow subscribers.
type Stats struct {
	Published uint64          // total events published
	Dropped   uint64          // total events dropped across all subscribers
	ByKind    map[Kind]uint64 // per-kind publish counts (only non-zero kinds)
}

// DefaultQueue is the subscriber queue length used when Subscribe is called
// with a non-positive buffer size.
const DefaultQueue = 256

type subscriber struct {
	filter  Filter
	ch      chan Event
	dropped uint64
	closed  bool
}

// Bus fans events out to subscribers. Publishing never blocks: a subscriber
// whose queue is full loses the event and its drop counter is incremented.
// The zero Bus is not usable; call NewBus.
type Bus struct {
	site addr.SiteID

	mu     sync.Mutex
	seq    uint64
	closed bool
	subs   map[int]*subscriber
	nextID int
	byKind [numKinds]uint64
	drops  uint64
}

// NewBus returns an empty bus whose events are stamped with the given site.
func NewBus(site addr.SiteID) *Bus {
	return &Bus{site: site, subs: make(map[int]*subscriber)}
}

// Publish stamps the event with the bus's site, the next sequence number and
// the current time, then offers it to every matching subscriber without
// blocking. It is safe to call from protocol goroutines holding no bus state.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	e.Seq = b.seq
	e.Site = b.site
	e.Time = time.Now()
	if int(e.Kind) < len(b.byKind) {
		b.byKind[e.Kind]++
	}
	for _, s := range b.subs {
		if s.closed || !s.filter.match(e) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped++
			b.drops++
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with a bounded queue of the given
// length (DefaultQueue if buf <= 0). It returns the event channel and a
// cancel function; cancel closes the channel after the subscriber is
// removed, so a range over the channel terminates. Cancel is idempotent.
func (b *Bus) Subscribe(f Filter, buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = DefaultQueue
	}
	s := &subscriber{filter: f, ch: make(chan Event, buf)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = s
	b.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			mine := !s.closed // Close may already have closed the channel
			if mine {
				s.closed = true
				delete(b.subs, id)
			}
			b.mu.Unlock()
			if mine {
				close(s.ch)
			}
		})
	}
	return s.ch, cancel
}

// Dropped returns the number of events dropped across all subscribers since
// the bus was created (including subscribers that have since cancelled).
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// Stats returns a snapshot of the bus's publish and drop counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{Published: b.seq, Dropped: b.drops, ByKind: make(map[Kind]uint64)}
	for k, n := range b.byKind {
		if n > 0 {
			st.ByKind[Kind(k)] = n
		}
	}
	return st
}

// Close shuts the bus down: every subscriber channel is closed and later
// Publish calls are ignored. Close is idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := b.subs
	b.subs = make(map[int]*subscriber)
	b.mu.Unlock()
	for _, s := range subs {
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
}

// Counters tallies protocol activity at one site. It is event-derived in
// spirit — every increment corresponds to a protocol step the event stream
// can also report — and is aggregated across sites by the public API.
type Counters struct {
	CBCASTs       uint64 // causal multicasts initiated
	ABCASTs       uint64 // total-order multicasts initiated
	GBCASTs       uint64 // global multicasts / view changes initiated
	PointToPoints uint64 // point-to-point packets sent
	Delivered     uint64 // messages delivered to local processes
	ViewChanges   uint64 // views installed
}

// Add accumulates o into c (used when aggregating per-site counters).
func (c *Counters) Add(o Counters) {
	c.CBCASTs += o.CBCASTs
	c.ABCASTs += o.ABCASTs
	c.GBCASTs += o.GBCASTs
	c.PointToPoints += o.PointToPoints
	c.Delivered += o.Delivered
	c.ViewChanges += o.ViewChanges
}
