package events

import (
	"testing"

	"repro/internal/addr"
)

func group(n uint32) addr.Address { return addr.NewGroup(1, 0, n) }

func TestPublishStampsAndDelivers(t *testing.T) {
	b := NewBus(7)
	defer b.Close()
	ch, cancel := b.Subscribe(Filter{}, 4)
	defer cancel()

	b.Publish(Event{Kind: ViewInstalled, Group: group(1), View: 3})
	b.Publish(Event{Kind: SiteDown, Peer: 2})

	e := <-ch
	if e.Seq != 1 || e.Site != 7 || e.Kind != ViewInstalled || e.View != 3 || e.Time.IsZero() {
		t.Fatalf("first event badly stamped: %+v", e)
	}
	e = <-ch
	if e.Seq != 2 || e.Kind != SiteDown || e.Peer != 2 {
		t.Fatalf("second event badly stamped: %+v", e)
	}
}

func TestFilterByKindAndGroup(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	ch, cancel := b.Subscribe(Filter{Kinds: []Kind{MergeStart, MergeLand}, Group: group(5)}, 8)
	defer cancel()

	b.Publish(Event{Kind: MergeStart, Group: group(9)}) // wrong group
	b.Publish(Event{Kind: FlushBegin, Group: group(5)}) // wrong kind
	b.Publish(Event{Kind: SiteDown})                    // no group at all
	b.Publish(Event{Kind: MergeStart, Group: group(5)})
	b.Publish(Event{Kind: MergeLand, Group: group(5)})

	if e := <-ch; e.Kind != MergeStart {
		t.Fatalf("got %v, want merge-start", e.Kind)
	}
	if e := <-ch; e.Kind != MergeLand {
		t.Fatalf("got %v, want merge-land", e.Kind)
	}
	select {
	case e := <-ch:
		t.Fatalf("unexpected extra event %v", e)
	default:
	}
}

func TestSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	ch, cancel := b.Subscribe(Filter{}, 2)
	defer cancel()

	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: SiteUp, Peer: addr.SiteID(i + 1)})
	}
	st := b.Stats()
	if st.Published != 5 {
		t.Errorf("Published = %d, want 5", st.Published)
	}
	if st.Dropped != 3 || b.Dropped() != 3 {
		t.Errorf("Dropped = %d (%d), want 3", st.Dropped, b.Dropped())
	}
	if st.ByKind[SiteUp] != 5 {
		t.Errorf("ByKind[SiteUp] = %d, want 5", st.ByKind[SiteUp])
	}
	// The gap-free prefix survives: the first two events, in order.
	if e := <-ch; e.Seq != 1 {
		t.Errorf("first queued seq = %d, want 1", e.Seq)
	}
	if e := <-ch; e.Seq != 2 {
		t.Errorf("second queued seq = %d, want 2", e.Seq)
	}
}

func TestCancelClosesChannelAndIsIdempotent(t *testing.T) {
	b := NewBus(1)
	defer b.Close()
	ch, cancel := b.Subscribe(Filter{}, 1)
	cancel()
	cancel() // must not panic
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	b.Publish(Event{Kind: SiteDown}) // must not panic or deliver
}

func TestCloseClosesSubscribersAndSilencesPublish(t *testing.T) {
	b := NewBus(1)
	ch, cancel := b.Subscribe(Filter{}, 1)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after bus close")
	}
	b.Publish(Event{Kind: SiteDown})
	if b.Stats().Published != 0 {
		t.Error("publish after close was counted")
	}
	cancel() // canceling after close must not panic

	// Subscribing to a closed bus yields an already-closed channel.
	ch2, cancel2 := b.Subscribe(Filter{}, 1)
	if _, ok := <-ch2; ok {
		t.Fatal("subscription on a closed bus is open")
	}
	cancel2()
}

func TestKindStringsAreNamed(t *testing.T) {
	for k := KindNone + 1; k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has no name (%q)", k, s)
		}
	}
}
