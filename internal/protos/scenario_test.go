package protos

// Fault-injection scenario suite: drives the GBCAST/ABCAST protocols through
// coordinator crashes, partial commits, lossy links, and stale retransmitted
// packets using the simnet link faults (Partition, PauseLink). These are the
// failure claims of the paper (Sections 2.2, 4): a membership change never
// gets lost when its coordinator dies mid-protocol, and the ABCAST atomicity
// rule ("committed anywhere means committed everywhere; uncommitted from a
// failed sender means nowhere") holds across site crashes.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/fdetect"
	"repro/internal/msg"
	"repro/internal/simnet"
)

// scenarioDetector is the failure-detector configuration used by the crash
// scenarios: fast enough that takeover happens within a few hundred ms.
func scenarioDetector() fdetect.Config {
	return fdetect.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		InitialTimeout:    150 * time.Millisecond,
		MinTimeout:        100 * time.Millisecond,
		MaxTimeout:        500 * time.Millisecond,
		DeviationFactor:   4,
	}
}

// newFaultCluster is newTestCluster with the network, call timeout, and
// detector under the test's control.
func newFaultCluster(t *testing.T, sites int, netCfg simnet.Config, callTimeout time.Duration, det fdetect.Config) *testCluster {
	t.Helper()
	net := simnet.New(netCfg)
	tc := &testCluster{t: t, net: net, daemons: make(map[addr.SiteID]*Daemon)}
	for i := 1; i <= sites; i++ {
		d, err := New(Config{
			Site:        addr.SiteID(i),
			Network:     net,
			CallTimeout: callTimeout,
			Detector:    det,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.daemons[addr.SiteID(i)] = d
	}
	t.Cleanup(func() {
		for _, d := range tc.daemons {
			d.Close()
		}
		net.Close()
	})
	return tc
}

// assertViewIDsStrictlyIncreasing fails if the process observed the same (or
// an older) view id twice — the signature of a duplicate deliverView callback
// from a re-applied commit.
func assertViewIDsStrictlyIncreasing(t *testing.T, name string, p *testProc) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 1; i < len(p.views); i++ {
		if p.views[i].ID <= p.views[i-1].ID {
			t.Errorf("%s: view ids not strictly increasing at position %d: %d then %d",
				name, i, p.views[i-1].ID, p.views[i].ID)
		}
	}
}

// countBody counts deliveries of a given payload body at a process.
func countBody(p *testProc, body string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, m := range p.msgs {
		if m.GetString("body", "") == body {
			n++
		}
	}
	return n
}

type joinResult struct {
	view core.View
	err  error
}

// TestScenarioCoordinatorCrashMidFlushJoinCompletes crashes the coordinator
// site while its phase-1 prepare for a join is frozen in the network. The
// next-oldest member must take over, re-run the wedge/flush, and the join —
// re-submitted by the requester with its stable request id — must complete at
// the survivors with exactly one view installation per change.
func TestScenarioCoordinatorCrashMidFlushJoinCompletes(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "takeover", 1, 2)
	gid := groupOf(t, tc, procs[0], "takeover")

	joiner := tc.newProc(3)
	if _, err := tc.daemons[3].Lookup("takeover"); err != nil {
		t.Fatal(err)
	}

	// Freeze the coordinator's traffic toward the other member so the flush
	// cannot finish, then crash the coordinator mid-protocol.
	tc.net.PauseLink(1, 2)
	done := make(chan joinResult, 1)
	go func() {
		v, err := tc.daemons[3].Join(joiner.addr, gid, JoinOptions{})
		done <- joinResult{v, err}
	}()
	time.Sleep(200 * time.Millisecond) // request reaches site 1; its prepare is held
	tc.daemons[1].Close()
	tc.net.ResumeAll()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("join across coordinator crash: %v", r.err)
		}
		if !r.view.Contains(joiner.addr) {
			t.Errorf("join returned a view without the joiner: %v", r.view)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join never completed after the coordinator crash")
	}

	// Survivors converge on {old member at site 2, joiner}.
	waitFor(t, "final takeover view at the survivors", 10*time.Second, func() bool {
		v2, v3 := procs[1].lastView(), joiner.lastView()
		return v2.Size() == 2 && v2.Contains(joiner.addr) && !v2.Contains(procs[0].addr) &&
			v3.Size() == 2 && v3.Contains(joiner.addr)
	})
	assertViewIDsStrictlyIncreasing(t, "survivor", procs[1])
	assertViewIDsStrictlyIncreasing(t, "joiner", joiner)

	// The group keeps working under its new coordinator.
	if _, err := tc.daemons[2].Multicast(procs[1].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("post-takeover")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-takeover delivery at the joiner", 5*time.Second, func() bool {
		return joiner.got("post-takeover")
	})
}

// TestScenarioCoordinatorCrashAfterPartialCommitDedupes crashes the
// coordinator after its commit reached the surviving member but before its
// answer reached the requester. The re-submitted request (same stable id)
// must be answered by the successor from the commit record — executed zero
// additional times — and the requester's site must still converge on the
// final view via the successor's forced takeover flush.
func TestScenarioCoordinatorCrashAfterPartialCommitDedupes(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "dedupe", 1, 2)
	gid := groupOf(t, tc, procs[0], "dedupe")

	joiner := tc.newProc(3)
	if _, err := tc.daemons[3].Lookup("dedupe"); err != nil {
		t.Fatal(err)
	}

	// Hold everything from the coordinator toward the requester: the commit
	// reaches site 2, but neither the commit nor the gbDone answer reaches
	// site 3.
	tc.net.PauseLink(1, 3)
	done := make(chan joinResult, 1)
	go func() {
		v, err := tc.daemons[3].Join(joiner.addr, gid, JoinOptions{})
		done <- joinResult{v, err}
	}()
	waitFor(t, "join commit at the surviving member", 5*time.Second, func() bool {
		return procs[1].lastView().Size() == 3
	})
	tc.daemons[1].Close()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("re-submitted join: %v", r.err)
		}
		if !r.view.Contains(joiner.addr) {
			t.Errorf("join answered with a view without the joiner: %v", r.view)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("re-submitted join never completed")
	}

	waitFor(t, "final views after the takeover flush", 10*time.Second, func() bool {
		v2, v3 := procs[1].lastView(), joiner.lastView()
		return v2.Size() == 2 && v2.Contains(joiner.addr) &&
			v3.Size() == 2 && v3.Contains(joiner.addr)
	})

	// The successor must have executed exactly one GBCAST protocol run: the
	// forced takeover flush. The re-submitted join was answered from the
	// commit record (gbSeq/gbDone dedupe), not executed a second time.
	if got := tc.daemons[2].Counters().GBCASTs; got != 1 {
		t.Errorf("successor executed %d GBCAST protocol runs, want 1 (takeover flush only)", got)
	}
	assertViewIDsStrictlyIncreasing(t, "survivor", procs[1])
	assertViewIDsStrictlyIncreasing(t, "joiner", joiner)

	// Release the dead coordinator's held commit: it is a stale view (same
	// id as one already superseded) and a completed request id, so it must
	// change nothing.
	tc.net.ResumeAll()
	time.Sleep(300 * time.Millisecond)
	assertViewIDsStrictlyIncreasing(t, "survivor after stale commit", procs[1])
	assertViewIDsStrictlyIncreasing(t, "joiner after stale commit", joiner)
	if v := procs[1].lastView(); v.Size() != 2 {
		t.Errorf("stale commit disturbed the final view: %v", v)
	}

	if _, err := tc.daemons[2].Multicast(procs[1].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("settled")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery at the joiner after settling", 5*time.Second, func() bool {
		return joiner.got("settled")
	})
}

// TestScenarioCoordinatorLeaveCrashResyncsStaleMember has the coordinator's
// own member leave the group; the commit reaches the successor but not the
// third member, and the coordinator site then crashes. The successor's
// current view holds no member at the dead site, but it must still run a
// forced re-sync flush (the dead site hosted members one view ago) so the
// member left behind catches up instead of keeping the stale view forever.
func TestScenarioCoordinatorLeaveCrashResyncsStaleMember(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "resync", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "resync")

	// The commit removing the coordinator's member reaches site 2 only.
	tc.net.PauseLink(1, 3)
	if err := tc.daemons[1].Leave(procs[0].addr, gid); err != nil {
		t.Fatalf("leave: %v", err)
	}
	waitFor(t, "leave commit at the successor", 5*time.Second, func() bool {
		return procs[1].lastView().Size() == 2
	})
	tc.daemons[1].Close()

	waitFor(t, "stale member resynced by the takeover flush", 10*time.Second, func() bool {
		v := procs[2].lastView()
		return v.Size() == 2 && !v.Contains(procs[0].addr)
	})
	assertViewIDsStrictlyIncreasing(t, "successor", procs[1])
	assertViewIDsStrictlyIncreasing(t, "resynced member", procs[2])

	// The resynced member participates in new traffic.
	if _, err := tc.daemons[2].Multicast(procs[1].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("caught-up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery at the resynced member", 5*time.Second, func() bool {
		return procs[2].got("caught-up")
	})
}

// TestScenarioAbcastFromCrashedSenderDiscarded crashes an ABCAST sender's
// site during phase 1, before any member learned a final priority. The
// takeover flush must apply the "none" branch of the atomicity rule: the
// message is discarded everywhere and never delivered.
func TestScenarioAbcastFromCrashedSenderDiscarded(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "atomic", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "atomic")

	// Phase 1 reaches site 2 (a pending, uncommitted proposal) but never
	// site 3; the sender dies before its watchdog can commit.
	tc.net.PauseLink(1, 3)
	if _, err := tc.daemons[1].Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("doomed")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	tc.daemons[1].Close()

	waitFor(t, "failure views at the survivors", 10*time.Second, func() bool {
		return procs[1].lastView().Size() == 2 && procs[2].lastView().Size() == 2
	})
	// Release the held phase-1 straggler: the sender is now a known-failed
	// process, so it must be dropped on arrival.
	tc.net.ResumeAll()
	time.Sleep(300 * time.Millisecond)
	if procs[1].got("doomed") || procs[2].got("doomed") {
		t.Error("uncommitted ABCAST from the crashed sender was delivered")
	}

	// The survivors' total order still works.
	if _, err := tc.daemons[2].Multicast(procs[1].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("alive")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-crash ABCAST at the survivors", 10*time.Second, func() bool {
		return procs[1].got("alive") && procs[2].got("alive")
	})
}

// TestScenarioAbcastPartialCommitFinishedByTakeoverFlush crashes an ABCAST
// sender's site after its commit reached one member but not the other. The
// takeover flush must apply the "all" branch of the atomicity rule: the
// member that missed the commit delivers the message (exactly once) through
// the flush's re-dissemination, before the failure view.
func TestScenarioAbcastPartialCommitFinishedByTakeoverFlush(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "finish", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "finish")

	// Site 3 sees neither phase 1 nor the commit; site 2 commits and
	// delivers once the sender's watchdog fires.
	tc.net.PauseLink(1, 3)
	if _, err := tc.daemons[1].Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("keep")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "commit at site 2", 5*time.Second, func() bool { return procs[1].got("keep") })
	tc.daemons[1].Close()

	waitFor(t, "failure views at the survivors", 10*time.Second, func() bool {
		return procs[1].lastView().Size() == 2 && procs[2].lastView().Size() == 2
	})
	waitFor(t, "flush re-dissemination at site 3", 5*time.Second, func() bool {
		return procs[2].got("keep")
	})

	// Releasing the held phase-1/commit stragglers must not re-deliver.
	tc.net.ResumeAll()
	time.Sleep(300 * time.Millisecond)
	if n := countBody(procs[1], "keep"); n != 1 {
		t.Errorf("site 2 delivered the ABCAST %d times, want 1", n)
	}
	if n := countBody(procs[2], "keep"); n != 1 {
		t.Errorf("site 3 delivered the ABCAST %d times, want 1", n)
	}
}

// TestScenarioLossyLinkViewChange runs a membership change over links that
// drop a fifth of all packets: the transport's retransmission must carry the
// GBCAST through, every survivor must converge on the same final view, and
// no view may be installed twice.
func TestScenarioLossyLinkViewChange(t *testing.T) {
	det := fdetect.Config{
		HeartbeatInterval: 20 * time.Millisecond,
		InitialTimeout:    time.Second,
		MinTimeout:        800 * time.Millisecond,
		MaxTimeout:        2 * time.Second,
		DeviationFactor:   6,
	}
	tc := newFaultCluster(t, 3, simnet.LossyConfig(0.2, 11), 2*time.Second, det)
	procs := buildGroup(t, tc, "lossy", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "lossy")

	const k = 10
	for i := 0; i < k; i++ {
		if _, err := tc.daemons[1].Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("l%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.daemons[2].Leave(procs[1].addr, gid); err != nil {
		t.Fatalf("leave under loss: %v", err)
	}
	waitFor(t, "converged post-leave views", 10*time.Second, func() bool {
		v1, v3 := procs[0].lastView(), procs[2].lastView()
		return v1.Size() == 2 && v3.Size() == 2 &&
			!v1.Contains(procs[1].addr) && !v3.Contains(procs[1].addr)
	})
	waitFor(t, "all pre-leave CBCASTs despite loss", 10*time.Second, func() bool {
		for i := 0; i < k; i++ {
			if !procs[2].got(fmt.Sprintf("l%02d", i)) {
				return false
			}
		}
		return true
	})
	assertViewIDsStrictlyIncreasing(t, "member 1", procs[0])
	assertViewIDsStrictlyIncreasing(t, "member 3", procs[2])
}

// TestDuplicateGbCommitReplayIsStale replays GBCAST commits directly into a
// member site: a membership commit carrying the already-installed view id
// must not re-install it or re-notify members, and a user-payload commit
// with an already-applied request id must not deliver its payload again.
func TestDuplicateGbCommitReplayIsStale(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "replay", 1, 2)
	gid := groupOf(t, tc, procs[0], "replay")
	d2 := tc.daemons[2]

	before := procs[1].numViews()
	v, ok := d2.CurrentView(gid)
	if !ok {
		t.Fatal("no current view at site 2")
	}
	commit := msg.New()
	commit.PutAddress(fGroup, gid)
	commit.PutInt(fGbID, 99)
	commit.PutInt(fKind, gbJoin)
	commit.PutAddressList(fProcs, addr.List{procs[1].addr})
	commit.PutMessage(fView, encodeView(v))
	d2.applyGbCommit(1, commit)
	time.Sleep(100 * time.Millisecond)
	if got := procs[1].numViews(); got != before {
		t.Errorf("replayed view commit re-notified the member: %d views -> %d", before, got)
	}

	uc := msg.New()
	uc.PutAddress(fGroup, gid)
	uc.PutInt(fKind, gbUser)
	uc.PutInt(fReqID, 4242)
	uc.PutAddress(fSender, procs[0].addr)
	uc.PutInt(fEntry, int64(addr.EntryUserBase))
	uc.PutMessage(fPayload, body("once"))
	d2.applyGbCommit(1, uc)
	d2.applyGbCommit(1, uc.Clone())
	waitFor(t, "user GBCAST payload", 2*time.Second, func() bool { return procs[1].got("once") })
	time.Sleep(100 * time.Millisecond)
	if n := countBody(procs[1], "once"); n != 1 {
		t.Errorf("replayed user GBCAST delivered %d times, want 1", n)
	}
}

// TestFlushRedeliveryDoesNotDuplicateAbcast injects a pending ABCAST at a
// member site, applies a GBCAST flush commit that re-disseminates the same
// message (another member site delivered it before the flush), and then
// hands the member the late ABCAST commit that was in flight when the group
// wedged: the member must see the message exactly once.
func TestFlushRedeliveryDoesNotDuplicateAbcast(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "noDup", 1, 2)
	gid := groupOf(t, tc, procs[0], "noDup")
	d2 := tc.daemons[2]

	// A phase-1 ABCAST from the member at site 1 leaves a pending,
	// uncommitted entry in the site-2 member's total queue.
	id := core.MsgID{Sender: procs[0].addr, Seq: 77}
	v, ok := d2.CurrentView(gid)
	if !ok {
		t.Fatal("no view at site 2")
	}
	pkt := d2.buildDataPacket(ABCAST, gid, v.ID, id, procs[0].addr, v.RankOf(procs[0].addr), addr.EntryUserBase, body("exactly-once"))
	d2.handleData(1, pkt.Clone())

	// The flush re-disseminates it because some member site delivered it
	// before the flush point, so the commit's report lists it under Recent.
	rec := pendingReport{Recent: []recentWire{{ID: id, Packet: pkt}}}
	commit := msg.New()
	commit.PutAddress(fGroup, gid)
	commit.PutInt(fKind, gbUser)
	commit.PutMessage(fRebcast, encodePendingReport(rec))
	d2.applyGbCommit(1, commit)
	waitFor(t, "flush re-dissemination", 2*time.Second, func() bool {
		return procs[1].got("exactly-once")
	})

	// The late commit for the still-pending entry must only advance the
	// queue state, not deliver a second copy.
	late := msg.New()
	late.PutAddress(fGroup, gid)
	putMsgID(late, id)
	late.PutInt(fPriority, 9)
	d2.handleAbCommit(1, late)
	time.Sleep(100 * time.Millisecond)
	if n := countBody(procs[1], "exactly-once"); n != 1 {
		t.Errorf("member delivered the flushed ABCAST %d times, want exactly 1", n)
	}
}

// TestFailedRelayDoesNotConsumeSequence forces an external-sender CBCAST
// relay to fail at view resolution (the group is unreachable) and then
// verifies that later relays from the same sender are delivered: a sequence
// number consumed by the failed attempt would leave a permanent hole and
// stall every later relayed CBCAST in the receiver's causal queue.
func TestFailedRelayDoesNotConsumeSequence(t *testing.T) {
	tc := newFaultCluster(t, 2, simnet.FastConfig(), 300*time.Millisecond, scenarioDetector())
	member := tc.newProc(1)
	view, err := tc.daemons[1].CreateGroup(member.addr, "gap")
	if err != nil {
		t.Fatal(err)
	}
	gid := view.Group
	client := tc.newProc(2)

	// The client's daemon has never resolved the group; with the link cut,
	// the relay fails during view resolution.
	tc.net.Partition(1, 2)
	if _, err := tc.daemons[2].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("lost")); err == nil {
		t.Fatal("relay to an unreachable group should fail")
	}
	tc.net.Heal(1, 2)
	waitFor(t, "suspicion to clear after heal", 5*time.Second, func() bool {
		return len(tc.daemons[2].SuspectedSites()) == 0
	})

	for _, b := range []string{"first", "second"} {
		if _, err := tc.daemons[2].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(b)); err != nil {
			t.Fatalf("relay after heal: %v", err)
		}
	}
	waitFor(t, "relayed CBCASTs at the member", 5*time.Second, func() bool {
		return member.numMsgs() >= 2
	})
	bs := member.bodies()
	if bs[0] != "first" || bs[1] != "second" {
		t.Fatalf("relayed deliveries = %v (a hole in the FIFO sequence stalls the causal queue)", bs)
	}
}
