package protos

// Regression tests for the relayed-multicast acknowledgement: a relay
// arriving at a coordinator that cannot fan it out — a non-primary minority
// copy, or a site that no longer hosts the group — is refused with the
// sentinel error travelling back over the wire, instead of being dropped
// with the sender none the wiser. A refused CBCAST relay also rolls its
// per-sender FIFO sequence back, so the refusal leaves no hole that would
// stall later relays in the receivers' causal queues.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/simnet"
)

// TestRelayRefusedByNonPrimaryCoordinator strands a group member and an
// external client together in a minority partition. The client's relay
// reaches the minority coordinator, whose copy is wedged read-only; the
// refusal must surface to the client as ErrNonPrimary (reconstructed from
// the wire), and after the partition heals and the minority merges back the
// client's next relay must be delivered — proof the refused relay consumed
// no FIFO sequence number.
func TestRelayRefusedByNonPrimaryCoordinator(t *testing.T) {
	tc := newFaultCluster(t, 4, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "refuse", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "refuse")

	// The client resolves the group before the partition so its daemon holds
	// a cached view naming all three member sites.
	client := tc.newProc(4)
	if _, err := tc.daemons[4].Lookup("refuse"); err != nil {
		t.Fatal(err)
	}

	// Partition {3,4} away from {1,2}: the member at site 3 becomes a
	// minority of one and wedges non-primary; the client can only reach it.
	for _, cut := range [][2]simnet.SiteID{{3, 1}, {3, 2}, {4, 1}, {4, 2}} {
		tc.net.Partition(cut[0], cut[1])
	}
	waitFor(t, "minority copy wedges non-primary", 10*time.Second, func() bool {
		return !tc.daemons[3].GroupPrimary(gid)
	})
	waitFor(t, "client suspects the majority sites", 10*time.Second, func() bool {
		suspected := map[addr.SiteID]bool{}
		for _, s := range tc.daemons[4].SuspectedSites() {
			suspected[s] = true
		}
		return suspected[1] && suspected[2]
	})

	if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("refused")); !errors.Is(err, ErrNonPrimary) {
		t.Fatalf("relay into a non-primary partition returned %v, want ErrNonPrimary", err)
	}

	// Heal: the minority merges back; the client's next relay must carry the
	// first FIFO sequence number and reach the members.
	tc.net.HealAll()
	waitFor(t, "minority merges back into the primary", 20*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 3 && v.Contains(procs[2].addr) && tc.daemons[3].GroupPrimary(gid)
	})
	waitFor(t, "post-heal relay delivered", 10*time.Second, func() bool {
		if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-heal")); err != nil {
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return procs[0].got("after-heal")
	})
	if procs[0].got("refused") || procs[1].got("refused") {
		t.Error("a refused relay was delivered anyway")
	}
}

// TestRelayToVanishedGroupSurfacesError relays to a group whose only member
// has left: the stale cached view routes the relay to a site that no longer
// hosts the group, the refusal comes back as ErrUnknownGroup, the automatic
// view refresh finds the group gone, and the sender gets the sentinel
// instead of a silent drop.
func TestRelayToVanishedGroupSurfacesError(t *testing.T) {
	tc := newTestCluster(t, 2)
	member := tc.newProc(1)
	if _, err := tc.daemons[1].CreateGroup(member.addr, "vanish"); err != nil {
		t.Fatal(err)
	}
	client := tc.newProc(2)
	gid, err := tc.daemons[2].Lookup("vanish")
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.daemons[1].Leave(member.addr, gid); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.daemons[2].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("ghost")); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("relay to a vanished group returned %v, want ErrUnknownGroup", err)
	}
}
