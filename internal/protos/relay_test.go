package protos

// Regression tests for the relayed-multicast acknowledgement: a relay
// arriving at a coordinator that cannot fan it out — a non-primary minority
// copy, or a site that no longer hosts the group — is refused with the
// sentinel error travelling back over the wire, instead of being dropped
// with the sender none the wiser. A refused CBCAST relay also rolls its
// per-sender FIFO sequence back, so the refusal leaves no hole that would
// stall later relays in the receivers' causal queues.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/simnet"
)

// TestRelayRefusedByNonPrimaryCoordinator strands a group member and an
// external client together in a minority partition. The client's relay
// reaches the minority coordinator, whose copy is wedged read-only; the
// refusal must surface to the client as ErrNonPrimary (reconstructed from
// the wire), and after the partition heals and the minority merges back the
// client's next relay must be delivered — proof the refused relay consumed
// no FIFO sequence number.
func TestRelayRefusedByNonPrimaryCoordinator(t *testing.T) {
	tc := newFaultCluster(t, 4, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "refuse", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "refuse")

	// The client resolves the group before the partition so its daemon holds
	// a cached view naming all three member sites.
	client := tc.newProc(4)
	if _, err := tc.daemons[4].Lookup("refuse"); err != nil {
		t.Fatal(err)
	}

	// Partition {3,4} away from {1,2}: the member at site 3 becomes a
	// minority of one and wedges non-primary; the client can only reach it.
	for _, cut := range [][2]simnet.SiteID{{3, 1}, {3, 2}, {4, 1}, {4, 2}} {
		tc.net.Partition(cut[0], cut[1])
	}
	waitFor(t, "minority copy wedges non-primary", 10*time.Second, func() bool {
		return !tc.daemons[3].GroupPrimary(gid)
	})
	waitFor(t, "client suspects the majority sites", 10*time.Second, func() bool {
		suspected := map[addr.SiteID]bool{}
		for _, s := range tc.daemons[4].SuspectedSites() {
			suspected[s] = true
		}
		return suspected[1] && suspected[2]
	})

	if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("refused")); !errors.Is(err, ErrNonPrimary) {
		t.Fatalf("relay into a non-primary partition returned %v, want ErrNonPrimary", err)
	}

	// Heal: the minority merges back; the client's next relay must carry the
	// first FIFO sequence number and reach the members.
	tc.net.HealAll()
	waitFor(t, "minority merges back into the primary", 20*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 3 && v.Contains(procs[2].addr) && tc.daemons[3].GroupPrimary(gid)
	})
	waitFor(t, "post-heal relay delivered", 10*time.Second, func() bool {
		if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-heal")); err != nil {
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return procs[0].got("after-heal")
	})
	if procs[0].got("refused") || procs[1].got("refused") {
		t.Error("a refused relay was delivered anyway")
	}
}

// TestRelayTimeoutLateRefusalRollsBack pins the FIFO reconciliation for a
// relay whose refusal arrives only after the caller timed out. The client's
// relay to the coordinator is cut off mid-flight, so the call gives up while
// the request sits queued in the reliable transport; when the link heals the
// isolated coordinator — wedged non-primary by then — finally refuses it.
// No later sequence number was handed out, so the late refusal must roll the
// client's FIFO counter back (observable as the CBCAST counter returning to
// zero), and the client's next relay must reuse the number and be delivered.
// Before the repair machinery the late refusal was silently dropped and the
// consumed number stalled every later relay in the receivers' causal queues.
func TestRelayTimeoutLateRefusalRollsBack(t *testing.T) {
	tc := newFaultCluster(t, 4, simnet.FastConfig(), 500*time.Millisecond, scenarioDetector())
	procs := buildGroup(t, tc, "latehole", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "latehole")

	client := tc.newProc(4)
	if _, err := tc.daemons[4].Lookup("latehole"); err != nil {
		t.Fatal(err)
	}

	// Isolate the coordinator site and relay immediately, before the client's
	// detector can suspect it: the relay is addressed to site 1, queued in the
	// transport, and the call fails with timeout or a detector abort — either
	// way the sequence number stands and the call remains tracked.
	for _, s := range []simnet.SiteID{2, 3, 4} {
		tc.net.Partition(1, s)
	}
	if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("lost")); err == nil {
		t.Fatal("relay to an isolated coordinator unexpectedly succeeded")
	}
	if got := tc.daemons[4].Counters().CBCASTs; got != 1 {
		t.Fatalf("timed-out relay consumed %d sequence numbers, want 1 (kept pending the outcome)", got)
	}

	// The majority excises the member at site 1; the isolated copy wedges
	// non-primary, which is what will refuse the queued relay.
	waitFor(t, "majority reforms without site 1", 10*time.Second, func() bool {
		return procs[1].lastView().Size() == 2 && !tc.daemons[1].GroupPrimary(gid)
	})

	// Heal only the client↔coordinator link: the transport retransmits the
	// relay, the wedged minority copy refuses it, and the late refusal must
	// roll the client's FIFO sequence back.
	tc.net.Heal(4, 1)
	waitFor(t, "late refusal rolls the FIFO sequence back", 10*time.Second, func() bool {
		return tc.daemons[4].Counters().CBCASTs == 0
	})

	// Full heal: after the minority merges back the client's next relay must
	// reuse the rolled-back number and reach the members.
	tc.net.HealAll()
	waitFor(t, "minority merges back into the primary", 20*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 3 && tc.daemons[1].GroupPrimary(gid)
	})
	waitFor(t, "post-repair relay delivered", 10*time.Second, func() bool {
		if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-repair")); err != nil {
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return procs[0].got("after-repair") && procs[1].got("after-repair")
	})
	if procs[0].got("lost") || procs[1].got("lost") {
		t.Error("the refused relay was delivered anyway")
	}
}

// TestRelayTimeoutLateRefusalFillsHole pins the null-filler path: by the
// time the late refusal lands, the client has already relayed again through
// the surviving coordinator, so its FIFO counter cannot be rolled back. The
// second relay sits undeliverable in every receiver's external-sender queue
// behind the orphaned first number until the repair machinery relays a null
// filler that consumes the hole without delivering anything.
func TestRelayTimeoutLateRefusalFillsHole(t *testing.T) {
	tc := newFaultCluster(t, 4, simnet.FastConfig(), 500*time.Millisecond, scenarioDetector())
	procs := buildGroup(t, tc, "fillhole", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "fillhole")

	client := tc.newProc(4)
	if _, err := tc.daemons[4].Lookup("fillhole"); err != nil {
		t.Fatal(err)
	}

	// Relay #1 (sequence 1) dies against the freshly isolated coordinator.
	for _, s := range []simnet.SiteID{2, 3, 4} {
		tc.net.Partition(1, s)
	}
	if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("first")); err == nil {
		t.Fatal("relay to an isolated coordinator unexpectedly succeeded")
	}

	waitFor(t, "majority reforms without site 1", 10*time.Second, func() bool {
		return procs[1].lastView().Size() == 2 && !tc.daemons[1].GroupPrimary(gid)
	})
	waitFor(t, "client suspects the isolated coordinator", 10*time.Second, func() bool {
		for _, s := range tc.daemons[4].SuspectedSites() {
			if s == 1 {
				return true
			}
		}
		return false
	})

	// Relay #2 (sequence 2) routes around the suspected coordinator to the
	// surviving members and is accepted — but cannot be delivered: every
	// receiver is waiting for sequence 1.
	if _, err := tc.daemons[4].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("second")); err != nil {
		t.Fatalf("relay via the surviving coordinator: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	if procs[1].got("second") || procs[2].got("second") {
		t.Fatal("sequence 2 delivered before sequence 1 was resolved: FIFO order broken")
	}

	// Heal only the client↔old-coordinator link. The queued relay #1 is
	// refused by the wedged minority copy; the counter is at 2, so the repair
	// must fill sequence 1 with a null message, which unblocks relay #2 at
	// every receiver without delivering relay #1 anywhere.
	tc.net.Heal(4, 1)
	waitFor(t, "null filler unblocks the held relay", 15*time.Second, func() bool {
		return procs[1].got("second") && procs[2].got("second")
	})
	if procs[1].got("first") || procs[2].got("first") {
		t.Error("the refused relay was delivered anyway")
	}
}

// TestRelayToVanishedGroupSurfacesError relays to a group whose only member
// has left: the stale cached view routes the relay to a site that no longer
// hosts the group, the refusal comes back as ErrUnknownGroup, the automatic
// view refresh finds the group gone, and the sender gets the sentinel
// instead of a silent drop.
func TestRelayToVanishedGroupSurfacesError(t *testing.T) {
	tc := newTestCluster(t, 2)
	member := tc.newProc(1)
	if _, err := tc.daemons[1].CreateGroup(member.addr, "vanish"); err != nil {
		t.Fatal(err)
	}
	client := tc.newProc(2)
	gid, err := tc.daemons[2].Lookup("vanish")
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.daemons[1].Leave(member.addr, gid); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.daemons[2].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("ghost")); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("relay to a vanished group returned %v, want ErrUnknownGroup", err)
	}
}
