package protos

// Relayed-CBCAST FIFO repair.
//
// A non-member CBCAST consumes a per-(sender, group) FIFO sequence number
// before the relay is shipped to the coordinator. Receivers deliver external
// messages strictly in sequence order, so a number consumed by a message
// that is never fanned out is a hole that stalls every later relayed CBCAST
// from that sender. A synchronous refusal is easy: the sender still holds
// relayMu, no later number exists, and the counter is simply rolled back.
// The hard case is a relay whose call TIMES OUT (or is aborted by the
// failure detector) and whose refusal arrives only later — by then the
// sender may have handed out later numbers, so the counter cannot be rolled
// back. This file reconciles that case:
//
//   - every remote relay is tracked in d.lostRelays by call id before the
//     request reaches the wire, so a response that arrives after the caller
//     gave up still finds the sequence number it was for;
//   - a late acceptance needs nothing — the coordinator fanned the message
//     out and the number stands;
//   - a late refusal is repaired under relayMu: if no later number was
//     handed out the counter is rolled back exactly as a synchronous
//     refusal would have been, otherwise a null filler message (fNull) is
//     relayed carrying the orphaned sequence number — it advances every
//     receiver's expected sequence but is never handed to the application;
//   - a filler whose own outcome is unknown parks the hole in d.relayHoles
//     and the resolicit scan retries it; duplicate fillers are harmless
//     because receivers drop external sequences below their expectation.
import (
	"errors"
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/msg"
)

// lostRelay identifies the FIFO sequence a tracked relay call consumed.
type lostRelay struct {
	lp  *localProc
	gid addr.Address
	seq uint64
}

// relayHoleKey dedupes parked holes: at most one repair is outstanding per
// consumed sequence number.
type relayHoleKey struct {
	proc addr.Address
	gid  addr.Address
	seq  uint64
}

func (lr lostRelay) key() relayHoleKey {
	return relayHoleKey{proc: lr.lp.addr.Base(), gid: lr.gid, seq: lr.seq}
}

// maxLostRelays bounds the tracking table. Entries persist only for calls
// that ended in timeout or detector abort, so the bound is a backstop
// against a long-partitioned coordinator, not a working-set size.
const maxLostRelays = 512

// trackLostRelayLocked registers a relay call whose sequence number must be
// reconciled if a response arrives after the caller gave up. Caller holds
// d.mu.
func (d *Daemon) trackLostRelayLocked(id int64, lr lostRelay) {
	d.lostRelays[id] = lr
	d.lostRelayOrder = append(d.lostRelayOrder, id)
	for len(d.lostRelays) > maxLostRelays && len(d.lostRelayOrder) > 0 {
		old := d.lostRelayOrder[0]
		d.lostRelayOrder = d.lostRelayOrder[1:]
		delete(d.lostRelays, old)
	}
	// The order slice keeps ids of entries untracked on a synchronous
	// outcome; compact it before it outgrows the map it bounds.
	if len(d.lostRelayOrder) > 4*maxLostRelays {
		live := d.lostRelayOrder[:0]
		for _, oid := range d.lostRelayOrder {
			if _, ok := d.lostRelays[oid]; ok {
				live = append(live, oid)
			}
		}
		d.lostRelayOrder = live
	}
}

func (d *Daemon) untrackLostRelay(id int64) {
	d.mu.Lock()
	delete(d.lostRelays, id)
	d.mu.Unlock()
}

// relayCBCASTCall ships a relayed CBCAST (which has consumed FIFO sequence
// seq) to the coordinator site and waits for the acknowledgement. Unlike the
// generic call path it keeps the exchange tracked in d.lostRelays whenever
// the outcome is unknown — timeout, or a failure-detector abort — so a
// response that arrives after this function returns is reconciled by
// respond/reconcileLostRelay instead of dropped.
func (d *Daemon) relayCBCASTCall(site addr.SiteID, pkt *msg.Message, lp *localProc, gid addr.Address, seq uint64) error {
	if site == d.site {
		// The local path is synchronous: the outcome is known before the
		// call returns, so no tracking is needed (mirrors relayCall).
		for {
			err := d.relayMulticast(d.site, pkt, false)
			if !errors.Is(err, errRelayHeld) {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}
	id, ch := d.newCall()
	d.mu.Lock()
	d.callSite[id] = site
	// Track before the request can reach the wire: a response cannot race
	// past a registration that precedes the send.
	d.trackLostRelayLocked(id, lostRelay{lp: lp, gid: gid, seq: seq})
	d.mu.Unlock()
	pkt.PutInt(fCall, id)
	if err := d.sendPacket(site, ptData, pkt); err != nil {
		d.untrackLostRelay(id)
		d.dropCall(id)
		return err
	}
	settle := func(resp *msg.Message) error {
		if !resp.Has(fErr) {
			d.untrackLostRelay(id)
			return nil
		}
		err := wireError("protos: remote error: %s", resp.GetString(fErr, "unknown"))
		if errors.Is(err, errSiteFailed) {
			// Detector abort: the request is still queued in the reliable
			// transport and may yet be delivered either way. Keep the entry
			// tracked so the real response reconciles the sequence.
			return err
		}
		d.untrackLostRelay(id)
		return err
	}
	select {
	case resp := <-ch:
		d.dropCall(id)
		return settle(resp)
	case <-time.After(d.cfg.CallTimeout):
		// Unregister the call first, then drain: a response delivered to the
		// channel in the race window is handled here, and anything later is
		// routed through d.lostRelays by respond.
		d.dropCall(id)
		select {
		case resp := <-ch:
			return settle(resp)
		default:
			return ErrTimeout
		}
	}
}

// reconcileLostRelay handles a relay response that arrived after its caller
// gave up. Runs on the transport handler goroutine; d.mu is not held.
func (d *Daemon) reconcileLostRelay(lr lostRelay, resp *msg.Message) {
	if !resp.Has(fErr) {
		// Late acceptance: the coordinator fanned the message out and every
		// receiver consumes the sequence. Nothing to repair.
		return
	}
	err := wireError("protos: remote error: %s", resp.GetString(fErr, "unknown"))
	if errors.Is(err, errSiteFailed) {
		// Defensive: detector aborts are injected into call channels, never
		// through respond, so this cannot happen — but if it did, the
		// outcome would still be unknown and repairing would be wrong.
		return
	}
	// A confirmed refusal: no receiver will ever consume the sequence.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.relayHoles[lr.key()] = lr
	d.mu.Unlock()
	go d.repairRelayHoles()
}

// kickRelayRepair retries parked holes; called from the resolicit scan so a
// filler lost to a coordinator crash is eventually re-sent.
func (d *Daemon) kickRelayRepair() {
	d.mu.Lock()
	pending := len(d.relayHoles) > 0 && !d.repairingHoles && !d.closed
	d.mu.Unlock()
	if pending {
		go d.repairRelayHoles()
	}
}

// repairRelayHoles drains d.relayHoles. At most one drain runs at a time
// (repairingHoles), so concurrent late refusals and scan ticks cannot race
// two repairs of the same hole.
func (d *Daemon) repairRelayHoles() {
	d.mu.Lock()
	if d.repairingHoles || d.closed || len(d.relayHoles) == 0 {
		d.mu.Unlock()
		return
	}
	d.repairingHoles = true
	holes := make([]lostRelay, 0, len(d.relayHoles))
	for _, lr := range d.relayHoles {
		holes = append(holes, lr)
	}
	d.mu.Unlock()
	for _, lr := range holes {
		if d.repairRelayHole(lr) {
			d.mu.Lock()
			delete(d.relayHoles, lr.key())
			d.mu.Unlock()
		}
	}
	d.mu.Lock()
	d.repairingHoles = false
	more := len(d.relayHoles) > 0 && !d.closed
	d.mu.Unlock()
	if more {
		// A refusal parked a new hole while this drain ran; the scan tick
		// would get to it, but there is no reason to wait.
		go d.repairRelayHoles()
	}
}

// repairRelayHole resolves one confirmed-refused sequence number. Returns
// true when the hole no longer needs tracking. Takes relayMu, so repairs
// serialize with the sender's ongoing relays: the rollback-vs-filler
// decision is made against a frozen counter.
func (d *Daemon) repairRelayHole(lr lostRelay) bool {
	lp := lr.lp
	lp.relayMu.Lock()
	defer lp.relayMu.Unlock()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return true
	}
	if lp.extSeq[lr.gid] == lr.seq {
		// No later number was handed out: undo the refusal the cheap way,
		// exactly as a synchronous refusal would have been.
		lp.extSeq[lr.gid]--
		d.counters.CBCASTs--
		d.bus.Publish(events.Event{
			Kind: events.RelayRollback, Group: lr.gid,
			Detail: fmt.Sprintf("seq %d", lr.seq),
		})
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	return d.sendNullRelay(lp, lr.gid, lr.seq)
}

// sendNullRelay fills an orphaned FIFO sequence with a null message: a
// relayed CBCAST carrying fNull that consumes the sequence in every
// receiver's external-sender queue but is never delivered to applications
// (deliverDataLocked drops it). Returns true when the filler was accepted.
func (d *Daemon) sendNullRelay(lp *localProc, gid addr.Address, seq uint64) bool {
	view, ok := d.CurrentView(gid)
	if !ok {
		v, err := d.refreshView(gid)
		if err != nil {
			return false
		}
		view = v
	}
	for attempt := 0; attempt < 2; attempt++ {
		d.mu.Lock()
		coord := d.actingCoordinator(view)
		lp.nextSeq++
		id := core.MsgID{Sender: lp.addr.Base(), Seq: lp.nextSeq}
		d.mu.Unlock()
		if coord.IsNil() {
			return false
		}
		pkt := d.buildDataPacket(CBCAST, gid, view.ID, id, lp.addr, -1, 0, msg.New())
		pkt.PutInt(fRelay, 1)
		pkt.PutInt(fNull, 1)
		pkt.PutInt(fExtSeq, int64(seq))
		err := d.relayCBCASTCall(coord.Site, pkt, lp, gid, seq)
		switch {
		case err == nil:
			d.bus.Publish(events.Event{
				Kind: events.RelayNullFill, Group: gid, Msg: id,
				Detail: fmt.Sprintf("seq %d", seq),
			})
			return true
		case (errors.Is(err, ErrUnknownGroup) || errors.Is(err, ErrNonPrimary)) && attempt == 0:
			// The cached view is stale: the site asked no longer hosts the
			// group, or its copy is wedged in a minority. The primary's
			// sites answer the refresh with a higher view id, which wins
			// the cache; the scan retries if the refresh races them.
			if v, rerr := d.refreshView(gid); rerr == nil {
				view = v
				continue
			}
			return false
		default:
			// Timeout / detector abort leaves the filler tracked in
			// lostRelays and the hole parked; the scan retries. A duplicate
			// filler is harmless — receivers drop stale external sequences.
			return false
		}
	}
	return false
}
