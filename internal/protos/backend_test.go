package protos

// Protos-level backend conformance: one end-to-end group scenario — create,
// join, causal and total-order multicast, site crash with view change, and a
// restart under a bumped incarnation — runs unchanged over the simulated LAN
// and the TCP-loopback wire, proving the protocol stack does not depend on
// simnet-only behaviour.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/netback"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
)

func protosFabrics() []struct {
	name string
	make func() netback.Network
} {
	return []struct {
		name string
		make func() netback.Network
	}{
		{"simnet", func() netback.Network { return simnet.New(simnet.FastConfig()) }},
		{"tcp", func() netback.Network { return tcpnet.New(tcpnet.Config{}) }},
	}
}

func TestBackendGroupScenario(t *testing.T) {
	for _, fc := range protosFabrics() {
		t.Run(fc.name, func(t *testing.T) {
			tc := newTestClusterOn(t, fc.make(), 3)
			procs := buildGroup(t, tc, "conf", 1, 2, 3)
			gid := groupOf(t, tc, procs[0], "conf")

			// Causal multicast reaches every member.
			if _, err := procs[0].d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("hello")); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "CBCAST delivery", 5*time.Second, func() bool {
				for _, p := range procs {
					if !p.got("hello") {
						return false
					}
				}
				return true
			})

			// Concurrent ABCASTs from two members arrive in one total order.
			const perSender = 10
			var wg sync.WaitGroup
			for s := 0; s < 2; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					p := procs[s]
					for i := 0; i < perSender; i++ {
						if _, err := p.d.Multicast(p.addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("ab-s%d-%d", s, i))); err != nil {
							t.Errorf("abcast s%d-%d: %v", s, i, err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			waitFor(t, "ABCAST delivery", 10*time.Second, func() bool {
				for _, p := range procs {
					if p.numMsgs() < 1+2*perSender {
						return false
					}
				}
				return true
			})
			abOrder := func(p *testProc) []string {
				var out []string
				for _, b := range p.bodies() {
					if len(b) > 3 && b[:3] == "ab-" {
						out = append(out, b)
					}
				}
				return out
			}
			ref := abOrder(procs[0])
			for i := 1; i < 3; i++ {
				got := abOrder(procs[i])
				for j := range ref {
					if got[j] != ref[j] {
						t.Fatalf("total order diverges at %d: member %d saw %v, member 0 saw %v", j, i, got, ref)
					}
				}
			}

			// Site 3 crashes; the survivors install the 2-member view.
			tc.daemons[3].Close()
			waitFor(t, "crash view", 10*time.Second, func() bool {
				return procs[0].lastView().Size() == 2 && procs[1].lastView().Size() == 2
			})

			// Site 3 restarts under a bumped incarnation — on the TCP backend
			// this is a mid-stream reconnect with an epoch bump: survivors
			// must accept the fresh numbering and refuse stragglers of the
			// dead incarnation — and a new member there rejoins with a state
			// transfer.
			tc.addSite(3)
			reborn := tc.newProc(3)
			gid3, err := tc.daemons[3].Lookup("conf")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tc.daemons[3].Join(reborn.addr, gid3, JoinOptions{}); err != nil {
				t.Fatalf("rejoin after restart: %v", err)
			}
			waitFor(t, "rejoin view", 10*time.Second, func() bool {
				return procs[0].lastView().Size() == 3 && reborn.lastView().Size() == 3
			})

			// The group is fully live again across the restarted wire.
			if _, err := procs[0].d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-restart")); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "post-restart delivery", 5*time.Second, func() bool {
				return procs[0].got("after-restart") && procs[1].got("after-restart") && reborn.got("after-restart")
			})
		})
	}
}
