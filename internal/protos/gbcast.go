package protos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/msg"
)

// gbWork is one GBCAST to execute: a membership change (join, leave,
// failure) or a user-level GBCAST (including configuration updates). The
// group coordinator serializes these per group and runs the two-phase
// flush/commit protocol for each.
type gbWork struct {
	kind       int64
	gid        addr.Address
	procs      []addr.Address
	wantState  bool
	payload    *msg.Message
	entry      addr.EntryID
	sender     addr.Address
	reqID      int64       // stable request id; survives coordinator fail-over
	sealTarget int64       // gbSeal: the request id whose outcome is being settled
	force      bool        // run the full wedge/flush even if the change is a no-op
	replyTo    addr.SiteID // requester site (0 when local)
	replyCall  int64
	done       chan *msg.Message // local requester waits here (nil otherwise)
}

// handleGbRequest processes a request addressed to this site in its role as
// the group's (acting) coordinator.
func (d *Daemon) handleGbRequest(from addr.SiteID, p *msg.Message) {
	w := &gbWork{
		kind:       p.GetInt(fKind, 0),
		gid:        p.GetAddress(fGroup),
		procs:      p.GetAddressList(fProcs),
		wantState:  p.GetInt(fWantState, 0) == 1,
		payload:    p.GetMessage(fPayload),
		entry:      addr.EntryID(p.GetInt(fEntry, 0)),
		sender:     p.GetAddress(fSender),
		reqID:      p.GetInt(fReqID, 0),
		sealTarget: p.GetInt(fSealReq, 0),
		force:      p.GetInt(fForce, 0) == 1,
		replyTo:    from,
		replyCall:  p.GetInt(fCall, 0),
	}
	if err := d.enqueueGb(w); err != nil {
		d.replyError(from, w.replyCall, err.Error())
	}
}

// localGbRequest executes a gb request originated by a local caller and
// waits for its completion.
func (d *Daemon) localGbRequest(gid addr.Address, req *msg.Message) (*msg.Message, error) {
	w := &gbWork{
		kind:       req.GetInt(fKind, 0),
		gid:        gid.Base(),
		procs:      req.GetAddressList(fProcs),
		wantState:  req.GetInt(fWantState, 0) == 1,
		payload:    req.GetMessage(fPayload),
		entry:      addr.EntryID(req.GetInt(fEntry, 0)),
		sender:     req.GetAddress(fSender),
		reqID:      req.GetInt(fReqID, 0),
		sealTarget: req.GetInt(fSealReq, 0),
		force:      req.GetInt(fForce, 0) == 1,
		done:       make(chan *msg.Message, 1),
	}
	if err := d.enqueueGb(w); err != nil {
		return nil, err
	}
	select {
	case resp := <-w.done:
		if resp != nil && resp.Has(fErr) {
			return nil, wireError("protos: %s", resp.GetString(fErr, "gbcast failed"))
		}
		return resp, nil
	case <-time.After(2 * d.cfg.CallTimeout):
		return nil, ErrTimeout
	}
}

// enqueueGb appends work to the group's queue and starts the per-group
// worker if it is not already running.
func (d *Daemon) enqueueGb(w *gbWork) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	gs, ok := d.groups[w.gid]
	if !ok {
		return ErrUnknownGroup
	}
	gs.gbQueue = append(gs.gbQueue, w)
	if !gs.gbBusy {
		gs.gbBusy = true
		go d.runGbWorker(w.gid)
	}
	return nil
}

// runGbWorker drains one group's GBCAST queue.
func (d *Daemon) runGbWorker(gid addr.Address) {
	for {
		d.mu.Lock()
		gs, ok := d.groups[gid]
		if !ok || len(gs.gbQueue) == 0 {
			if ok {
				gs.gbBusy = false
			}
			d.mu.Unlock()
			return
		}
		w := gs.gbQueue[0]
		gs.gbQueue = gs.gbQueue[1:]
		d.mu.Unlock()
		d.executeGb(w)
	}
}

// executeGb runs the two-phase GBCAST protocol for one unit of work.
func (d *Daemon) executeGb(w *gbWork) {
	d.mu.Lock()
	gs, ok := d.groups[w.gid]
	if !ok {
		d.mu.Unlock()
		d.gbReply(w, nil, ErrUnknownGroup.Error())
		return
	}
	if gs.nonPrimary {
		// This copy of the group is stranded in a minority partition: no
		// view may be installed and no GBCAST committed until the merge
		// protocol rejoins the primary.
		d.mu.Unlock()
		d.gbReply(w, nil, ErrNonPrimary.Error())
		return
	}
	if w.reqID != 0 && gbCommittedLocked(gs, w.reqID) {
		// The request already committed — typically under a previous
		// coordinator that died after sending its commit but before
		// answering the requester. Answer with the current view instead of
		// executing the protocol a second time.
		resp := msg.New()
		resp.PutMessage(fView, encodeView(gs.view))
		d.mu.Unlock()
		d.gbReply(w, resp, "")
		return
	}
	oldView := gs.view.Clone()
	gs.gbSeq++
	seq := gs.gbSeq
	d.counters.GBCASTs++
	d.mu.Unlock()

	// Skip no-op membership changes (a failure already handled, or a
	// re-submitted join whose commit already reached this site) — unless
	// the work is a forced takeover flush, which must run the full
	// protocol precisely because other members may not have seen the
	// commit that made it a no-op here.
	if !w.force {
		switch w.kind {
		case gbFail, gbLeave:
			all := true
			for _, p := range w.procs {
				if oldView.Contains(p) {
					all = false
					break
				}
			}
			if all {
				resp := msg.New()
				resp.PutMessage(fView, encodeView(oldView))
				d.gbReply(w, resp, "")
				return
			}
		case gbJoin:
			all := true
			for _, p := range w.procs {
				if !oldView.Contains(p) {
					all = false
					break
				}
			}
			if all {
				resp := msg.New()
				resp.PutMessage(fView, encodeView(oldView))
				d.gbReply(w, resp, "")
				return
			}
		}
	}

	// Phase 1: wedge every member site of the old view and collect pending
	// state reports, along with each member's current view.
	prepare := msg.New()
	prepare.PutAddress(fGroup, w.gid)
	prepare.PutInt(fGbID, int64(seq))
	prepare.PutInt(fViewID, int64(oldView.ID))
	if w.kind == gbFail && len(w.procs) > 0 {
		// Failure removals name their targets in the prepare, so each
		// member site can corroborate (or dispute) the claimed deaths of the
		// processes it hosts.
		prepare.PutAddressList(fProcs, w.procs)
	}
	if w.kind == gbSeal && w.sealTarget != 0 {
		// Outcome settlement: each member site reports its first-hand
		// knowledge of the target request id in its ack. One positive
		// report suffices — a commit that reached any survivor counts as
		// committed, even when this (successor) coordinator missed it.
		prepare.PutInt(fSealReq, w.sealTarget)
	}
	sealCommitted := false

	reports := make(map[addr.SiteID]pendingReport)
	views := make(map[addr.SiteID]core.View)
	deadAck := make(map[addr.SiteID]addr.List)
	var repMu sync.Mutex
	var wg sync.WaitGroup
	for _, site := range oldView.SitesOf() {
		if site == d.site {
			rep, _ := d.prepareLocal(w.gid)
			repMu.Lock()
			reports[d.site] = rep
			repMu.Unlock()
			if w.kind == gbSeal && w.sealTarget != 0 {
				d.mu.Lock()
				if own, ok := d.groups[w.gid]; ok && gbOutcomeVoteLocked(own, w.sealTarget) == voteCommitted {
					sealCommitted = true
				}
				d.mu.Unlock()
			}
			continue
		}
		d.mu.Lock()
		dead := d.suspected[site]
		d.mu.Unlock()
		if dead {
			continue
		}
		wg.Add(1)
		go func(site addr.SiteID) {
			defer wg.Done()
			// Retry a failed prepare while the member site is still believed
			// alive: silently treating a transient call failure as a site
			// death would let this coordinator mint a view id the unreached
			// member may already hold with different contents (it would then
			// drop the commit as stale and diverge). Once the detector
			// declares the site dead, its members are removed later and the
			// missing report is legitimate. Calls to a site declared dead
			// mid-exchange abort immediately (failCallsTo), so the retries
			// never outlive the suspicion.
			var resp *msg.Message
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				// Clone per call: d.call stamps a per-exchange call id into
				// the body, and these calls run concurrently.
				resp, err = d.call(site, ptGbPrepare, prepare.Clone())
				if err == nil {
					break
				}
				d.mu.Lock()
				dead := d.suspected[site]
				d.mu.Unlock()
				if dead {
					return // treat as failed; its members will be removed later
				}
			}
			if err != nil {
				return
			}
			repMu.Lock()
			reports[site] = decodePendingReport(resp.GetMessage(fPending))
			if v := decodeView(resp.GetMessage(fView)); v.ID > 0 {
				views[site] = v
			}
			deadAck[site] = resp.GetAddressList(fDead)
			if resp.GetInt(fOutcome, 0) == voteCommitted {
				sealCommitted = true
			}
			repMu.Unlock()
		}(site)
	}
	wg.Wait()

	// Corroborate failure removals: a target whose hosting site answered the
	// prepare and vouches for the process must not be removed. A failure
	// claim is honoured only when the hosting site is unreachable, confirms
	// the death itself (a locally detected process crash, or a ghost of a
	// previous incarnation), or the coordinator has its own evidence. This
	// is what stops a stale takeover request — e.g. one a wedged minority
	// sent toward a presumed-dead coordinator, queued in the reliable
	// transport and retransmitted across the partition heal — from removing
	// perfectly healthy members.
	if w.kind == gbFail {
		kept := make([]addr.Address, 0, len(w.procs))
		d.mu.Lock()
		for _, pr := range w.procs {
			if _, reached := reports[pr.Site]; !reached {
				kept = append(kept, pr)
				continue
			}
			confirmed := d.failedProcs[pr.Base()]
			if pr.Site == d.site {
				lp, ok := d.procs[pr.Base()]
				if !ok || !lp.alive {
					confirmed = true
				}
			} else if deadAck[pr.Site].Contains(pr) {
				confirmed = true
			}
			if confirmed {
				kept = append(kept, pr)
			}
		}
		d.mu.Unlock()
		w.procs = kept
	}

	// A coordinator taking over from one that died mid-commit may find
	// members already at a later view than its own: base the change on the
	// most advanced view any member reports, so the dead coordinator's
	// partially completed commit is finished (re-run, idempotently) rather
	// than contradicted by a conflicting view with the same id.
	base := oldView
	for _, v := range views {
		if v.Group == base.Group && v.ID > base.ID {
			base = v.Clone()
		}
	}

	// Primary-partition rule: only the partition holding at least half of
	// the last agreed view's members may commit. A coordinator that reached
	// fewer wedges its side of the group into non-primary mode instead of
	// minting a split-brain view; the partition that retains the majority
	// keeps committing, and the minority rejoins through the merge protocol
	// once the partition heals. Exactly half passes, so a group that loses
	// half its members to a genuine crash (the paper's 2-member fail-over
	// scenarios) stays available; the cost is that an exactly-even split is
	// resolved in favour of availability on both sides — deploy odd
	// replication degrees where strict primary-partition semantics matter.
	if d.cfg.Merge != MergeNone {
		votes := 0
		for _, m := range base.Members {
			if _, reached := reports[m.Site]; reached {
				votes++
			}
		}
		if votes*2 < len(base.Members) {
			d.enterNonPrimary(w.gid, reports)
			d.gbReply(w, nil, ErrNonPrimary.Error())
			return
		}
	}

	// Compute the new view.
	newView := base
	switch w.kind {
	case gbJoin:
		if !allContained(base, w.procs) {
			newView = base.WithJoined(w.procs...)
		}
	case gbLeave, gbFail:
		if anyContained(base, w.procs) {
			newView = base.WithRemoved(w.procs...)
		}
		// Otherwise every member being removed is already gone from the
		// most advanced view: this is a pure re-synchronising flush, so the
		// commit re-announces that view without minting a new id (members
		// already there treat it as stale and only unwedge; members behind
		// catch up to it).
	case gbUser, gbConfigHint, gbSeal:
		newView = base // unchanged; the GBCAST only carries a payload
	}

	// Reconcile pending state across members so that the atomicity rule
	// holds: an ABCAST committed anywhere is committed everywhere; an
	// ABCAST from a failed sender that no member committed is discarded; a
	// message delivered at some member but missed by another is
	// re-disseminated before the GBCAST point.
	rec := reconcile(reports, w.kind == gbFail, w.procs)

	// Phase 2: commit at every member site of old, base, and new views.
	commit := msg.New()
	commit.PutAddress(fGroup, w.gid)
	commit.PutInt(fGbID, int64(seq))
	commit.PutInt(fKind, w.kind)
	commit.PutAddressList(fProcs, w.procs)
	commit.PutMessage(fView, encodeView(newView))
	commit.PutMessage(fRebcast, encodePendingReport(rec))
	if w.reqID != 0 {
		commit.PutInt(fReqID, w.reqID)
	}
	if w.kind == gbSeal && w.sealTarget != 0 {
		commit.PutInt(fSealReq, w.sealTarget)
		if sealCommitted {
			commit.PutInt(fOutcome, voteCommitted)
		} else {
			commit.PutInt(fOutcome, voteAborted)
		}
	}
	if w.wantState {
		commit.PutInt(fWantState, 1)
	}
	if w.payload != nil {
		commit.PutMessage(fPayload, w.payload)
		commit.PutInt(fEntry, int64(w.entry))
		commit.PutAddress(fSender, w.sender)
	}

	targets := map[addr.SiteID]bool{}
	for _, s := range oldView.SitesOf() {
		targets[s] = true
	}
	for _, s := range base.SitesOf() {
		targets[s] = true
	}
	for _, s := range newView.SitesOf() {
		targets[s] = true
	}
	// The commit is marshalled once; all member sites share the encoding.
	if raw, err := encodePacket(ptGbCommit, commit); err == nil {
		for site := range targets {
			if site == d.site {
				continue
			}
			_ = d.sendRaw(site, raw)
		}
	}
	d.applyGbCommit(d.site, commit)

	if newView.ID > oldView.ID {
		d.bus.Publish(events.Event{Kind: events.ViewCommitted, Group: w.gid, View: newView.ID})
	}

	resp := msg.New()
	resp.PutMessage(fView, encodeView(newView))
	if w.kind == gbSeal && w.sealTarget != 0 {
		if sealCommitted {
			resp.PutInt(fOutcome, voteCommitted)
		} else {
			resp.PutInt(fOutcome, voteAborted)
		}
	}
	d.gbReply(w, resp, "")
}

// gbReply delivers the coordinator's final answer to whoever asked for the
// GBCAST.
func (d *Daemon) gbReply(w *gbWork, resp *msg.Message, errText string) {
	if w.done != nil {
		if errText != "" {
			resp = msg.New()
			resp.PutString(fErr, errText)
			// localGbRequest treats any response as success; encode errors
			// as a missing view, which callers check.
		}
		select {
		case w.done <- resp:
		default:
		}
		return
	}
	if w.replyTo == 0 && w.replyCall == 0 {
		return // fire-and-forget internal work (failure removals)
	}
	if errText != "" {
		d.replyError(w.replyTo, w.replyCall, errText)
		return
	}
	out := resp.Clone()
	out.PutInt(fCall, w.replyCall)
	_ = d.sendPacket(w.replyTo, ptGbDone, out)
}

// reconcile merges the member sites' pending reports into the rebroadcast
// instructions carried by the commit. Every in-flight ABCAST the reports
// surface is resolved to one side of the GBCAST point (the paper treats
// in-progress ABCASTs as part of the flushed state):
//
//   - committed at any member: force-commit everywhere at the final priority
//     (the "all" branch of the atomicity rule);
//   - already delivered at some member but still pending uncommitted
//     elsewhere: complete everywhere at the final priority the delivering
//     site recorded (carried by its Recent report entry);
//   - uncommitted from a failed sender: discard everywhere (the "none"
//     branch);
//   - uncommitted from a live sender, present in every report: complete —
//     every member site has proposed, so the maximum reported priority
//     dominates every proposal and the flush commits it before the view
//     change at every site (the initiator's own round is retired when the
//     commit reaches it);
//   - uncommitted from a live sender, missing from some report: fence — the
//     message cannot be completed on this side of the view change, so every
//     site discards its phase-1 state and the initiator restarts the
//     protocol under the new view, delivering it after the GBCAST point at
//     every site.
func reconcile(reports map[addr.SiteID]pendingReport, removingFailed bool, removed []addr.Address) pendingReport {
	type abAgg struct {
		committed bool
		priority  uint64 // final priority when committed
		maxProp   uint64 // highest proposed priority when uncommitted
		packet    *msg.Message
		seen      int  // member sites whose report lists the entry
		initiator bool // some reporting site still holds the initiator round
	}
	abs := make(map[core.MsgID]*abAgg)
	recentCount := make(map[core.MsgID]int)
	recentPkt := make(map[core.MsgID]*msg.Message)
	recentFinal := make(map[core.MsgID]uint64)
	removedSet := make(map[addr.Address]bool)
	for _, p := range removed {
		removedSet[p.Base()] = true
	}

	for _, rep := range reports {
		for _, a := range rep.Abcasts {
			agg := abs[a.ID]
			if agg == nil {
				agg = &abAgg{}
				abs[a.ID] = agg
			}
			agg.seen++
			if a.Init {
				agg.initiator = true
			}
			if a.Packet != nil && agg.packet == nil {
				agg.packet = a.Packet
			}
			if a.Committed {
				agg.committed = true
				if a.Priority > agg.priority {
					agg.priority = a.Priority
				}
			} else if a.Priority > agg.maxProp {
				agg.maxProp = a.Priority
			}
		}
		for _, r := range rep.Recent {
			recentCount[r.ID]++
			if r.Packet != nil && recentPkt[r.ID] == nil {
				recentPkt[r.ID] = r.Packet
			}
			if r.Priority > recentFinal[r.ID] {
				recentFinal[r.ID] = r.Priority
			}
		}
	}

	var out pendingReport
	nSites := len(reports)
	for id, agg := range abs {
		switch {
		case agg.committed:
			out.Abcasts = append(out.Abcasts, abPendingWire{
				ID: id, Committed: true, Priority: agg.priority, Packet: agg.packet,
			})
		case recentFinal[id] != 0:
			// Delivered at some member site, still an uncommitted pending
			// entry here and there: complete it everywhere at the exact
			// final priority the delivering site used (its commit record
			// travelled in the Recent report). Left unresolved, the entry
			// would block completions driven below until its own in-flight
			// commit thawed — after the view change, on the wrong side.
			out.Abcasts = append(out.Abcasts, abPendingWire{
				ID: id, Committed: true, Priority: recentFinal[id], Packet: agg.packet,
			})
		case removingFailed && removedSet[id.Sender.Base()]:
			// The sender failed and no member learned a final priority:
			// the "none" branch of the atomicity rule — discard everywhere.
			out.Abcasts = append(out.Abcasts, abPendingWire{ID: id, Committed: false})
		case agg.seen == nSites && agg.packet != nil:
			// Complete: drive the in-flight ABCAST to commit before the view
			// change. Every report contributed a proposal, so the maximum
			// dominates anything a member has used or seen.
			out.Abcasts = append(out.Abcasts, abPendingWire{
				ID: id, Committed: true, Priority: agg.maxProp, Packet: agg.packet,
			})
		case recentCount[id] == 0 && agg.initiator:
			// Fence behind the new view — but only while some reporting site
			// still holds the initiator round, which guarantees the restart
			// that re-delivers the message. Without that guarantee the fence
			// discard could lose a message outright (e.g. one delivered at a
			// site whose bounded recent buffer has since evicted it, with
			// the commit still in flight here); such a straggler is left
			// pending for its own commit or the re-solicitation watchdog to
			// resolve. A message some member already delivered is likewise
			// never fenced: the Recent re-dissemination carries it to
			// everyone before the view change instead.
			out.Fenced = append(out.Fenced, id)
		}
	}
	// A message delivered at some member sites but not all of them must be
	// re-disseminated so every survivor delivers it before the GBCAST point.
	for id, count := range recentCount {
		if count < nSites {
			out.Recent = append(out.Recent, recentWire{ID: id, Packet: recentPkt[id]})
		}
	}
	return out
}

// prepareLocal wedges the group at this site and returns its pending-state
// report (the coordinator's own contribution to phase 1) together with the
// site's current view of the group. Every wedge arms a watchdog: a wedge
// whose commit never arrives — a prepare retransmitted by the reliable
// transport long after its coordinator's round ended, e.g. across a
// partition heal — would otherwise freeze the group forever.
func (d *Daemon) prepareLocal(gid addr.Address) (pendingReport, core.View) {
	d.mu.Lock()
	defer d.mu.Unlock()
	gs, ok := d.groups[gid]
	if !ok {
		return pendingReport{}, core.View{}
	}
	gs.wedged = true
	gs.wedgeSeq++
	seq := gs.wedgeSeq
	d.bus.Publish(events.Event{Kind: events.FlushBegin, Group: gid, View: gs.view.ID})
	// 4x the call timeout comfortably exceeds the longest legitimate flush
	// (concurrent prepares retry up to 3 calls before the commit follows).
	time.AfterFunc(4*d.cfg.CallTimeout, func() { d.unwedgeStale(gid, seq) })
	return d.buildReportLocked(gs), gs.view.Clone()
}

// unwedgeStale releases a wedge whose flush never completed (the watchdog
// armed by prepareLocal). A commit or a newer wedge advances the state, so
// the stale timer is a no-op in every healthy flow.
func (d *Daemon) unwedgeStale(gid addr.Address, seq uint64) {
	d.mu.Lock()
	gs, ok := d.groups[gid]
	if !ok || !gs.wedged || gs.wedgeSeq != seq {
		d.mu.Unlock()
		return
	}
	gs.wedged = false
	held := gs.heldPkts
	gs.heldPkts = nil
	d.mu.Unlock()
	for _, h := range held {
		d.dispatchHeld(h)
	}
}

// buildReportLocked summarises the pending and recently delivered messages
// of every local member, plus the phase-2 state of any ABCAST this site is
// initiating (the priorities collected so far), so a GBCAST flush sees every
// in-flight ABCAST the site knows about. For an entry pending at several
// local members the report carries the highest proposed priority (the final
// priority must dominate every proposal); a committed entry reports its
// final priority. Caller holds d.mu.
func (d *Daemon) buildReportLocked(gs *groupState) pendingReport {
	var rep pendingReport
	idx := make(map[core.MsgID]int)
	for _, ms := range gs.members {
		for _, p := range ms.total.Pending() {
			var pkt *msg.Message
			if m, ok := p.Payload.(*msg.Message); ok {
				pkt = m
			}
			i, ok := idx[p.ID]
			if !ok {
				idx[p.ID] = len(rep.Abcasts)
				rep.Abcasts = append(rep.Abcasts, abPendingWire{
					ID: p.ID, Committed: p.Committed, Priority: p.Priority, Packet: pkt,
				})
				continue
			}
			e := &rep.Abcasts[i]
			switch {
			case p.Committed && !e.Committed:
				e.Committed = true
				e.Priority = p.Priority
			case p.Committed == e.Committed && p.Priority > e.Priority:
				e.Priority = p.Priority
			}
			if e.Packet == nil {
				e.Packet = pkt
			}
		}
	}
	for id, st := range d.pendingAb {
		if st.group != gs.view.Group {
			continue
		}
		if i, ok := idx[id]; ok {
			e := &rep.Abcasts[i]
			if !e.Committed && st.maxPrio > e.Priority {
				e.Priority = st.maxPrio
			}
			if e.Packet == nil {
				e.Packet = st.packet
			}
			e.Init = true
			continue
		}
		idx[id] = len(rep.Abcasts)
		rep.Abcasts = append(rep.Abcasts, abPendingWire{ID: id, Priority: st.maxPrio, Packet: st.packet, Init: true})
	}
	for _, id := range gs.order {
		prio := gs.recentPrio[id]
		if prio == 0 {
			prio = d.abDone[id]
		}
		rep.Recent = append(rep.Recent, recentWire{ID: id, Packet: gs.recent[id], Priority: prio})
	}
	return rep
}

// handleGbPrepare processes phase 1 at a non-coordinator member site. The
// ack carries this site's current view alongside its pending report so that
// a coordinator taking over mid-protocol can base the new view on the most
// advanced copy any survivor holds.
func (d *Daemon) handleGbPrepare(from addr.SiteID, p *msg.Message) {
	d.mu.Lock()
	dead := d.suspected[from]
	d.mu.Unlock()
	if dead {
		// A straggling prepare from a coordinator already declared failed
		// (e.g. held in the network across the crash): wedging for it would
		// freeze the group with nobody left to run the commit that
		// unwedges it. The takeover flush owns the group now.
		return
	}
	gid := p.GetAddress(fGroup)
	rep, view := d.prepareLocal(gid.Base())
	resp := msg.New()
	resp.PutInt(fCall, p.GetInt(fCall, 0))
	resp.PutMessage(fPending, encodePendingReport(rep))
	if view.ID > 0 {
		resp.PutMessage(fView, encodeView(view))
	}
	// An outcome-settling flush: report this site's first-hand knowledge of
	// the target request id.
	if target := p.GetInt(fSealReq, 0); target != 0 {
		d.mu.Lock()
		if gs, ok := d.groups[gid.Base()]; ok {
			if v := gbOutcomeVoteLocked(gs, target); v != voteUnknown {
				resp.PutInt(fOutcome, v)
			}
		}
		d.mu.Unlock()
	}
	// Corroborate (or dispute) the claimed deaths of removal targets hosted
	// at this site: the coordinator drops targets whose hosting site vouches
	// for them.
	if targets := p.GetAddressList(fProcs); len(targets) > 0 {
		var deadHere addr.List
		d.mu.Lock()
		for _, pr := range targets {
			if pr.Site != d.site {
				continue
			}
			lp, ok := d.procs[pr.Base()]
			if !ok || !lp.alive || d.failedProcs[pr.Base()] {
				deadHere = append(deadHere, pr.Base())
			}
		}
		d.mu.Unlock()
		if len(deadHere) > 0 {
			resp.PutAddressList(fDead, deadHere)
		}
	}
	_ = d.sendPacket(from, ptGbAck, resp)
}

// handleGbCommit processes phase 2 arriving from a remote coordinator.
func (d *Daemon) handleGbCommit(from addr.SiteID, p *msg.Message) {
	d.applyGbCommit(from, p)
}

// applyGbCommit installs the effect of a GBCAST at this site: re-delivers
// reconciled messages, applies the membership change or delivers the user
// payload, notifies local members, and unwedges the group.
func (d *Daemon) applyGbCommit(from addr.SiteID, p *msg.Message) {
	gid := p.GetAddress(fGroup)
	kind := p.GetInt(fKind, 0)
	newView := decodeView(p.GetMessage(fView))
	rec := decodePendingReport(p.GetMessage(fRebcast))
	procs := p.GetAddressList(fProcs)
	wantState := p.GetInt(fWantState, 0) == 1
	reqID := p.GetInt(fReqID, 0)
	sealReq := p.GetInt(fSealReq, 0)
	sealOutcome := p.GetInt(fOutcome, 0)

	d.mu.Lock()
	gs, hosted := d.groups[gid.Base()]
	if kind == gbNonPrimary {
		// The minority coordinator's notice: this partition failed to reach
		// a majority. Wedge into read-only mode (unwedging the flush so held
		// reads drain) and wait for the merge protocol.
		if hosted && !gs.nonPrimary {
			gs.nonPrimary = true
			gs.wedged = false
			held := gs.heldPkts
			gs.heldPkts = nil
			d.bus.Publish(events.Event{Kind: events.PartitionWedge, Group: gid.Base(), View: gs.view.ID})
			d.mu.Unlock()
			for _, h := range held {
				d.dispatchHeld(h)
			}
			d.notifyPrimary(gid.Base(), false)
			return
		}
		d.mu.Unlock()
		return
	}
	if kind == gbResume {
		// Total-wedge recovery: no partition held a majority, nothing can
		// have committed past the last agreed view anywhere, and the resume
		// initiator verified the reachable copies still agree on it — so
		// this copy simply stops being non-primary (and drops any stale
		// wedge a straggling prepare may have left behind).
		if hosted && gs.nonPrimary && newView.ID == gs.view.ID {
			gs.nonPrimary = false
			gs.wedged = false
			held := gs.heldPkts
			gs.heldPkts = nil
			d.mu.Unlock()
			for _, h := range held {
				d.dispatchHeld(h)
			}
			d.notifyPrimary(gid.Base(), true)
			return
		}
		d.mu.Unlock()
		return
	}
	if hosted && gs.nonPrimary {
		// A commit reaching a non-primary copy comes from the primary
		// partition (typically a pre-partition packet retransmitted across
		// the heal). It must not be applied piecemeal — this copy's state is
		// speculative and will be discarded wholesale — but its arrival
		// proves the primary is reachable again, so it triggers the merge.
		auto := d.cfg.Merge == MergeAuto
		d.mu.Unlock()
		if auto {
			go d.mergeGroup(gid.Base())
		}
		return
	}
	hostsNewMember := false
	for _, m := range newView.Members {
		if m.Site == d.site {
			if _, ok := d.procs[m.Base()]; ok {
				hostsNewMember = true
			}
		}
	}
	// Members listed at this site that this daemon does not know are ghosts
	// of a previous incarnation: they joined (or merged back) moments before
	// the site restarted, and nobody else can tell they are gone — process
	// failures are detected locally, and the restarted site answers
	// heartbeats, so no timeout will ever fire for them. Request their
	// removal.
	ghosts := d.ghostMembersLocked(newView)
	if !hosted {
		if !hostsNewMember {
			// We host nobody in this group: just refresh the cached view.
			d.mu.Unlock()
			d.cacheRemoteView(newView)
			d.removeGhosts(gid.Base(), ghosts)
			return
		}
		// The view itself is installed by applyViewChangeLocked below; the
		// stub starts at view id 0 so the commit's view is never mistaken
		// for already-installed.
		gs = &groupState{
			view:    core.View{Group: gid.Base(), Name: newView.Name},
			members: make(map[addr.Address]*memberState),
			recent:  make(map[core.MsgID]*msg.Message),
		}
		d.groups[gid.Base()] = gs
		if newView.Name != "" {
			d.nameCache[newView.Name] = gid.Base()
		}
	}

	// Record the request id and detect re-executions: a commit for a
	// request this site already applied (re-sent by a coordinator that died
	// mid-fan-out, or re-run by its successor) must not deliver its user
	// payload a second time. View changes are deduplicated by view id.
	dupReq := reqID != 0 && gbCommittedLocked(gs, reqID)
	if reqID != 0 {
		recordGbDoneLocked(gs, reqID)
	}

	// Step 1: re-disseminated messages are delivered before the GBCAST
	// point, to every member of the *old* local view, skipping anything
	// already delivered here and any member that joined after the message
	// was sent (its state-transfer cut covers it).
	for _, rc := range rec.Recent {
		if rc.Packet == nil || gs.recent[rc.ID] != nil {
			continue
		}
		d.recordRecentLocked(gs, rc.ID, rc.Packet, rc.Priority)
		pv := core.ViewID(rc.Packet.GetInt(fViewID, 0))
		for _, ms := range gs.members {
			if pv != 0 && pv < ms.joinedView {
				continue
			}
			if ms.redelivered == nil {
				ms.redelivered = make(map[core.MsgID]bool)
			}
			ms.redelivered[rc.ID] = true
			d.deliverDataLocked(ms, rc.Packet)
		}
	}
	// Fenced ABCASTs next: the message could not be completed on this side
	// of the view change, so every member discards its phase-1 state; if
	// this site initiated one, its round is restarted under the new view
	// below (after the membership change installs it), so every member
	// delivers the message after the GBCAST point. The discards run before
	// the completions driven underneath: a driven commit must not stay
	// blocked behind an entry the flush is about to fence (the site-local
	// queue would deliver it after the GBCAST point while other sites
	// deliver it before — the very divergence this protocol closes).
	var fenced []*abSendState
	for _, id := range rec.Fenced {
		d.bus.Publish(events.Event{Kind: events.AbcastFenced, Group: gid.Base(), Msg: id})
		for _, ms := range gs.members {
			d.deliverTotalLocked(gs, ms, ms.total.Discard(id))
		}
		if st, ok := d.pendingAb[id]; ok && st.group == gid.Base() {
			fenced = append(fenced, st)
		}
	}
	for _, ab := range rec.Abcasts {
		if ab.Committed {
			d.recordAbDoneLocked(ab.ID, ab.Priority)
		}
		for _, ms := range gs.members {
			if ab.Committed {
				var payload any = ab.Packet
				d.deliverTotalLocked(gs, ms, ms.total.ForceCommit(ab.ID, payload, ab.Priority))
			} else {
				d.deliverTotalLocked(gs, ms, ms.total.Discard(ab.ID))
			}
		}
		// The flush resolved this in-flight ABCAST (completed or discarded);
		// if this site initiated it, its own protocol round is over. The
		// retire keeps the sender's outstanding count (the Flush API) exact
		// and stops the watchdog from fanning out a conflicting commit.
		if st, ok := d.pendingAb[ab.ID]; ok && st.group == gid.Base() {
			st.done = true
			delete(d.pendingAb, ab.ID)
			d.releaseAbSenderLocked(st)
		}
	}

	// Step 2: apply the membership change or deliver the user payload.
	var wrong []wrongRemoval
	switch kind {
	case gbUser, gbConfigHint:
		payload := p.GetMessage(fPayload)
		entry := addr.EntryID(p.GetInt(fEntry, 0))
		sender := p.GetAddress(fSender)
		if payload != nil && !dupReq {
			for _, ms := range gs.members {
				d.deliverPayloadLocked(gs, ms, sender, GBCAST, entry, payload)
			}
		}
	case gbJoin, gbLeave, gbFail, 0:
		wrong = d.applyViewChangeLocked(gs, newView, kind, procs, wantState)
	case gbSeal:
		// Outcome settlement for an earlier request id. An abort marks the
		// target skipped before the mark advances past it; either way the
		// mark advance makes the answer final — the dedupe check will treat
		// any straggling copy of the target as already handled, so it can
		// never commit after being reported aborted.
		if sealReq != 0 {
			if sealOutcome == voteCommitted {
				delete(gs.gbSkipped, sealReq)
			} else {
				markSkippedLocked(gs, sealReq)
			}
			recordGbDoneLocked(gs, sealReq)
		}
	}

	// Restart fenced ABCASTs this site initiated: a fresh protocol round
	// (higher attempt — stale proposals to the old round are filtered) under
	// the view just installed. Replacing the pending state under the same
	// lock closes the race with the old round's watchdog: its deferred
	// completion finds the state replaced and stands down. A site whose last
	// member was removed by this very change retires the round instead — the
	// message is dropped, exactly as if its sender had failed.
	var restarts []*abSendState
	var restartPkts []*msg.Message
	for _, st := range fenced {
		delete(d.pendingAb, st.id)
		st.done = true
		if len(gs.members) == 0 {
			d.releaseAbSenderLocked(st)
			continue
		}
		pkt := st.packet.Clone()
		pkt.PutInt(fViewID, int64(gs.view.ID))
		pkt.PutInt(fAttempt, st.attempt+1)
		nst := d.initiateAbcastLocked(gs, st.id, pkt, nil, st.attempt+1)
		nst.sender = st.sender // carry the Flush accounting without re-counting
		restarts = append(restarts, nst)
		restartPkts = append(restartPkts, pkt)
	}

	// Step 3: unwedge and reprocess any data packets held during the flush.
	if gs.wedged {
		d.bus.Publish(events.Event{Kind: events.FlushComplete, Group: gid.Base(), View: gs.view.ID})
	}
	gs.wedged = false
	held := gs.heldPkts
	gs.heldPkts = nil

	// A site left with no members drops the group state entirely.
	if len(gs.members) == 0 {
		delete(d.groups, gid.Base())
		d.remoteViews[gid.Base()] = newView.Clone()
	}
	d.mu.Unlock()

	for _, h := range held {
		d.dispatchHeld(h)
	}
	for i, nst := range restarts {
		d.transmitAbcast(nst, restartPkts[i])
	}
	d.removeGhosts(gid.Base(), ghosts)
	for _, w := range wrong {
		w := w
		go d.rejoinRemovedMember(gid.Base(), w.proc, w.recv)
	}
}

// ghostMembersLocked returns the view members listed at this site that this
// daemon does not host — processes of a previous incarnation of the site.
// Caller holds d.mu.
func (d *Daemon) ghostMembersLocked(v core.View) []addr.Address {
	var ghosts []addr.Address
	for _, m := range v.Members {
		if m.Site != d.site {
			continue
		}
		if _, ok := d.procs[m.Base()]; !ok {
			ghosts = append(ghosts, m.Base())
		}
	}
	return ghosts
}

// removeGhosts asks the group coordinator to remove dead previous-incarnation
// members hosted at this site.
func (d *Daemon) removeGhosts(gid addr.Address, ghosts []addr.Address) {
	if len(ghosts) == 0 {
		return
	}
	d.mu.Lock()
	for _, g := range ghosts {
		d.failedProcs[g] = true
	}
	d.mu.Unlock()
	d.requestRemoval(gid, ghosts, gbFail, false)
}

// reqIDParts splits a stable request id into its requester key (site and
// incarnation, the high word) and per-requester counter (the low word).
func reqIDParts(reqID int64) (requester, counter int64) {
	return reqID >> 32, reqID & 0xffffffff
}

// gbCommittedLocked reports whether a GBCAST request id has already committed
// at this site: its counter is at or below the requester's high-water mark.
// Caller holds d.mu.
func gbCommittedLocked(gs *groupState, reqID int64) bool {
	requester, counter := reqIDParts(reqID)
	return counter <= gs.gbSeen[requester]
}

// Per-site first-hand knowledge of a request id's outcome, carried in gbSeal
// acks (fOutcome) and commits.
const (
	voteUnknown   = int64(0) // no first-hand knowledge
	voteCommitted = int64(1) // this site applied the request's commit
	voteAborted   = int64(2) // the id was sealed aborted / jumped by the mark
)

// gbSkipLimit bounds the per-group memory of individually skipped request
// ids; gbSkipGapCap bounds how large a jump of the high-water mark still
// records each jumped id (a larger jump would mean the requester abandoned
// over a thousand consecutive requests — the remaining ambiguity is accepted
// rather than recorded unboundedly).
const (
	gbSkipLimit  = 4096
	gbSkipGapCap = 1024
)

// markSkippedLocked records one request id that advanced past the high-water
// mark without committing at this site. Caller holds d.mu.
func markSkippedLocked(gs *groupState, reqID int64) {
	if gs.gbSkipped == nil {
		gs.gbSkipped = make(map[int64]bool)
	}
	if gs.gbSkipped[reqID] {
		return
	}
	gs.gbSkipped[reqID] = true
	gs.gbSkippedOrder = append(gs.gbSkippedOrder, reqID)
	for len(gs.gbSkippedOrder) > gbSkipLimit {
		delete(gs.gbSkipped, gs.gbSkippedOrder[0])
		gs.gbSkippedOrder = gs.gbSkippedOrder[1:]
	}
}

// gbOutcomeVoteLocked reports this site's first-hand knowledge of a request
// id's outcome. Committed requires positive evidence: the counter must lie
// inside the window this site has actually tracked for the requester
// (gbSeenBase..gbSeen) and not be marked skipped — a site that joined the
// group after the id was minted has no history below its base and must
// answer unknown, not committed. Caller holds d.mu.
func gbOutcomeVoteLocked(gs *groupState, reqID int64) int64 {
	if gs.gbSkipped[reqID] {
		return voteAborted
	}
	requester, counter := reqIDParts(reqID)
	base, tracked := gs.gbSeenBase[requester]
	if !tracked || counter < base {
		return voteUnknown
	}
	if counter <= gs.gbSeen[requester] {
		return voteCommitted
	}
	return voteUnknown
}

// recordGbDoneLocked advances the requester's high-water mark past a
// committed GBCAST request id. Because a requester's commits happen in id
// order (coordinatorCall serializes per group), any id the mark jumps over
// was abandoned by the requester before this one was minted; each jumped id
// is recorded as skipped so an outcome query never mistakes it for
// committed. Caller holds d.mu.
func recordGbDoneLocked(gs *groupState, reqID int64) {
	requester, counter := reqIDParts(reqID)
	if gs.gbSeen == nil {
		gs.gbSeen = make(map[int64]int64)
	}
	if gs.gbSeenBase == nil {
		gs.gbSeenBase = make(map[int64]int64)
	}
	if _, tracked := gs.gbSeenBase[requester]; !tracked {
		gs.gbSeenBase[requester] = counter
	}
	prev := gs.gbSeen[requester]
	if counter <= prev {
		return
	}
	if prev > 0 && counter-prev-1 <= gbSkipGapCap {
		for c := prev + 1; c < counter; c++ {
			markSkippedLocked(gs, requester<<32|c)
		}
	}
	gs.gbSeen[requester] = counter
}

// dispatchHeld reprocesses a packet whose handling was deferred while the
// group was wedged, routing it by the envelope type remembered at hold time
// (data packets and ABCAST commits can both be held).
func (d *Daemon) dispatchHeld(h heldPacket) {
	switch h.pt {
	case ptAbCommit:
		d.handleAbCommit(h.from, h.pkt)
	default:
		d.handleData(h.from, h.pkt)
	}
}

// wrongRemoval records a local, live member that a failure view removed —
// evidence of a stale suspicion — so the caller can rejoin it once the
// commit has been applied.
type wrongRemoval struct {
	proc addr.Address
	recv func(block []byte, last bool)
}

// applyViewChangeLocked installs a new membership view and returns any
// local, live members the change wrongly removed (the caller rejoins them
// outside the lock). Caller holds d.mu.
func (d *Daemon) applyViewChangeLocked(gs *groupState, newView core.View, kind int64, procs []addr.Address, wantState bool) []wrongRemoval {
	if gs.view.ID != 0 && newView.ID <= gs.view.ID {
		// Stale or duplicate commit: a view with this id (or a later one)
		// is already installed. Re-applying it would re-clone the view and
		// re-invoke every member's deliverView callback — the retransmitted
		// commit only needs its unwedge side effect, which the caller
		// performs regardless.
		return nil
	}
	old := gs.view
	gs.prevView = old
	gs.view = newView.Clone()
	d.counters.ViewChanges++
	d.bus.Publish(events.Event{
		Kind: events.ViewInstalled, Group: gs.view.Group, View: gs.view.ID,
		Detail: fmt.Sprintf("%d members", len(gs.view.Members)),
	})

	var wrong []wrongRemoval
	if kind == gbFail {
		for _, pr := range procs {
			if pr.Site == d.site {
				if lp, ok := d.procs[pr.Base()]; ok && lp.alive {
					// This site hosts the removed process and it is alive:
					// the removal rested on a stale failure belief (a false
					// suspicion, or a partition this copy never noticed).
					// Do not blacklist its traffic; rejoin it instead.
					var recv func(block []byte, last bool)
					if ms, ok := gs.members[pr.Base()]; ok {
						recv = ms.stateRecv
					}
					wrong = append(wrong, wrongRemoval{proc: pr.Base(), recv: recv})
					continue
				}
			}
			d.failedProcs[pr.Base()] = true
		}
	}
	// Any process listed in the new view is alive by the view agreement:
	// clear stale failure records, so a member that was presumed dead during
	// a partition and rejoins through the merge protocol is not silently
	// ignored by the receive path.
	for _, m := range newView.Members {
		delete(d.failedProcs, m.Base())
	}

	// Track joiners awaiting a state transfer — at every member site, not
	// just the provider's, so whichever site hosts the new oldest member
	// after a failure can take the transfer over.
	if kind == gbJoin && wantState {
		if gs.pendingXfer == nil {
			gs.pendingXfer = make(map[addr.Address]bool)
		}
		for _, p := range procs {
			if newView.Contains(p) && !old.Contains(p) {
				gs.pendingXfer[p.Base()] = true
			}
		}
	}
	for j := range gs.pendingXfer {
		if !newView.Contains(j) {
			delete(gs.pendingXfer, j)
		}
	}

	// Drop members no longer in the view.
	for a := range gs.members {
		if !newView.Contains(a) {
			delete(gs.members, a)
		}
	}
	// Add newly hosted members.
	joinedHere := make([]*memberState, 0, 2)
	for _, m := range newView.Members {
		if m.Site != d.site {
			continue
		}
		if _, ok := gs.members[m.Base()]; ok {
			continue
		}
		lp, ok := d.procs[m.Base()]
		if !ok || !lp.alive {
			continue
		}
		ms := &memberState{
			proc:       lp,
			causal:     core.NewCausalQueue(newView.RankOf(m), newView.Size()),
			total:      core.NewTotalQueue(0),
			joinedView: newView.ID,
		}
		// Was this an explicit join from this site with a state request?
		key := joinKey{gs.view.Group, m.Base()}
		if pj, ok := d.pendingJoin[key]; ok {
			ms.stateRecv = pj.stateRecv
			delete(d.pendingJoin, key)
		}
		if wantState && !old.Contains(m) && contains(procs, m) {
			ms.awaitingState = true
		}
		gs.members[m.Base()] = ms
		joinedHere = append(joinedHere, ms)
	}
	_ = joinedHere
	// Continuing members: reset per-view ordering state to their new rank.
	for a, ms := range gs.members {
		if old.Contains(a) {
			ms.causal.InstallView(newView.RankOf(a), newView.Size())
		}
	}

	// Notify every local member of the new view, in order relative to
	// message deliveries.
	v := newView.Clone()
	for _, ms := range gs.members {
		if ms.proc.deliverView == nil {
			continue
		}
		cb := ms.proc.deliverView
		d.enqueueMember(ms, func() { cb(v) })
	}

	// State transfer: if this site hosts the oldest member and the change
	// added members that asked for state, capture and ship the state from
	// the oldest member's task queue (so the snapshot reflects exactly the
	// deliveries that precede the new view).
	if wantState && kind == gbJoin && newView.Size() > 0 {
		oldest := newView.Coordinator()
		if oldest.Site == d.site && !contains(procs, oldest) {
			if ms, ok := gs.members[oldest.Base()]; ok {
				gid := newView.Group
				joiners := append([]addr.Address(nil), procs...)
				prov := ms.stateProv
				xid := uint64(newView.ID)
				d.enqueue(ms.proc, func() { d.sendStateBlocks(gid, joiners, prov, xid) })
			}
		}
	}

	// Provider fail-over: if this change replaced the group's oldest member
	// (the state-transfer provider) while transfers were still pending, the
	// new oldest member re-ships the state from the beginning. The joiner
	// discards any partial transfer from the dead provider (the blocks carry
	// the attempt id) so it never assembles a mixed state.
	if kind != gbJoin && len(gs.pendingXfer) > 0 && newView.Size() > 0 && old.Size() > 0 &&
		old.Coordinator().Base() != newView.Coordinator().Base() {
		oldest := newView.Coordinator()
		if oldest.Site == d.site {
			if ms, ok := gs.members[oldest.Base()]; ok {
				gid := newView.Group
				joiners := make([]addr.Address, 0, len(gs.pendingXfer))
				for j := range gs.pendingXfer {
					joiners = append(joiners, j)
				}
				prov := ms.stateProv
				xid := uint64(newView.ID)
				d.enqueue(ms.proc, func() { d.sendStateBlocks(gid, joiners, prov, xid) })
			}
		}
	}
	return wrong
}

func contains(list []addr.Address, a addr.Address) bool {
	for _, x := range list {
		if x.Base() == a.Base() {
			return true
		}
	}
	return false
}

// allContained reports whether every listed process is a member of the view.
func allContained(v core.View, ps []addr.Address) bool {
	for _, p := range ps {
		if !v.Contains(p) {
			return false
		}
	}
	return true
}

// anyContained reports whether any listed process is a member of the view.
func anyContained(v core.View, ps []addr.Address) bool {
	for _, p := range ps {
		if v.Contains(p) {
			return true
		}
	}
	return false
}

// sendStateBlocks captures the group state from the provider and ships it to
// each joiner's site, stamping every block with the transfer attempt id (the
// view id the provider ships under) so a joiner can tell a fail-over restart
// from the original provider's stragglers. Runs on the providing member's
// task queue.
func (d *Daemon) sendStateBlocks(gid addr.Address, joiners []addr.Address, provider func() [][]byte, xferID uint64) {
	var blocks [][]byte
	if provider != nil {
		blocks = provider()
	}
	for _, j := range joiners {
		if len(blocks) == 0 {
			pkt := msg.New()
			pkt.PutAddress(fGroup, gid)
			pkt.PutAddress(fSender, j)
			pkt.PutInt(fStateLast, 1)
			pkt.PutInt(fXferID, int64(xferID))
			_ = d.sendPacket(j.Site, ptStateBlock, pkt)
			continue
		}
		for i, b := range blocks {
			pkt := msg.New()
			pkt.PutAddress(fGroup, gid)
			pkt.PutAddress(fSender, j)
			pkt.PutBytes(fStateData, b)
			if i == len(blocks)-1 {
				pkt.PutInt(fStateLast, 1)
			}
			pkt.PutInt(fXferID, int64(xferID))
			_ = d.sendPacket(j.Site, ptStateBlock, pkt)
		}
	}
}

// handleStateBlock buffers a state-transfer block for a joining member and,
// on the final block, delivers the complete state to the receiver, releases
// the deliveries held while the transfer was in progress, and announces the
// completion so no site re-triggers the transfer. Buffering until the final
// block (rather than streaming) is what makes provider fail-over safe: a
// transfer restarted by the new oldest member simply discards the dead
// provider's partial buffer instead of handing the application a mix of two
// providers' blocks.
func (d *Daemon) handleStateBlock(from addr.SiteID, p *msg.Message) {
	gid := p.GetAddress(fGroup)
	target := p.GetAddress(fSender)
	data := p.GetBytes(fStateData)
	last := p.GetInt(fStateLast, 0) == 1
	xid := uint64(p.GetInt(fXferID, 0))

	d.mu.Lock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		d.mu.Unlock()
		return
	}
	ms, ok := gs.members[target.Base()]
	if !ok || !ms.awaitingState {
		// The member never asked for state, or its transfer already
		// completed: a duplicate fail-over re-send changes nothing.
		d.mu.Unlock()
		return
	}
	if xid < ms.xferID {
		d.mu.Unlock()
		return // straggler from a provider that has been failed over
	}
	if xid > ms.xferID {
		// A new provider restarted the transfer: drop the partial buffer.
		ms.xferID = xid
		ms.xferBuf = nil
	}
	if len(data) > 0 {
		ms.xferBuf = append(ms.xferBuf, append([]byte(nil), data...))
	}
	if !last {
		d.mu.Unlock()
		return
	}

	// Final block: hand the complete state to the receiver in order, then
	// release the held deliveries behind it on the same queue.
	recv := ms.stateRecv
	blocks := ms.xferBuf
	ms.xferBuf = nil
	ms.awaitingState = false
	held := ms.held
	ms.held = nil
	if recv != nil {
		if len(blocks) == 0 {
			d.enqueue(ms.proc, func() { recv(nil, true) })
		}
		for i, b := range blocks {
			b, lastBlock := b, i == len(blocks)-1
			d.enqueue(ms.proc, func() { recv(b, lastBlock) })
		}
	}
	for _, fn := range held {
		d.enqueue(ms.proc, fn)
	}
	delete(gs.pendingXfer, target.Base())
	sites := gs.view.SitesOf()
	d.mu.Unlock()

	// Tell every member site the transfer completed, so a later coordinator
	// change does not re-trigger it.
	ack := msg.New()
	ack.PutAddress(fGroup, gid.Base())
	ack.PutAddress(fSender, target.Base())
	if raw, err := encodePacket(ptStateAck, ack); err == nil {
		for _, s := range sites {
			if s == d.site {
				continue
			}
			_ = d.sendRaw(s, raw)
		}
	}
}

// handleStateAck records that a joiner's state transfer completed, so this
// site will not re-trigger it if it later hosts the new oldest member.
func (d *Daemon) handleStateAck(from addr.SiteID, p *msg.Message) {
	gid := p.GetAddress(fGroup)
	joiner := p.GetAddress(fSender)
	d.mu.Lock()
	if gs, ok := d.groups[gid.Base()]; ok {
		delete(gs.pendingXfer, joiner.Base())
	}
	d.mu.Unlock()
}

// enterNonPrimary wedges this partition's copy of a group into read-only
// non-primary mode after a failed majority check, and tells the member sites
// the prepare reached to do the same. The gbNonPrimary commit unwedges the
// flush (held reads drain) without installing a view.
func (d *Daemon) enterNonPrimary(gid addr.Address, reports map[addr.SiteID]pendingReport) {
	notice := msg.New()
	notice.PutAddress(fGroup, gid)
	notice.PutInt(fKind, gbNonPrimary)
	if raw, err := encodePacket(ptGbCommit, notice); err == nil {
		for site := range reports {
			if site == d.site {
				continue
			}
			_ = d.sendRaw(site, raw)
		}
	}
	d.applyGbCommit(d.site, notice)
}

// handleSiteFailure reacts to the failure detector declaring a site dead:
// ABCASTs waiting on its proposals complete without it, and if this daemon
// hosts the acting coordinator of a group with members at the dead site, it
// initiates their removal. When the dead site hosted the group's previous
// acting coordinator, the removal is forced: the old coordinator may have
// died mid-flush — members wedged by its prepare, its commit delivered to
// only some of them, its gbQueue lost — so the successor must re-run the
// full wedge/flush even if the membership change itself turns out to be a
// no-op at this site. Requests orphaned at the dead coordinator are
// re-submitted by their requesters (coordinatorCall retries with a stable
// request id once failCallsTo aborts the in-flight exchange), and the
// commit-time dedupe keeps re-execution idempotent.
func (d *Daemon) handleSiteFailure(s addr.SiteID) {
	d.mu.Lock()
	var toFinish []*abSendState
	for _, st := range d.pendingAb {
		if st.waiting[s] {
			delete(st.waiting, s)
			if len(st.waiting) == 0 && !st.done {
				st.done = true
				toFinish = append(toFinish, st)
			}
		}
	}
	type removal struct {
		gid   addr.Address
		procs []addr.Address
		force bool
	}
	var removals []removal
	for gid, gs := range d.groups {
		var atSite []addr.Address
		for _, m := range gs.view.Members {
			if m.Site == s {
				atSite = append(atSite, m)
			}
		}
		force := false
		if len(atSite) == 0 {
			// No members of the dead site in our current view — but it may
			// have coordinated the change that removed them, and died before
			// its commit reached every member. If it hosted members one view
			// ago, run a forced re-sync flush anyway so any member still
			// holding (or wedged under) the previous view catches up.
			for _, m := range gs.prevView.Members {
				if m.Site == s {
					atSite = append(atSite, m)
					force = true
					break
				}
			}
			if len(atSite) == 0 {
				continue
			}
		}
		coord := d.actingCoordinator(gs.view)
		if coord.IsNil() || coord.Site != d.site {
			continue
		}
		// Was the previous acting coordinator hosted at the dead site? Walk
		// the ranking as it stood before s was suspected (s is already in
		// d.suspected here, so treat it as alive for this scan).
		if !force {
			for _, m := range gs.view.Members {
				if m.Site == s {
					force = true
					break
				}
				if !d.suspected[m.Site] && !d.failedProcs[m.Base()] {
					break
				}
			}
		}
		removals = append(removals, removal{gid, atSite, force})
	}
	d.mu.Unlock()

	for _, st := range toFinish {
		d.finishAbcast(st)
	}
	for _, r := range removals {
		if r.force {
			// This site is stepping in for a coordinator that died
			// mid-protocol (or mid-fan-out): the forced flush finishes the
			// dead coordinator's work.
			d.bus.Publish(events.Event{Kind: events.Takeover, Group: r.gid, Peer: s})
		}
		d.requestRemoval(r.gid, r.procs, gbFail, r.force)
	}
}
