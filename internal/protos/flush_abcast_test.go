package protos

// Scenario suite for the flush/ABCAST ordering guarantees: a GBCAST flush
// treats in-progress ABCASTs as part of the flushed state (it completes them
// before the view change when every member site has seen phase 1, and fences
// them behind it otherwise), so an ABCAST in flight across a wedge is
// delivered at every member site on the same side of the GBCAST — the
// "shifted marker" of examples/quickstart can no longer occur. Also the
// receiver-side re-solicitation of straggler commits, which stops a slow
// proposal round from blocking later committed deliveries until the next
// flush.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/fdetect"
	"repro/internal/msg"
	"repro/internal/simnet"
)

// quietDetector is a failure-detector configuration that never suspects a
// site within the lifetime of a test: link pauses must look like slow links,
// not crashes.
func quietDetector() fdetect.Config {
	return fdetect.Config{
		HeartbeatInterval: 20 * time.Millisecond,
		InitialTimeout:    time.Minute,
		MinTimeout:        time.Minute,
		MaxTimeout:        2 * time.Minute,
		DeviationFactor:   4,
	}
}

// bodyIndex returns the position of the first delivery with the given body
// at a process, or -1.
func bodyIndex(p *testProc, body string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, m := range p.msgs {
		if m.GetString("body", "") == body {
			return i
		}
	}
	return -1
}

// assertSameSideOfMarker fails unless every member delivered the body on the
// same side of the marker as member 0 did.
func assertSameSideOfMarker(t *testing.T, procs []*testProc, body, marker string) {
	t.Helper()
	ref := bodyIndex(procs[0], body) < bodyIndex(procs[0], marker)
	for i, p := range procs[1:] {
		mi, bi := bodyIndex(p, marker), bodyIndex(p, body)
		if mi < 0 || bi < 0 {
			t.Fatalf("member %d missing a delivery: marker at %d, %q at %d", i+1, mi, body, bi)
		}
		if (bi < mi) != ref {
			t.Errorf("%q delivered on different sides of the marker: member 0 before=%v, member %d before=%v",
				body, ref, i+1, bi < mi)
		}
	}
}

// TestScenarioFlushDrivesFullySeenAbcast plants an uncommitted ABCAST
// phase-1 entry at every member site (the initiator's commit never arrives —
// the degenerate form of a watchdog that lost its race) and then runs a
// user GBCAST. The flush must drive the in-flight ABCAST to commit before
// the view-change point: every member delivers it exactly once, before the
// marker, and a late low-priority commit changes nothing.
func TestScenarioFlushDrivesFullySeenAbcast(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "drive", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "drive")

	view, ok := tc.daemons[1].CurrentView(gid)
	if !ok {
		t.Fatal("no view at site 1")
	}
	id := core.MsgID{Sender: procs[0].addr, Seq: 400}
	pkt := tc.daemons[1].buildDataPacket(ABCAST, gid, view.ID, id,
		procs[0].addr, view.RankOf(procs[0].addr), addr.EntryUserBase, body("undelivered"))
	tc.daemons[1].handleData(3, pkt.Clone())
	tc.daemons[2].handleData(1, pkt.Clone())
	tc.daemons[3].handleData(1, pkt.Clone())
	time.Sleep(50 * time.Millisecond)
	for i, p := range procs {
		if p.got("undelivered") {
			t.Fatalf("member %d delivered the uncommitted ABCAST before the flush", i)
		}
	}

	if _, err := tc.daemons[1].Multicast(procs[0].addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body("marker")); err != nil {
		t.Fatalf("marker GBCAST: %v", err)
	}
	waitFor(t, "driven ABCAST and marker everywhere", 5*time.Second, func() bool {
		for _, p := range procs {
			if !p.got("undelivered") || !p.got("marker") {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		if bi, mi := bodyIndex(p, "undelivered"), bodyIndex(p, "marker"); bi > mi {
			t.Errorf("member %d delivered the driven ABCAST after the marker (%d > %d): flush must complete it before the view change", i, bi, mi)
		}
	}

	// A late commit from the (imaginary) initiator's watchdog — with a
	// priority below the one the flush chose — must be a no-op.
	late := msg.New()
	late.PutAddress(fGroup, gid)
	putMsgID(late, id)
	late.PutInt(fPriority, 1)
	tc.daemons[2].handleAbCommit(1, late)
	time.Sleep(100 * time.Millisecond)
	for i, p := range procs {
		if n := countBody(p, "undelivered"); n != 1 {
			t.Errorf("member %d delivered the driven ABCAST %d times, want 1", i, n)
		}
	}
}

// TestScenarioFlushFencesUndeliveredAbcast starts a real ABCAST whose
// phase 1 cannot reach one member site (the initiator's link to it is
// paused) and wedges the group with a user GBCAST while it is in flight.
// The flush cannot complete the ABCAST — one report has never seen it — so
// it must fence it behind the view change: every member delivers the marker
// first and the ABCAST after it (via the initiator's deterministic restart),
// exactly once, including the site whose phase 1 was frozen.
func TestScenarioFlushFencesUndeliveredAbcast(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, quietDetector())
	procs := buildGroup(t, tc, "fence", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "fence")

	// Phase 1 from the site-2 member reaches site 1 but never site 3.
	tc.net.PauseLink(2, 3)
	if _, err := tc.daemons[2].Multicast(procs[1].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("fenced")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // phase 1 reaches site 1; site 3 stays blind

	// The wedge: a user GBCAST through the site-1 coordinator (whose links
	// are all healthy, so the flush itself completes).
	if _, err := tc.daemons[1].Multicast(procs[0].addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body("marker")); err != nil {
		t.Fatalf("marker GBCAST: %v", err)
	}
	waitFor(t, "marker at every member", 5*time.Second, func() bool {
		for _, p := range procs {
			if !p.got("marker") {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		if p.got("fenced") {
			t.Fatalf("member %d delivered the fenced ABCAST before (or with) the marker", i)
		}
	}

	// Release the frozen link: the restarted protocol round completes and
	// every member — including site 3 — delivers the message after the
	// marker.
	tc.net.ResumeLink(2, 3)
	waitFor(t, "fenced ABCAST everywhere after the restart", 10*time.Second, func() bool {
		for _, p := range procs {
			if !p.got("fenced") {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		if n := countBody(p, "fenced"); n != 1 {
			t.Errorf("member %d delivered the fenced ABCAST %d times, want 1", i, n)
		}
		if bi, mi := bodyIndex(p, "fenced"), bodyIndex(p, "marker"); bi < mi {
			t.Errorf("member %d delivered the fenced ABCAST before the marker (%d < %d)", i, bi, mi)
		}
	}
	assertSameSideOfMarker(t, procs, "fenced", "marker")
}

// TestScenarioFlushCompletesDeliveredStraggler pins the limbo class the
// quickstart marker invariant first exposed: ABCAST A was delivered at one
// member site before the wedge but is still an uncommitted pending entry at
// the others (its commit is in flight), while ABCAST B — which the flush
// drives to commit — sits behind A in their priority queues. The delivering
// site's Recent report carries A's final priority, so the flush must
// complete A everywhere (not merely re-disseminate its payload) and deliver
// both A and B before the marker at every member; without it, B stays
// blocked behind A's unresolved entry and surfaces after the view change at
// exactly the sites that missed A's commit.
func TestScenarioFlushCompletesDeliveredStraggler(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "limbo", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "limbo")
	view, ok := tc.daemons[1].CurrentView(gid)
	if !ok {
		t.Fatal("no view at site 1")
	}

	// ABCAST A from the site-2 member: phase 1 everywhere, commit applied at
	// site 2 only (sites 1 and 3 hold uncommitted entries).
	idA := core.MsgID{Sender: procs[1].addr, Seq: 77}
	pktA := tc.daemons[1].buildDataPacket(ABCAST, gid, view.ID, idA,
		procs[1].addr, view.RankOf(procs[1].addr), addr.EntryUserBase, body("limbo-a"))
	tc.daemons[1].handleData(2, pktA.Clone())
	tc.daemons[2].handleData(1, pktA.Clone())
	tc.daemons[3].handleData(2, pktA.Clone())
	commitA := msg.New()
	commitA.PutAddress(fGroup, gid)
	putMsgID(commitA, idA)
	commitA.PutInt(fPriority, 1)
	tc.daemons[2].handleAbCommit(2, commitA)
	waitFor(t, "A delivered at site 2", 2*time.Second, func() bool { return procs[1].got("limbo-a") })

	// ABCAST B: phase 1 at every site, no commit — the flush will drive it.
	// Its proposals land above A's, so at sites 1 and 3 it queues behind A.
	idB := core.MsgID{Sender: procs[0].addr, Seq: 78}
	pktB := tc.daemons[1].buildDataPacket(ABCAST, gid, view.ID, idB,
		procs[0].addr, view.RankOf(procs[0].addr), addr.EntryUserBase, body("limbo-b"))
	tc.daemons[1].handleData(3, pktB.Clone())
	tc.daemons[2].handleData(1, pktB.Clone())
	tc.daemons[3].handleData(1, pktB.Clone())

	if _, err := tc.daemons[1].Multicast(procs[0].addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body("marker")); err != nil {
		t.Fatalf("marker GBCAST: %v", err)
	}
	waitFor(t, "A, B, and the marker at every member", 5*time.Second, func() bool {
		for _, p := range procs {
			if !p.got("limbo-a") || !p.got("limbo-b") || !p.got("marker") {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		mi := bodyIndex(p, "marker")
		if ai := bodyIndex(p, "limbo-a"); ai > mi {
			t.Errorf("member %d delivered the limbo straggler after the marker (%d > %d)", i, ai, mi)
		}
		if bi := bodyIndex(p, "limbo-b"); bi > mi {
			t.Errorf("member %d delivered the driven ABCAST after the marker (%d > %d): blocked behind the unresolved straggler", i, bi, mi)
		}
	}

	// The straggler's in-flight commit finally thaws: no duplicates.
	tc.daemons[1].handleAbCommit(2, commitA.Clone())
	tc.daemons[3].handleAbCommit(2, commitA.Clone())
	time.Sleep(100 * time.Millisecond)
	for i, p := range procs {
		if n := countBody(p, "limbo-a"); n != 1 {
			t.Errorf("member %d delivered the straggler %d times, want 1", i, n)
		}
	}
}

// TestScenarioAbcastNeverStraddlesWedge races concurrent ABCASTs against a
// GBCAST marker, repeatedly, and pins the quickstart invariant: whatever
// side of the marker an ABCAST lands on, it is the same side at every
// member site, and every member delivers it exactly once.
func TestScenarioAbcastNeverStraddlesWedge(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "straddle", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "straddle")

	for round := 0; round < 5; round++ {
		a0 := fmt.Sprintf("ab-%d-0", round)
		a1 := fmt.Sprintf("ab-%d-1", round)
		marker := fmt.Sprintf("marker-%d", round)
		if _, err := tc.daemons[1].Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(a0)); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.daemons[2].Multicast(procs[1].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(a1)); err != nil {
			t.Fatal(err)
		}
		if _, err := tc.daemons[1].Multicast(procs[0].addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body(marker)); err != nil {
			t.Fatalf("round %d marker: %v", round, err)
		}
		waitFor(t, "round deliveries everywhere", 10*time.Second, func() bool {
			for _, p := range procs {
				if !p.got(a0) || !p.got(a1) || !p.got(marker) {
					return false
				}
			}
			return true
		})
		for _, ab := range []string{a0, a1} {
			assertSameSideOfMarker(t, procs, ab, marker)
			for i, p := range procs {
				if n := countBody(p, ab); n != 1 {
					t.Errorf("round %d: member %d delivered %q %d times, want 1", round, i, ab, n)
				}
			}
		}
	}
}

// TestScenarioStragglerResolicitation reproduces the watchdog priority
// divergence: a member site holds an uncommitted ABCAST at the head of its
// total-order queue whose commit is frozen on the initiator's link, while a
// later, fully committed ABCAST queues up behind it. The member must
// re-solicit the commit record — and, because the initiator's link never
// answers, rotate to another member site that has applied the commit — and
// deliver both messages in priority order without waiting for a flush.
func TestScenarioStragglerResolicitation(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	tc := &testCluster{t: t, net: net, daemons: make(map[addr.SiteID]*Daemon)}
	for i := 1; i <= 3; i++ {
		d, err := New(Config{
			Site:           addr.SiteID(i),
			Network:        net,
			CallTimeout:    time.Second,
			ResolicitAfter: 150 * time.Millisecond,
			Detector:       quietDetector(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.daemons[addr.SiteID(i)] = d
	}
	t.Cleanup(func() {
		for _, d := range tc.daemons {
			d.Close()
		}
		net.Close()
	})

	procs := buildGroup(t, tc, "straggle", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "straggle")
	view, ok := tc.daemons[1].CurrentView(gid)
	if !ok {
		t.Fatal("no view at site 1")
	}

	// Everything from site 1 toward site 3 freezes: site 3 will see neither
	// the original phase 1 nor the commit from the site-1 initiator.
	tc.net.PauseLink(1, 3)
	mid, err := tc.daemons[1].Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("slow"))
	if err != nil {
		t.Fatal(err)
	}
	// Hand site 3 the phase-1 packet directly (as if it had squeaked through
	// just before the pause): its member proposes, and the proposal reaches
	// the initiator — which commits, but whose commit is now frozen.
	pkt := tc.daemons[3].buildDataPacket(ABCAST, gid, view.ID, mid,
		procs[0].addr, view.RankOf(procs[0].addr), addr.EntryUserBase, body("slow"))
	tc.daemons[3].handleData(1, pkt)

	waitFor(t, "commit at sites 1 and 2", 5*time.Second, func() bool {
		return procs[0].got("slow") && procs[1].got("slow")
	})

	// A later ABCAST from site 2 commits everywhere, but at site 3 it queues
	// behind the uncommitted straggler.
	if _, err := tc.daemons[2].Multicast(procs[1].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("later")); err != nil {
		t.Fatal(err)
	}

	// Re-solicitation must unblock site 3 while the initiator link is STILL
	// frozen: the first ask (to the sender's site 1) gets no answer back,
	// the rotation reaches site 2, which answers from its commit record.
	waitFor(t, "straggler resolved at site 3 via re-solicitation", 10*time.Second, func() bool {
		return procs[2].got("slow") && procs[2].got("later")
	})
	if si, li := bodyIndex(procs[2], "slow"), bodyIndex(procs[2], "later"); si > li {
		t.Errorf("site 3 delivered the straggler after the later ABCAST (%d > %d): total order violated", si, li)
	}

	// Releasing the frozen original commit must not re-deliver.
	tc.net.ResumeLink(1, 3)
	time.Sleep(200 * time.Millisecond)
	for i, p := range procs {
		if n := countBody(p, "slow"); n != 1 {
			t.Errorf("member %d delivered the straggler %d times, want 1", i, n)
		}
	}
}
