package protos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/fdetect"
	"repro/internal/msg"
	"repro/internal/netback"
	"repro/internal/transport"
)

// DeliverFunc receives an application message for a local process. The
// message carries the toolkit system fields (sender, group, view id,
// protocol, entry). Delivery callbacks for one process are invoked
// sequentially, in delivery order.
type DeliverFunc func(entry addr.EntryID, m *msg.Message)

// ViewFunc receives a membership change notification for a group the
// process belongs to. It is invoked in order relative to message
// deliveries, which is what makes the ranking trick of Section 3.2 safe.
type ViewFunc func(view core.View)

// MergePolicy selects how the daemon treats network partitions: whether the
// primary-partition majority rule gates view changes, and whether a minority
// partition merges back automatically once the partition heals.
type MergePolicy uint8

const (
	// MergeAuto (the default) enforces the primary-partition rule and
	// automatically merges a minority partition back into the primary as
	// soon as the failure detector observes the partition healing.
	MergeAuto MergePolicy = iota
	// MergeManual enforces the primary-partition rule but leaves the merge
	// to the application, which triggers it with Daemon.MergeGroup.
	MergeManual
	// MergeNone disables the primary-partition rule entirely: any partition
	// may install views (the paper's original crash-only fault model, in
	// which a partitioned minority forms a split-brain view and recovers by
	// restarting).
	MergeNone
)

// Config parameterizes a Daemon.
type Config struct {
	// Site is this daemon's site identifier.
	Site addr.SiteID
	// Incarnation distinguishes restarts of the same site.
	Incarnation addr.Incarnation
	// Network is the fabric the site attaches to: the simulated LAN
	// (*simnet.Network) or the TCP-loopback backend (*tcpnet.Network).
	Network netback.Network
	// Transport optionally overrides the transport configuration; the zero
	// value derives it from the network configuration.
	Transport transport.Config
	// Detector optionally overrides the failure-detector configuration;
	// the zero value uses fdetect.DefaultConfig.
	Detector fdetect.Config
	// CallTimeout bounds internal request/response interactions (lookups,
	// coordinator requests, proposal collection). Defaults to 5 s.
	CallTimeout time.Duration
	// ResolicitAfter is how long a member may hold an uncommitted ABCAST at
	// the head of its total-order queue before it re-solicits the commit
	// record from the initiator (rotating to other member sites if the
	// initiator does not answer). Zero selects CallTimeout. A straggling
	// proposal can therefore no longer block later committed deliveries
	// until the next flush.
	ResolicitAfter time.Duration
	// DisableHeartbeats turns off the failure detector's periodic traffic;
	// used by benchmarks that want quiet links.
	DisableHeartbeats bool
	// Merge selects the partition-handling policy; the zero value MergeAuto
	// enforces the primary-partition rule and merges minorities back
	// automatically when the partition heals.
	Merge MergePolicy
}

// Counters tallies protocol activity; the Table 1 harness reads them before
// and after each toolkit call to report the multicast cost of the call. It is
// defined in the events package so the observability layer and the protocol
// layer share one vocabulary.
type Counters = events.Counters

// Errors returned by daemon operations.
var (
	ErrClosed        = errors.New("protos: daemon closed")
	ErrUnknownProc   = errors.New("protos: unknown local process")
	ErrUnknownGroup  = errors.New("protos: unknown group")
	ErrNotMember     = errors.New("protos: process is not a member")
	ErrTimeout       = errors.New("protos: request timed out")
	ErrDeadProcess   = errors.New("protos: process has failed")
	ErrEmptyDest     = errors.New("protos: no destinations")
	ErrBadProtocol   = errors.New("protos: unsupported protocol for destination set")
	ErrGroupVanished = errors.New("protos: group has no members")
	ErrNonPrimary    = errors.New("protos: group is in a non-primary partition (read-only)")
)

// localProc is one client process registered at this site.
type localProc struct {
	addr        addr.Address
	deliver     DeliverFunc
	deliverView ViewFunc
	alive       bool
	nextSeq     uint64                  // multicast sequence (msg ids)
	extSeq      map[addr.Address]uint64 // per-destination-group sequence for non-member CBCASTs
	outstanding int                     // ABCASTs initiated and not yet committed (for flush)

	// relayMu serializes this process's relayed CBCASTs so an extSeq number
	// is only ever consumed by a relay that reached the wire (a failed
	// relay rolls the counter back; without the serialization the rollback
	// could strand a concurrently assigned later number).
	relayMu sync.Mutex

	queue chan func() // per-process delivery queue, drained by one goroutine
}

// memberState is the per-(group, local member) protocol state.
type memberState struct {
	proc   *localProc
	causal *core.CausalQueue
	total  *core.TotalQueue

	// joinedView is the view in which this member entered the group at this
	// site. A GBCAST flush re-disseminates messages some member sites
	// missed, but a member that joined after a message was sent must not
	// receive it — its state-transfer cut already covers it (this matters
	// after a partition merge, when a freshly rejoined member's empty
	// recent-delivery set would otherwise read as "missed everything").
	joinedView core.ViewID

	awaitingState bool     // a joiner that has not yet received the group state
	held          []func() // deliveries deferred until the state arrives
	stateRecv     func(block []byte, last bool)
	stateProv     func() [][]byte

	// xferID identifies the state-transfer attempt the blocks in xferBuf
	// belong to (the view id the provider shipped under). Blocks buffer here
	// and reach the receiver only once the final block arrives, so a
	// transfer restarted from a new provider after the old one failed simply
	// discards the partial buffer instead of delivering duplicate blocks.
	xferID  uint64
	xferBuf [][]byte

	// redelivered records messages this member received through a GBCAST
	// flush re-dissemination; when the original copy later drains from the
	// causal queue it is suppressed so the member does not see it twice.
	redelivered map[core.MsgID]bool

	// Straggler tracking for the re-solicitation watchdog: the uncommitted
	// message currently blocking the head of the member's total-order queue,
	// when it started blocking, and how many re-solicitations have been sent
	// for it (used to rotate the target away from an unreachable initiator).
	blockedID    core.MsgID
	blockedSince time.Time
	resolicits   int
}

// groupState is the per-group state kept at every site hosting members.
// heldPacket is a packet whose processing is deferred while the group is
// wedged by a GBCAST flush; pt remembers its envelope type so it can be
// re-dispatched when the group unwedges.
type heldPacket struct {
	from addr.SiteID
	pt   byte
	pkt  *msg.Message
}

type groupState struct {
	view     core.View
	prevView core.View                     // the view this site held before the current one
	members  map[addr.Address]*memberState // local members only

	wedged   bool         // a GBCAST flush is in progress
	wedgeSeq uint64       // increments per wedge; lets the watchdog spot stale wedges
	heldPkts []heldPacket // data packets held while wedged
	recent   map[core.MsgID]*msg.Message
	order    []core.MsgID // insertion order of recent, for bounding

	// recentPrio records, for ABCAST entries in recent, the final priority
	// they were delivered at. Its lifetime is exactly the recent entry's, so
	// a flush report's Recent line can always name the final a delivered
	// straggler must be completed at elsewhere (the daemon-global abDone
	// record churns across groups and may have evicted it).
	recentPrio map[core.MsgID]uint64

	// nonPrimary marks a copy of the group stranded in a minority partition:
	// the acting coordinator could not reach a majority of the last agreed
	// view, so no new view may be installed and local writes are refused
	// until the partition heals and the merge protocol rejoins the primary.
	nonPrimary bool

	// pendingXfer is the set of joiners whose requested state transfer has
	// not been confirmed complete (by their site's ptStateAck). Every member
	// site tracks it so that whichever site finds itself hosting the new
	// oldest member after a failure can re-trigger the transfer.
	pendingXfer map[addr.Address]bool

	// Coordinator-side state (only used while this site hosts the acting
	// coordinator).
	gbSeq   uint64
	gbBusy  bool
	gbQueue []*gbWork

	// gbSeen records, per requester (the site|incarnation high word of the
	// stable request id), the highest request counter whose commit this site
	// has applied. Every member site keeps it, not just the coordinator, so
	// that after a coordinator failure the successor can recognise a
	// re-submitted request that already committed and answer it instead of
	// running the protocol a second time. A high-water mark per requester —
	// rather than a bounded history of individual ids — means a slow
	// retrier can never slip past the record no matter how many GBCASTs
	// intervene; soundness relies on each daemon serializing its request
	// submissions per group (coordinatorCall), which makes a requester's
	// commit order match its id order.
	gbSeen map[int64]int64

	// gbSeenBase records, per requester, the first counter this site ever
	// tracked — the lower edge of its first-hand history. An outcome query
	// about an id below the base is answered unknown: a site that joined
	// (or merged back) late has no evidence either way about older ids.
	gbSeenBase map[int64]int64

	// gbSkipped marks individual request ids that advanced the gbSeen mark
	// without committing: ids sealed as aborted by a gbSeal round, and the
	// gap ids an in-order commit jumped over (requests the requester
	// abandoned). The dedupe check treats a skipped id at or below the mark
	// as already handled, so it can never execute later — which is what
	// makes an Aborted answer definitive. Bounded FIFO.
	gbSkipped      map[int64]bool
	gbSkippedOrder []int64
}

const recentLimit = 256

// abSendState is the initiator-side state of one ABCAST (phase 1 responses
// still outstanding).
type abSendState struct {
	id      core.MsgID
	group   addr.Address
	sender  addr.Address
	waiting map[addr.SiteID]bool
	targets []addr.SiteID
	maxPrio uint64
	packet  *msg.Message
	done    bool

	// attempt qualifies the phase-1/proposal exchange: a GBCAST flush that
	// fences this ABCAST behind a view change restarts it with a higher
	// attempt, and proposals stamped with an older attempt are ignored so the
	// final priority is always the maximum over one coherent proposal round.
	attempt int64
}

// abDoneLimit bounds the per-daemon memory of committed ABCAST final
// priorities kept for re-solicitation answers.
const abDoneLimit = 1024

// pendingJoin remembers the state-transfer receiver callback registered when
// a local process asked to join a group, so it can be attached to the member
// state once the view change that adds it is installed.
type pendingJoin struct {
	stateRecv func(block []byte, last bool)
}

// Daemon is the protocols process of one site.
type Daemon struct {
	cfg  Config
	site addr.SiteID
	gen  *addr.Generator
	net  netback.Network
	ep   netback.Endpoint
	tr   *transport.Transport
	det  *fdetect.Detector

	mu          sync.Mutex
	procs       map[addr.Address]*localProc
	groups      map[addr.Address]*groupState
	remoteViews map[addr.Address]core.View
	nameCache   map[string]addr.Address
	failedProcs map[addr.Address]bool
	suspected   map[addr.SiteID]bool
	monitored   map[addr.SiteID]bool
	calls       map[int64]chan *msg.Message
	callSite    map[int64]addr.SiteID // destination of each pending call
	nextCall    int64
	nextReqID   int64
	pendingAb   map[core.MsgID]*abSendState
	abDone      map[core.MsgID]uint64 // final priorities of applied ABCAST commits
	abDoneOrder []core.MsgID          // insertion order of abDone, for bounding
	pendingJoin map[joinKey]pendingJoin
	merging     map[addr.Address]bool // groups with a merge in progress
	reqSerial   map[addr.Address]*sync.Mutex

	// bus carries the operational event stream for this site; emitters
	// publish from protocol paths (often with d.mu held — the bus has its
	// own lock and never calls back into the daemon).
	bus *events.Bus

	// reqLog is the requester-side record of GBCAST request ids this daemon
	// minted: which group each went to and whether the call committed, is
	// still pending, or was given up on (timed out / errored with the
	// outcome unresolved). RequestOutcome consults it and, for given-up
	// ids, settles the outcome with a gbSeal round. Bounded FIFO.
	reqLog      map[int64]reqRecord
	reqLogOrder []int64

	// Relayed-CBCAST FIFO repair (see relayrepair.go). lostRelays tracks
	// relay calls whose outcome is unknown — the call timed out or was
	// aborted by the failure detector while the request may still be queued
	// in the reliable transport — keyed by call id so a late response can be
	// reconciled against the FIFO sequence the relay consumed. relayHoles
	// holds sequence numbers confirmed refused after later numbers were
	// handed out; each needs a null filler before receivers can progress.
	lostRelays     map[int64]lostRelay
	lostRelayOrder []int64
	relayHoles     map[relayHoleKey]lostRelay
	repairingHoles bool

	// Parked partition merges (see merge.go). When a merge has discarded
	// the minority's local group copy and a member's rejoin into the
	// primary then fails every retry, the member is parked here and the
	// rejoin re-attempted on recovery events and scan ticks — the
	// alternative is a live process left unhosted forever.
	parkedMerges   map[parkKey]parkedRejoin
	retryingMerges bool

	counters Counters
	closed   bool

	unwatchLinks func() // unregisters the heal-probe link watcher on Close
	stopScan     chan struct{}

	wg sync.WaitGroup
}

// New creates and starts a daemon at the given site.
func New(cfg Config) (*Daemon, error) {
	if cfg.Network == nil {
		return nil, errors.New("protos: Config.Network is required")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.ResolicitAfter <= 0 {
		cfg.ResolicitAfter = cfg.CallTimeout
	}
	// Fill unset transport parameters from the network defaults while
	// keeping explicit overrides (the batching ablation sets only flags).
	trCfg := cfg.Transport
	trDef := transport.DefaultConfig(cfg.Network.Profile())
	if trCfg.MaxPacket == 0 {
		trCfg.MaxPacket = trDef.MaxPacket
	}
	if netMax := cfg.Network.Profile().MaxPacket; netMax > 0 && trCfg.MaxPacket > netMax {
		// A frame larger than the network accepts would fail asynchronously
		// in the transport's flusher, where no error can reach the sender;
		// clamp here, where the network's limit is known.
		trCfg.MaxPacket = netMax
	}
	if trCfg.RetransmitInterval == 0 {
		trCfg.RetransmitInterval = trDef.RetransmitInterval
	}
	if trCfg.Epoch == 0 {
		// Stream epochs derive from the incarnation so peers distinguish a
		// restarted site's fresh numbering from duplicate traffic.
		trCfg.Epoch = uint64(cfg.Incarnation) + 1
	}
	detCfg := cfg.Detector
	if detCfg.HeartbeatInterval == 0 {
		detCfg = fdetect.DefaultConfig()
	}

	d := &Daemon{
		cfg:          cfg,
		site:         cfg.Site,
		gen:          addr.NewGenerator(cfg.Site, cfg.Incarnation),
		net:          cfg.Network,
		procs:        make(map[addr.Address]*localProc),
		groups:       make(map[addr.Address]*groupState),
		remoteViews:  make(map[addr.Address]core.View),
		nameCache:    make(map[string]addr.Address),
		failedProcs:  make(map[addr.Address]bool),
		suspected:    make(map[addr.SiteID]bool),
		monitored:    make(map[addr.SiteID]bool),
		calls:        make(map[int64]chan *msg.Message),
		callSite:     make(map[int64]addr.SiteID),
		pendingAb:    make(map[core.MsgID]*abSendState),
		abDone:       make(map[core.MsgID]uint64),
		pendingJoin:  make(map[joinKey]pendingJoin),
		merging:      make(map[addr.Address]bool),
		reqSerial:    make(map[addr.Address]*sync.Mutex),
		lostRelays:   make(map[int64]lostRelay),
		relayHoles:   make(map[relayHoleKey]lostRelay),
		parkedMerges: make(map[parkKey]parkedRejoin),
		bus:          events.NewBus(cfg.Site),
		reqLog:       make(map[int64]reqRecord),
		stopScan:     make(chan struct{}),
	}
	ep, err := cfg.Network.Attach(cfg.Site, trCfg.Epoch)
	if err != nil {
		return nil, err
	}
	d.ep = ep
	tr, err := transport.New(d.ep, trCfg, d.handleTransport)
	if err != nil {
		d.ep.Close()
		return nil, err
	}
	d.tr = tr
	d.det = fdetect.New(cfg.Site, detCfg, d.sendHeartbeat, d.onDetectorEvent)
	if !cfg.DisableHeartbeats {
		d.det.Start()
	}
	// A healed link is probed immediately with a heartbeat, so the peer's
	// failure detector observes the recovery — and triggers any pending
	// partition merge — without waiting for the next heartbeat round. Only
	// fabrics that can observe link transitions (the simulated LAN) offer
	// the capability; on a real wire recovery is heartbeat-driven.
	if lw, ok := cfg.Network.(netback.LinkWatcher); ok {
		d.unwatchLinks = lw.WatchLinks(func(ev netback.LinkEvent) {
			var peer addr.SiteID
			switch d.site {
			case ev.A:
				peer = ev.B
			case ev.B:
				peer = ev.A
			default:
				return
			}
			kind := events.LinkDown
			if ev.Up {
				kind = events.LinkUp
			}
			d.bus.Publish(events.Event{Kind: kind, Peer: peer})
			if !ev.Up {
				return
			}
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if !closed {
				d.sendHeartbeat(peer)
			}
		})
	}
	d.wg.Add(1)
	go d.runResolicitScan()
	return d, nil
}

// Site returns the daemon's site id.
func (d *Daemon) Site() addr.SiteID { return d.site }

// Counters returns a snapshot of the protocol counters.
func (d *Daemon) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// Close stops the daemon, modelling a site crash: the transport and failure
// detector stop, and the site detaches from the network. Other sites will
// detect the crash by timeout.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	procs := make([]*localProc, 0, len(d.procs))
	for _, p := range d.procs {
		procs = append(procs, p)
	}
	d.mu.Unlock()

	close(d.stopScan)
	d.bus.Close()
	if d.unwatchLinks != nil {
		d.unwatchLinks()
	}
	if !d.cfg.DisableHeartbeats {
		d.det.Stop()
	}
	d.tr.Close()
	d.ep.Close()
	for _, p := range procs {
		close(p.queue)
	}
	d.wg.Wait()
}

// RegisterProcess creates a new local process and returns its address. The
// deliver callback receives application messages; the view callback (which
// may be nil) receives membership changes of the groups the process joins.
func (d *Daemon) RegisterProcess(deliver DeliverFunc, view ViewFunc) (addr.Address, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return addr.Nil, ErrClosed
	}
	a := d.gen.NextProcess()
	p := &localProc{
		addr:        a,
		deliver:     deliver,
		deliverView: view,
		alive:       true,
		extSeq:      make(map[addr.Address]uint64),
		queue:       make(chan func(), 1024),
	}
	d.procs[a] = p
	d.wg.Add(1)
	go d.runProcQueue(p)
	return a, nil
}

// runProcQueue drains one process's delivery queue so that its callbacks run
// sequentially and in order.
func (d *Daemon) runProcQueue(p *localProc) {
	defer d.wg.Done()
	for fn := range p.queue {
		fn()
	}
}

// enqueue schedules a delivery callback for a process. Must be called with
// d.mu held (so that queue order equals delivery order; the daemon-closed
// check under the same lock also guarantees the queue channel is never
// written after Close has closed it).
func (d *Daemon) enqueue(p *localProc, fn func()) {
	if !p.alive || d.closed {
		return
	}
	select {
	case p.queue <- fn:
	default:
		// Queue overflow: fall back to a goroutine rather than dropping the
		// delivery; ordering may suffer under extreme overload but messages
		// are never lost.
		go fn()
	}
}

// KillProcess simulates the crash of a local process: it stops receiving
// messages and is removed (by view changes) from every group it belonged
// to. The local monitoring mechanism detects process crashes immediately
// (Section 2.1), so unlike a site crash no timeout is involved.
func (d *Daemon) KillProcess(p addr.Address) error {
	d.mu.Lock()
	lp, ok := d.procs[p.Base()]
	if !ok {
		d.mu.Unlock()
		return ErrUnknownProc
	}
	if !lp.alive {
		d.mu.Unlock()
		return nil
	}
	lp.alive = false
	d.failedProcs[p.Base()] = true
	// Collect the groups the process belongs to.
	var affected []addr.Address
	for gid, gs := range d.groups {
		if _, isMember := gs.members[p.Base()]; isMember {
			affected = append(affected, gid)
		}
	}
	d.mu.Unlock()

	for _, gid := range affected {
		d.requestRemoval(gid, []addr.Address{p.Base()}, gbFail, false)
	}
	return nil
}

// ProcessAlive reports whether the process is registered and alive.
func (d *Daemon) ProcessAlive(p addr.Address) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	lp, ok := d.procs[p.Base()]
	return ok && lp.alive
}

// WatchSites invokes the callback on every failure-detector event (site
// failure or recovery). It is a compatibility wrapper over the event stream:
// events are delivered asynchronously from a forwarding goroutine, and the
// returned cancel stops the subscription.
//
// Deprecated: subscribe to the event stream (Events) with kinds SiteDown and
// SiteUp instead.
func (d *Daemon) WatchSites(cb func(fdetect.Event)) (cancel func()) {
	ch, cancel := d.bus.Subscribe(events.Filter{
		Kinds: []events.Kind{events.SiteDown, events.SiteUp},
	}, 0)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for e := range ch {
			kind := fdetect.SiteFailed
			if e.Kind == events.SiteUp {
				kind = fdetect.SiteRecovered
			}
			cb(fdetect.Event{Site: e.Peer, Kind: kind, When: e.Time})
		}
	}()
	return cancel
}

// Events subscribes to this site's operational event stream. The filter
// restricts the stream (the zero Filter matches everything); buf sizes the
// subscriber's bounded queue (<=0 selects events.DefaultQueue). The returned
// cancel unsubscribes and closes the channel; the channel also closes when
// the daemon shuts down.
func (d *Daemon) Events(f events.Filter, buf int) (<-chan events.Event, func()) {
	return d.bus.Subscribe(f, buf)
}

// EventStats reports the bus's publish and drop counters.
func (d *Daemon) EventStats() events.Stats { return d.bus.Stats() }

// AnnounceRestart publishes a SiteRestart event; the cluster harness calls it
// when a site comes back with a new incarnation.
func (d *Daemon) AnnounceRestart() {
	d.bus.Publish(events.Event{Kind: events.SiteRestart, Detail: fmt.Sprintf("incarnation %d", d.cfg.Incarnation)})
}

// ---------------------------------------------------------------------------
// Transport plumbing and call helper

// encodePacket builds the wire bytes of a daemon-to-daemon packet: the
// two-byte envelope followed by the marshalled body. The body comes from
// the message's cached-encoding handle, so a packet is marshalled at most
// once no matter how many times it is encoded or to how many destination
// sites the resulting bytes are fanned out.
func encodePacket(pt byte, p *msg.Message) ([]byte, error) {
	body, err := p.CachedMarshal()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, envelopeBytes+len(body))
	raw[0], raw[1] = wireVersion, pt
	copy(raw[envelopeBytes:], body)
	return raw, nil
}

// sendRaw transmits pre-encoded packet bytes to a site.
func (d *Daemon) sendRaw(to addr.SiteID, raw []byte) error {
	d.observeSite(to)
	return d.tr.Send(to, raw)
}

// fanoutRaw ships the same encoded packet to every listed site except this
// one. The slice is shared across destinations; the transport copies it into
// its frames, so the caller may release it afterwards.
func (d *Daemon) fanoutRaw(sites []addr.SiteID, raw []byte) {
	for _, s := range sites {
		if s == d.site {
			continue
		}
		_ = d.sendRaw(s, raw)
	}
}

// sendPacket encodes and transmits a daemon-to-daemon packet of the given
// type.
func (d *Daemon) sendPacket(to addr.SiteID, pt byte, p *msg.Message) error {
	raw, err := encodePacket(pt, p)
	if err != nil {
		return err
	}
	return d.sendRaw(to, raw)
}

// observeSite starts monitoring a site the daemon has learned about.
func (d *Daemon) observeSite(s addr.SiteID) {
	if s == d.site {
		return
	}
	d.mu.Lock()
	already := d.monitored[s]
	if !already {
		d.monitored[s] = true
	}
	d.mu.Unlock()
	if !already {
		d.det.AddPeer(s)
	}
}

// heartbeatRaw is the complete wire form of a heartbeat: envelope only, no
// body. The receiver identifies the peer from the transport's source site.
var heartbeatRaw = []byte{wireVersion, ptHeartbeat}

// sendHeartbeat is handed to the failure detector.
func (d *Daemon) sendHeartbeat(to addr.SiteID) {
	_ = d.sendRaw(to, heartbeatRaw)
}

// newCall registers a pending request/response exchange and returns its id
// and response channel.
func (d *Daemon) newCall() (int64, chan *msg.Message) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextCall++
	id := d.nextCall
	ch := make(chan *msg.Message, 8)
	d.calls[id] = ch
	return id, ch
}

// dropCall removes a pending call.
func (d *Daemon) dropCall(id int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.calls, id)
	delete(d.callSite, id)
}

// newReqID mints a stable, globally unique GBCAST request id. The id
// travels with the request across coordinator fail-over re-submissions and
// with the resulting commit, so a request is executed at most once no
// matter how many coordinators handle it. The incarnation participates so
// that a restarted site's fresh counter can never collide with ids its
// previous incarnation already committed (a collision would make the
// commit-record dedupe swallow the restarted site's first requests).
func (d *Daemon) newReqID() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextReqID++
	return (int64(d.site)<<16|int64(d.cfg.Incarnation)&0xffff)<<32 | d.nextReqID&0xffffffff
}

// errSiteFailed aborts pending calls to a site the failure detector declared
// dead. It travels as the fErr text of the injected response and is
// reconstructed by wireError, so callers can tell a detector abort (the
// request is still queued in the reliable transport and may yet be
// delivered) from an explicit refusal by the remote site.
var errSiteFailed = errors.New("protos: site failed")

// failCallsTo aborts every pending call addressed to a site the failure
// detector has declared dead, so callers (coordinator requests, lookups)
// retry against a successor immediately instead of waiting out the call
// timeout.
func (d *Daemon) failCallsTo(s addr.SiteID) {
	d.mu.Lock()
	var chans []chan *msg.Message
	for id, target := range d.callSite {
		if target != s {
			continue
		}
		if ch, ok := d.calls[id]; ok {
			chans = append(chans, ch)
		}
	}
	d.mu.Unlock()
	for _, ch := range chans {
		m := msg.New()
		m.PutString(fErr, errSiteFailed.Error())
		select {
		case ch <- m:
		default:
		}
	}
}

// respond delivers a response to a pending call, if it still exists. A
// response for a call that already gave up — a relayed CBCAST whose caller
// timed out — is routed to the relay-repair reconciler instead of being
// dropped: a late refusal means a FIFO sequence number was consumed for a
// message no receiver will ever see, and the hole must be repaired.
func (d *Daemon) respond(callID int64, m *msg.Message) {
	d.mu.Lock()
	ch, ok := d.calls[callID]
	if !ok {
		if lr, tracked := d.lostRelays[callID]; tracked {
			delete(d.lostRelays, callID)
			d.mu.Unlock()
			d.reconcileLostRelay(lr, m)
			return
		}
	}
	d.mu.Unlock()
	if ok {
		select {
		case ch <- m:
		default:
		}
	}
}

// call sends a request to a site and waits for its response or a timeout.
// Error responses (ptError) carry an fErr field, which is how they are told
// apart from the matching positive response type.
func (d *Daemon) call(to addr.SiteID, pt byte, req *msg.Message) (*msg.Message, error) {
	id, ch := d.newCall()
	defer d.dropCall(id)
	d.mu.Lock()
	d.callSite[id] = to
	d.mu.Unlock()
	req.PutInt(fCall, id)
	if err := d.sendPacket(to, pt, req); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Has(fErr) {
			return nil, wireError("protos: remote error: %s", resp.GetString(fErr, "unknown"))
		}
		return resp, nil
	case <-time.After(d.cfg.CallTimeout):
		return nil, ErrTimeout
	}
}

// wireError reconstructs an error that travelled as text in an fErr field,
// restoring the package's sentinel errors so callers can match them with
// errors.Is across the request/response wire (a Join refused by a minority
// coordinator must surface as ErrNonPrimary, not as opaque text).
func wireError(format, text string) error {
	for _, sentinel := range []error{
		ErrNonPrimary, ErrUnknownGroup, ErrNotMember, ErrUnknownProc, ErrDeadProcess, ErrClosed,
		errSiteFailed,
	} {
		if text == sentinel.Error() {
			return sentinel
		}
	}
	return fmt.Errorf(format, text)
}

// replyError sends a ptError response for a request.
func (d *Daemon) replyError(to addr.SiteID, callID int64, why string) {
	p := msg.New()
	p.PutInt(fCall, callID)
	p.PutString(fErr, why)
	_ = d.sendPacket(to, ptError, p)
}

// handleTransport dispatches an incoming daemon-to-daemon packet. The packet
// type sits at a fixed offset in the envelope, so dispatch does not decode
// the body; heartbeats carry no body at all.
func (d *Daemon) handleTransport(from addr.SiteID, raw []byte) {
	if len(raw) < envelopeBytes || raw[0] != wireVersion {
		return
	}
	pt := raw[1]
	d.observeSite(from)
	if pt == ptHeartbeat {
		d.det.OnHeartbeat(from)
		return
	}
	p, err := msg.Unmarshal(raw[envelopeBytes:])
	if err != nil {
		return
	}
	switch pt {
	case ptData:
		d.handleData(from, p)
	case ptAbPropose:
		d.handleAbPropose(from, p)
	case ptAbCommit:
		d.handleAbCommit(from, p)
	case ptGbRequest:
		d.handleGbRequest(from, p)
	case ptGbPrepare:
		d.handleGbPrepare(from, p)
	case ptGbAck, ptGbDone, ptLookupResp, ptError, ptRelayAck:
		d.respond(p.GetInt(fCall, 0), p)
	case ptAbResolicit:
		d.handleAbResolicit(from, p)
	case ptGbCommit:
		d.handleGbCommit(from, p)
	case ptLookup:
		d.handleLookup(from, p)
	case ptStateBlock:
		d.handleStateBlock(from, p)
	case ptStateAck:
		d.handleStateAck(from, p)
	}
}

// onDetectorEvent reacts to site failures and recoveries.
func (d *Daemon) onDetectorEvent(ev fdetect.Event) {
	d.mu.Lock()
	switch ev.Kind {
	case fdetect.SiteFailed:
		d.suspected[ev.Site] = true
	case fdetect.SiteRecovered:
		delete(d.suspected, ev.Site)
	}
	d.mu.Unlock()

	switch ev.Kind {
	case fdetect.SiteFailed:
		d.bus.Publish(events.Event{Kind: events.SiteDown, Peer: ev.Site})
	case fdetect.SiteRecovered:
		d.bus.Publish(events.Event{Kind: events.SiteUp, Peer: ev.Site})
	}
	switch ev.Kind {
	case fdetect.SiteFailed:
		// Abort in-flight calls to the dead site first so their callers
		// re-route to the successor while the failure is handled.
		d.failCallsTo(ev.Site)
		d.handleSiteFailure(ev.Site)
	case fdetect.SiteRecovered:
		// A healed partition: any group copy stranded in a non-primary
		// partition can now try to find the primary and merge back.
		if d.cfg.Merge == MergeAuto {
			d.mergeNonPrimaryGroups()
		}
		// Parked rejoins retry regardless of the merge policy: each one
		// continues a merge that was already initiated (automatically or by
		// an explicit MergeGroup call) and then stalled.
		go d.retryParkedMerges()
	}
}

// SuspectedSites returns the sites currently believed failed.
func (d *Daemon) SuspectedSites() []addr.SiteID {
	return d.det.Suspected()
}
