package protos

import (
	"errors"

	"repro/internal/addr"
	"repro/internal/msg"
)

// Outcome is the settled fate of a GBCAST request whose call raced a failure:
// the toolkit can always say, after the fact, whether a timed-out request
// took effect.
type Outcome uint8

const (
	// OutcomeUnknown means the outcome cannot be determined (yet): the
	// request is still in flight, the group is unreachable or wedged
	// non-primary, or the id is not one this daemon minted.
	OutcomeUnknown Outcome = iota
	// OutcomeCommitted means the request executed: its payload was (or will
	// be) delivered / its membership change installed.
	OutcomeCommitted
	// OutcomeAborted means the request did not execute and never will: the
	// settlement protocol advanced the dedupe mark past it, so any
	// straggling copy is discarded rather than executed.
	OutcomeAborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ErrUnknownRequest reports an outcome query for an id this daemon never
// minted (or one so old its record was evicted).
var ErrUnknownRequest = errors.New("protos: unknown request id")

// reqState tracks what this daemon knows, requester-side, about a GBCAST
// request it minted.
type reqState uint8

const (
	reqPending   reqState = iota + 1 // coordinatorCall still running
	reqCommitted                     // the call returned success
	reqGaveUp                        // the call failed with the outcome unresolved
	reqAborted                       // a seal round settled the request as aborted
)

// reqRecord is one reqLog entry: which group the request went to and how far
// its resolution has progressed.
type reqRecord struct {
	gid   addr.Address
	state reqState
}

// reqLogLimit bounds the requester-side request log.
const reqLogLimit = 4096

// noteRequest records (or updates) the requester-side state of a request id.
func (d *Daemon) noteRequest(rid int64, gid addr.Address, st reqState) {
	if rid == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.reqLog[rid]; ok {
		// Committed and aborted are terminal; pending advances to anything;
		// gave-up advances only to a settled state. A late note must never
		// regress a record.
		terminal := prev.state == reqCommitted || prev.state == reqAborted
		settles := st == reqCommitted || st == reqAborted
		if !terminal && (settles || prev.state == reqPending && st == reqGaveUp) {
			d.reqLog[rid] = reqRecord{gid: prev.gid, state: st}
		}
		return
	}
	d.reqLog[rid] = reqRecord{gid: gid.Base(), state: st}
	d.reqLogOrder = append(d.reqLogOrder, rid)
	for len(d.reqLogOrder) > reqLogLimit {
		delete(d.reqLog, d.reqLogOrder[0])
		d.reqLogOrder = d.reqLogOrder[1:]
	}
}

// RequestOutcome answers what happened to a GBCAST request this daemon
// minted — typically one whose Multicast call timed out. A request still in
// flight answers OutcomeUnknown immediately (it must be allowed to finish).
// A given-up request is settled: first against local first-hand knowledge
// (this site may itself have applied the commit, or sealed the id), then by
// running a gbSeal GBCAST through the group's acting coordinator. The seal
// is a full flush in which every member site reports its first-hand
// knowledge of the target id; one positive report anywhere makes the answer
// Committed — this is what keeps the answer correct across coordinator
// fail-over, where the successor may have missed a partially fanned-out
// commit that other survivors applied. With no positive report the seal's
// own commit advances every member's dedupe mark past the target, so the
// request can never execute later, making Aborted definitive rather than a
// guess.
//
// While the group is unreachable or wedged in a non-primary partition the
// query returns OutcomeUnknown with the underlying error; ask again after
// the partition heals.
func (d *Daemon) RequestOutcome(rid int64) (Outcome, error) {
	d.mu.Lock()
	rec, ok := d.reqLog[rid]
	if !ok {
		d.mu.Unlock()
		return OutcomeUnknown, ErrUnknownRequest
	}
	switch rec.state {
	case reqCommitted:
		d.mu.Unlock()
		return OutcomeCommitted, nil
	case reqAborted:
		d.mu.Unlock()
		return OutcomeAborted, nil
	case reqPending:
		d.mu.Unlock()
		return OutcomeUnknown, nil
	}
	// Given up. Fast path: this site may host a (primary) copy of the group
	// with first-hand knowledge of the id.
	if gs, hosted := d.groups[rec.gid]; hosted && !gs.nonPrimary {
		switch gbOutcomeVoteLocked(gs, rid) {
		case voteCommitted:
			d.reqLog[rid] = reqRecord{gid: rec.gid, state: reqCommitted}
			d.mu.Unlock()
			return OutcomeCommitted, nil
		case voteAborted:
			d.reqLog[rid] = reqRecord{gid: rec.gid, state: reqAborted}
			d.mu.Unlock()
			return OutcomeAborted, nil
		}
	}
	d.mu.Unlock()

	// Settle remotely with a gbSeal round.
	req := msg.New()
	req.PutInt(fKind, gbSeal)
	req.PutAddress(fGroup, rec.gid)
	req.PutInt(fSealReq, rid)
	resp, err := d.coordinatorCall(rec.gid, req)
	if err != nil {
		return OutcomeUnknown, err
	}
	switch resp.GetInt(fOutcome, 0) {
	case voteCommitted:
		d.noteRequest(rid, rec.gid, reqCommitted)
		return OutcomeCommitted, nil
	case voteAborted:
		d.noteRequest(rid, rec.gid, reqAborted)
		return OutcomeAborted, nil
	}
	// The seal was answered from a dedupe record (a re-submission after the
	// first seal round committed) and carries no outcome; the caller can
	// simply ask again — by now the local fast path or a fresh seal settles.
	return OutcomeUnknown, nil
}
