package protos

// Regression test for merge parking: a partition merge that has already
// discarded the minority's local group copy can still fail in its rejoin
// phase (the primary may become unreachable, or wedge, between the survey
// and the joins). Before parking was added the failed rejoin left a live
// process unhosted forever — no group copy, no retry, invisible to the
// application. The daemon must park the member and complete the rejoin by
// itself once a recovery event or scan tick finds the primary again.

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/simnet"
)

// TestMergeRejoinExhaustionParksAndRetries drives a merge into rejoin
// exhaustion deterministically. Members sit on sites 1–4; site 3's member is
// excised by the majority {1,2,4}, leaving a three-member primary view. Then
// site 2 is cut off from its fellow members an instant before the minority
// heals toward it: site 2 still answers the merge survey as primary (its
// detector has not yet suspected anyone), so site 3 discards its stale copy
// and starts rejoining — but site 2 holds only one of the primary view's
// three members, so it wedges once its detector catches up and every rejoin
// attempt is refused. The member must be parked. After the full heal the
// surviving primary {1,4} is reachable again and the parked rejoin must
// complete without application intervention.
func TestMergeRejoinExhaustionParksAndRetries(t *testing.T) {
	tc := newFaultCluster(t, 4, simnet.FastConfig(), 500*time.Millisecond, scenarioDetector())
	procs := buildGroup(t, tc, "parked", 1, 2, 3, 4)
	gid := groupOf(t, tc, procs[0], "parked")

	// Phase 1: isolate site 3; the majority excises its member and the
	// stranded copy wedges non-primary.
	for _, s := range []simnet.SiteID{1, 2, 4} {
		tc.net.Partition(3, s)
	}
	waitFor(t, "majority excises the isolated member", 10*time.Second, func() bool {
		return procs[0].lastView().Size() == 3 && !tc.daemons[3].GroupPrimary(gid)
	})

	// Phase 2: cut site 2 off from the other members, heal the minority
	// toward site 2 only, and merge. The survey's answer arrives
	// milliseconds after the heal — long before site 2's detector can
	// suspect its peers and wedge — so the merge proceeds past the survey
	// and discards the local copy; the rejoins then route to site 2 (the
	// only reachable member site), which wedges with one of three members
	// and refuses them all.
	tc.net.Partition(2, 1)
	tc.net.Partition(2, 4)
	tc.net.Heal(3, 2)
	_ = tc.daemons[3].MergeGroup(gid)
	waitFor(t, "exhausted rejoin parks the member", 20*time.Second, func() bool {
		pending := tc.daemons[3].PendingMerges()
		return len(pending) == 1 && pending[0] == gid.Base()
	})

	// Phase 3: full heal. The surviving primary {1,4} becomes reachable,
	// site 2 merges its wedged copy back by itself, and the parked rejoin
	// must complete automatically (recovery event or scan tick), re-hosting
	// the member under a full four-member view.
	tc.net.HealAll()
	waitFor(t, "parked rejoin completes after the heal", 30*time.Second, func() bool {
		return len(tc.daemons[3].PendingMerges()) == 0 && procs[2].lastView().Size() == 4
	})

	// The re-hosted member is a full group citizen again.
	waitFor(t, "re-hosted member receives multicasts", 10*time.Second, func() bool {
		if _, err := tc.daemons[1].Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("post-park")); err != nil {
			return false
		}
		time.Sleep(50 * time.Millisecond)
		return procs[2].got("post-park")
	})
}
