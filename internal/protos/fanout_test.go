package protos

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/msg"
	"repro/internal/simnet"
)

// quietCluster builds a cluster with heartbeats disabled so that the only
// message encodes during the measurement window belong to the multicast
// under test.
func quietCluster(t *testing.T, sites int) *testCluster {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	tc := &testCluster{t: t, net: net, daemons: make(map[addr.SiteID]*Daemon)}
	for i := 1; i <= sites; i++ {
		d, err := New(Config{
			Site:              addr.SiteID(i),
			Network:           net,
			CallTimeout:       2 * time.Second,
			DisableHeartbeats: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.daemons[addr.SiteID(i)] = d
	}
	t.Cleanup(func() {
		for _, d := range tc.daemons {
			d.Close()
		}
		net.Close()
	})
	return tc
}

// TestCbcastFanoutMarshalsOnce pins the marshal-once property of the hot
// path: a CBCAST data packet fanned out to N destination sites is encoded
// exactly once, with the same bytes handed to every destination.
func TestCbcastFanoutMarshalsOnce(t *testing.T) {
	tc := quietCluster(t, 4)
	sender := tc.newProc(1)
	receivers := []*testProc{tc.newProc(2), tc.newProc(3), tc.newProc(4)}

	view, err := tc.daemons[1].CreateGroup(sender.addr, "fanout")
	if err != nil {
		t.Fatal(err)
	}
	gid := view.Group
	for _, r := range receivers {
		if _, err := r.d.Join(r.addr, gid, JoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the final view to be installed everywhere, then let the join
	// traffic drain completely.
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, d := range tc.daemons {
			if v, ok := d.CurrentView(gid); !ok || v.Size() != 4 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("views never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	payload := msg.New().PutString("body", "once")
	before := msg.EncodeCount()
	if _, err := tc.daemons[1].Multicast(sender.addr, CBCAST, addr.List{gid}, 1, payload); err != nil {
		t.Fatal(err)
	}
	for _, r := range receivers {
		waitUntil(t, 3*time.Second, func() bool { return r.got("once") })
	}
	delta := msg.EncodeCount() - before

	// One encode for the data packet, shared by all three remote sites.
	// (Receiving sites only decode; acks and heartbeats never touch the
	// message codec.)
	if delta != 1 {
		t.Errorf("multicast to 3 remote sites performed %d encodes, want exactly 1", delta)
	}
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
