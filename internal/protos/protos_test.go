package protos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/fdetect"
	"repro/internal/msg"
	"repro/internal/netback"
	"repro/internal/simnet"
)

// testCluster wires up a network and a daemon per site. net is the simnet
// fault-injection handle, nil when the cluster runs on another backend (the
// protos-level backend conformance test in backend_test.go); fabric is the
// backend-neutral view every daemon attaches to.
type testCluster struct {
	t       *testing.T
	net     *simnet.Network
	fabric  netback.Network
	daemons map[addr.SiteID]*Daemon
	lastInc map[addr.SiteID]addr.Incarnation
}

// testDetectorConfig is the aggressive failure-detector tuning every protos
// test runs with.
func testDetectorConfig() fdetect.Config {
	return fdetect.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		InitialTimeout:    150 * time.Millisecond,
		MinTimeout:        100 * time.Millisecond,
		MaxTimeout:        500 * time.Millisecond,
		DeviationFactor:   4,
	}
}

func newTestCluster(t *testing.T, sites int) *testCluster {
	t.Helper()
	return newTestClusterOn(t, simnet.New(simnet.FastConfig()), sites)
}

// newTestClusterOn builds a cluster on an arbitrary backend fabric.
func newTestClusterOn(t *testing.T, fab netback.Network, sites int) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		fabric:  fab,
		daemons: make(map[addr.SiteID]*Daemon),
		lastInc: make(map[addr.SiteID]addr.Incarnation),
	}
	if sn, ok := fab.(*simnet.Network); ok {
		tc.net = sn
	}
	for i := 1; i <= sites; i++ {
		tc.addSite(addr.SiteID(i))
	}
	t.Cleanup(func() {
		for _, d := range tc.daemons {
			d.Close()
		}
		fab.Close()
	})
	return tc
}

// addSite starts a daemon at the given site id; a site id used before comes
// back with a bumped incarnation, as a real restart would.
func (tc *testCluster) addSite(id addr.SiteID) *Daemon {
	tc.t.Helper()
	inc := addr.Incarnation(0)
	if last, ok := tc.lastInc[id]; ok {
		inc = last + 1
	}
	d, err := New(Config{
		Site:        id,
		Incarnation: inc,
		Network:     tc.fabric,
		CallTimeout: 2 * time.Second,
		Detector:    testDetectorConfig(),
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.lastInc[id] = inc
	tc.daemons[id] = d
	return d
}

// testProc is a registered process that records what it receives.
type testProc struct {
	addr addr.Address
	d    *Daemon

	mu       sync.Mutex
	msgs     []*msg.Message
	entries  []addr.EntryID
	views    []core.View
	received map[string]bool
}

func (tc *testCluster) newProc(site addr.SiteID) *testProc {
	tc.t.Helper()
	p := &testProc{d: tc.daemons[site], received: make(map[string]bool)}
	a, err := tc.daemons[site].RegisterProcess(
		func(entry addr.EntryID, m *msg.Message) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.msgs = append(p.msgs, m)
			p.entries = append(p.entries, entry)
			p.received[m.GetString("body", "")] = true
		},
		func(v core.View) {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.views = append(p.views, v)
		},
	)
	if err != nil {
		tc.t.Fatal(err)
	}
	p.addr = a
	return p
}

func (p *testProc) got(body string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received[body]
}

func (p *testProc) bodies() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.msgs))
	for i, m := range p.msgs {
		out[i] = m.GetString("body", "")
	}
	return out
}

func (p *testProc) numMsgs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.msgs)
}

func (p *testProc) numViews() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.views)
}

func (p *testProc) lastView() core.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.views) == 0 {
		return core.View{}
	}
	return p.views[len(p.views)-1]
}

func (p *testProc) viewSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.views))
	for i, v := range p.views {
		out[i] = v.Size()
	}
	return out
}

func waitFor(t *testing.T, what string, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func body(s string) *msg.Message { return msg.New().PutString("body", s) }

// buildGroup creates a group on site 1 and joins one member per additional
// site, returning the members in rank order.
func buildGroup(t *testing.T, tc *testCluster, name string, sites ...addr.SiteID) []*testProc {
	t.Helper()
	procs := make([]*testProc, len(sites))
	procs[0] = tc.newProc(sites[0])
	view, err := tc.daemons[sites[0]].CreateGroup(procs[0].addr, name)
	if err != nil {
		t.Fatal(err)
	}
	gid := view.Group
	for i := 1; i < len(sites); i++ {
		procs[i] = tc.newProc(sites[i])
		d := tc.daemons[sites[i]]
		g, err := d.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if g != gid {
			t.Fatalf("lookup returned %v, want %v", g, gid)
		}
		if _, err := d.Join(procs[i].addr, gid, JoinOptions{}); err != nil {
			t.Fatalf("join from site %d: %v", sites[i], err)
		}
	}
	// Wait until every member has seen the final view.
	waitFor(t, "all members to see the full view", 5*time.Second, func() bool {
		for _, p := range procs {
			if p.lastView().Size() != len(sites) {
				return false
			}
		}
		return true
	})
	return procs
}

func groupOf(t *testing.T, tc *testCluster, p *testProc, name string) addr.Address {
	t.Helper()
	gid, err := p.d.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return gid
}

// ---------------------------------------------------------------------------

func TestCreateLookupAndCurrentView(t *testing.T) {
	tc := newTestCluster(t, 2)
	creator := tc.newProc(1)
	view, err := tc.daemons[1].CreateGroup(creator.addr, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if view.Size() != 1 || view.Coordinator() != creator.addr || view.ID != 1 {
		t.Errorf("initial view = %v", view)
	}
	// The creator gets the initial view notification.
	waitFor(t, "creator view callback", time.Second, func() bool { return creator.numViews() == 1 })

	// Lookup from the other site resolves the name and caches the view.
	gid, err := tc.daemons[2].Lookup("svc")
	if err != nil {
		t.Fatal(err)
	}
	if gid != view.Group {
		t.Errorf("lookup = %v, want %v", gid, view.Group)
	}
	if v, ok := tc.daemons[2].CurrentView(gid); !ok || v.Size() != 1 {
		t.Errorf("cached view = %v %v", v, ok)
	}
	// Unknown names fail.
	if _, err := tc.daemons[2].Lookup("no-such-group"); err == nil {
		t.Error("lookup of unknown name succeeded")
	}
}

func TestJoinBuildsRankedViewsEverywhere(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "ranked", 1, 2, 3)

	// All members agree on the final membership and its order.
	want := []addr.Address{procs[0].addr, procs[1].addr, procs[2].addr}
	for i, p := range procs {
		v := p.lastView()
		if v.Size() != 3 {
			t.Fatalf("member %d final view %v", i, v)
		}
		for r, m := range want {
			if v.Members[r] != m {
				t.Errorf("member %d sees rank %d = %v, want %v", i, r, v.Members[r], m)
			}
		}
		if v.RankOf(p.addr) != i {
			t.Errorf("member %d computes its own rank as %d", i, v.RankOf(p.addr))
		}
	}
	// Members see the same sequence of view sizes (view synchrony): the
	// creator sees 1,2,3; the second member 2,3; the third only 3.
	if got := procs[0].viewSizes(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("creator view sizes = %v", got)
	}
	if got := procs[1].viewSizes(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("second member view sizes = %v", got)
	}
	if got := procs[2].viewSizes(); len(got) != 1 || got[0] != 3 {
		t.Errorf("third member view sizes = %v", got)
	}
}

func TestCBCASTDeliveredToAllMembers(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "cb", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "cb")

	if _, err := procs[0].d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "CBCAST delivery at every member", 3*time.Second, func() bool {
		for _, p := range procs {
			if p.numMsgs() < 1 {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		bs := p.bodies()
		if bs[0] != "hello" {
			t.Errorf("member %d received %v", i, bs)
		}
		p.mu.Lock()
		m := p.msgs[0]
		p.mu.Unlock()
		if m.Sender() != procs[0].addr {
			t.Errorf("member %d sender = %v", i, m.Sender())
		}
		if m.Group() != gid {
			t.Errorf("member %d group = %v", i, m.Group())
		}
	}
}

func TestCBCASTFIFOFromOneSender(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "fifo", 1, 2)
	gid := groupOf(t, tc, procs[0], "fifo")

	const k = 25
	for i := 0; i < k; i++ {
		if _, err := procs[0].d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all FIFO messages", 5*time.Second, func() bool {
		return procs[1].numMsgs() >= k && procs[0].numMsgs() >= k
	})
	for _, p := range procs {
		bs := p.bodies()
		for i := 0; i < k; i++ {
			if bs[i] != fmt.Sprintf("m%02d", i) {
				t.Fatalf("FIFO violated at %d: %v", i, bs[:k])
			}
		}
	}
}

func TestABCASTTotalOrderConcurrentSenders(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "ab", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "ab")

	const per = 10
	var wg sync.WaitGroup
	for s, p := range procs {
		wg.Add(1)
		go func(s int, p *testProc) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := p.d.Multicast(p.addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("s%d-%d", s, i))); err != nil {
					t.Errorf("abcast: %v", err)
					return
				}
			}
		}(s, p)
	}
	wg.Wait()
	total := per * len(procs)
	waitFor(t, "all ABCASTs delivered everywhere", 10*time.Second, func() bool {
		for _, p := range procs {
			if p.numMsgs() < total {
				return false
			}
		}
		return true
	})
	ref := procs[0].bodies()
	for i, p := range procs[1:] {
		got := p.bodies()
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("ABCAST order differs at member %d position %d: %q vs %q\nref=%v\ngot=%v",
					i+1, j, got[j], ref[j], ref, got)
			}
		}
	}
}

func TestABCASTSenderDeliversInTotalOrderToo(t *testing.T) {
	// A sender must not deliver its own ABCAST early: its delivery position
	// must match other members'.
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "abself", 1, 2)
	gid := groupOf(t, tc, procs[0], "abself")

	var wg sync.WaitGroup
	for s, p := range procs {
		wg.Add(1)
		go func(s int, p *testProc) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, _ = p.d.Multicast(p.addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("x%d-%d", s, i)))
			}
		}(s, p)
	}
	wg.Wait()
	waitFor(t, "ABCAST deliveries", 10*time.Second, func() bool {
		return procs[0].numMsgs() >= 16 && procs[1].numMsgs() >= 16
	})
	a, b := procs[0].bodies(), procs[1].bodies()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a, b)
		}
	}
}

func TestExternalClientMulticastAndReply(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "service", 1, 2)

	// A client at site 3 that is not a member queries the group; each
	// member replies point-to-point.
	client := tc.newProc(3)
	gidFromClient, err := tc.daemons[3].Lookup("service")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.daemons[3].Multicast(client.addr, CBCAST, addr.List{gidFromClient},
		addr.EntryUserBase, body("query")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "query at both members", 3*time.Second, func() bool {
		return procs[0].numMsgs() >= 1 && procs[1].numMsgs() >= 1
	})
	// Members reply directly to the client.
	for i, p := range procs {
		p.mu.Lock()
		sender := p.msgs[0].Sender()
		p.mu.Unlock()
		if sender != client.addr {
			t.Fatalf("member %d saw sender %v, want client %v", i, sender, client.addr)
		}
		if _, err := p.d.Multicast(p.addr, CBCAST, addr.List{sender}, addr.EntryUserBase, body(fmt.Sprintf("answer-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replies at the client", 3*time.Second, func() bool { return client.numMsgs() >= 2 })
	client.mu.Lock()
	defer client.mu.Unlock()
	if !client.received["answer-0"] || !client.received["answer-1"] {
		t.Errorf("client received %v", client.bodies())
	}
}

func TestExternalClientFIFOOrder(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "extfifo", 1)
	gid := groupOf(t, tc, procs[0], "extfifo")
	client := tc.newProc(2)
	if _, err := tc.daemons[2].Lookup("extfifo"); err != nil {
		t.Fatal(err)
	}
	const k = 20
	for i := 0; i < k; i++ {
		if _, err := tc.daemons[2].Multicast(client.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("q%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "client messages at the member", 5*time.Second, func() bool { return procs[0].numMsgs() >= k })
	bs := procs[0].bodies()
	for i := 0; i < k; i++ {
		if bs[i] != fmt.Sprintf("q%02d", i) {
			t.Fatalf("external FIFO violated: %v", bs[:k])
		}
	}
}

func TestUserGBCASTOrderedAgainstOtherTraffic(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "gb", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "gb")

	// Interleave CBCAST traffic with a user GBCAST; every member must see
	// the GBCAST at the same position relative to the CBCASTs from the
	// same sender (the GBCAST is a synchronization point).
	for i := 0; i < 5; i++ {
		if _, err := procs[1].d.Multicast(procs[1].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := procs[1].d.Multicast(procs[1].addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body("GB")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := procs[1].d.Multicast(procs[1].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("post%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all 11 messages everywhere", 5*time.Second, func() bool {
		for _, p := range procs {
			if p.numMsgs() < 11 {
				return false
			}
		}
		return true
	})
	for i, p := range procs {
		bs := p.bodies()
		gbAt := -1
		for j, b := range bs {
			if b == "GB" {
				gbAt = j
			}
		}
		if gbAt == -1 {
			t.Fatalf("member %d never saw the GBCAST: %v", i, bs)
		}
		for j, b := range bs[:gbAt] {
			if len(b) >= 4 && b[:4] == "post" {
				t.Errorf("member %d saw %q (position %d) before the GBCAST", i, b, j)
			}
		}
		for j, b := range bs[gbAt+1:] {
			if len(b) >= 3 && b[:3] == "pre" {
				t.Errorf("member %d saw %q (position %d) after the GBCAST", i, b, gbAt+1+j)
			}
		}
	}
}

func TestStateTransferOnJoin(t *testing.T) {
	tc := newTestCluster(t, 2)
	creator := tc.newProc(1)
	view, err := tc.daemons[1].CreateGroup(creator.addr, "stateful")
	if err != nil {
		t.Fatal(err)
	}
	gid := view.Group
	// The creator registers a state provider capturing its "database".
	if err := tc.daemons[1].SetStateProvider(creator.addr, gid, func() [][]byte {
		return [][]byte{[]byte("block-1"), []byte("block-2")}
	}); err != nil {
		t.Fatal(err)
	}

	joiner := tc.newProc(2)
	var mu sync.Mutex
	var blocks []string
	gotLast := false
	if _, err := tc.daemons[2].Lookup("stateful"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.daemons[2].Join(joiner.addr, gid, JoinOptions{
		WantState: true,
		StateReceiver: func(b []byte, last bool) {
			mu.Lock()
			defer mu.Unlock()
			if len(b) > 0 {
				blocks = append(blocks, string(b))
			}
			if last {
				gotLast = true
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "state transfer completion", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotLast
	})
	mu.Lock()
	if len(blocks) != 2 || blocks[0] != "block-1" || blocks[1] != "block-2" {
		t.Errorf("blocks = %v", blocks)
	}
	mu.Unlock()

	// Messages sent after the join are delivered to the new member after
	// its state.
	if _, err := tc.daemons[1].Multicast(creator.addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-join")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-join delivery", 3*time.Second, func() bool { return joiner.numMsgs() >= 1 })
	if joiner.bodies()[0] != "after-join" {
		t.Errorf("joiner received %v", joiner.bodies())
	}
}

func TestLeaveShrinksView(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "leavers", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "leavers")

	if err := procs[1].d.Leave(procs[1].addr, gid); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "view without the leaver", 3*time.Second, func() bool {
		return procs[0].lastView().Size() == 2 && procs[2].lastView().Size() == 2
	})
	v := procs[0].lastView()
	if v.Contains(procs[1].addr) {
		t.Error("leaver still in the view")
	}
	if v.Coordinator() != procs[0].addr || v.RankOf(procs[2].addr) != 1 {
		t.Errorf("ranking after leave wrong: %v", v)
	}
}

func TestProcessFailureRemovesMember(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "crashy", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "crashy")

	// Kill the member at site 2; the survivors must observe a view change
	// that removes it (process failures are detected locally, no timeout).
	if err := tc.daemons[2].KillProcess(procs[1].addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "view change after process failure", 3*time.Second, func() bool {
		return procs[0].lastView().Size() == 2 && procs[2].lastView().Size() == 2
	})
	if procs[0].lastView().Contains(procs[1].addr) {
		t.Error("failed process still in the view")
	}
	// The group keeps working.
	if _, err := procs[0].d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("still-alive")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-failure delivery", 3*time.Second, func() bool {
		return procs[2].got("still-alive")
	})
}

func TestCoordinatorFailureElectsNextOldest(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "coord", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "coord")

	// Kill the creator (the coordinator). The next-oldest member takes
	// over; survivors install a 2-member view coordinated by procs[1].
	if err := tc.daemons[1].KillProcess(procs[0].addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "view change after coordinator failure", 3*time.Second, func() bool {
		return procs[1].lastView().Size() == 2 && procs[2].lastView().Size() == 2
	})
	if procs[1].lastView().Coordinator() != procs[1].addr {
		t.Errorf("new coordinator = %v, want %v", procs[1].lastView().Coordinator(), procs[1].addr)
	}
	// The group still accepts joins through the new coordinator.
	late := tc.newProc(3)
	if _, err := tc.daemons[3].Join(late.addr, gid, JoinOptions{}); err != nil {
		t.Fatalf("join after coordinator failure: %v", err)
	}
	waitFor(t, "view including the late joiner", 3*time.Second, func() bool {
		return procs[1].lastView().Size() == 3
	})
}

func TestSiteFailureRemovesItsMembers(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "sitefail", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "sitefail")

	// Crash site 3 entirely: its daemon stops responding; the failure
	// detector at the surviving sites times out and the coordinator removes
	// the member.
	tc.daemons[3].Close()
	waitFor(t, "view without the crashed site's member", 8*time.Second, func() bool {
		return procs[0].lastView().Size() == 2 && procs[1].lastView().Size() == 2
	})
	if procs[0].lastView().Contains(procs[2].addr) {
		t.Error("member at the crashed site still in the view")
	}
	// Traffic continues among the survivors.
	if _, err := procs[0].d.Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("survivors")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-site-failure ABCAST", 5*time.Second, func() bool {
		return procs[1].got("survivors") && procs[0].got("survivors")
	})
}

func TestViewSynchronyIdenticalViewSequences(t *testing.T) {
	tc := newTestCluster(t, 3)
	procs := buildGroup(t, tc, "vsync", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "vsync")

	// A member leaves, another joins: every surviving original member must
	// observe exactly the same sequence of views (ids and memberships).
	if err := procs[2].d.Leave(procs[2].addr, gid); err != nil {
		t.Fatal(err)
	}
	late := tc.newProc(3)
	if _, err := tc.daemons[3].Join(late.addr, gid, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "final 3-member view", 5*time.Second, func() bool {
		return procs[0].lastView().Size() == 3 && procs[1].lastView().Size() == 3 &&
			procs[0].lastView().Contains(late.addr)
	})
	a := procs[0]
	b := procs[1]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	// procs[1] joined at view 2, so its history is a suffix of procs[0]'s.
	offset := len(a.views) - len(b.views)
	if offset < 0 {
		t.Fatalf("member 1 saw more views (%d) than the creator (%d)", len(b.views), len(a.views))
	}
	for i := range b.views {
		if !a.views[offset+i].Equal(b.views[i]) {
			t.Errorf("view sequences diverge at %d: %v vs %v", i, a.views[offset+i], b.views[i])
		}
	}
}

func TestFlushWaitsForOutstandingABCASTs(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "flush", 1, 2)
	gid := groupOf(t, tc, procs[0], "flush")

	for i := 0; i < 5; i++ {
		if _, err := procs[0].d.Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := procs[0].d.Flush(procs[0].addr); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// After a successful flush every ABCAST must already be delivered at
	// the remote member (they were committed and the transport drained).
	waitFor(t, "flushed messages at the remote member", 2*time.Second, func() bool {
		return procs[1].numMsgs() >= 5
	})
}

func TestCountersTrackPrimitives(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "counted", 1, 2)
	gid := groupOf(t, tc, procs[0], "counted")
	d := tc.daemons[1]

	before := d.Counters()
	if _, err := d.Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Multicast(procs[0].addr, CBCAST, addr.List{procs[1].addr}, addr.EntryUserBase, body("p2p")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deliveries", 3*time.Second, func() bool { return procs[1].numMsgs() >= 3 })
	after := d.Counters()
	if after.CBCASTs-before.CBCASTs != 1 {
		t.Errorf("CBCAST count delta = %d", after.CBCASTs-before.CBCASTs)
	}
	if after.ABCASTs-before.ABCASTs != 1 {
		t.Errorf("ABCAST count delta = %d", after.ABCASTs-before.ABCASTs)
	}
	if after.PointToPoints-before.PointToPoints != 1 {
		t.Errorf("point-to-point count delta = %d", after.PointToPoints-before.PointToPoints)
	}
}

func TestMulticastValidation(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "valid", 1, 2)
	gid := groupOf(t, tc, procs[0], "valid")
	d := tc.daemons[1]

	if _, err := d.Multicast(procs[0].addr, CBCAST, nil, addr.EntryUserBase, body("x")); err == nil {
		t.Error("empty destination list accepted")
	}
	if _, err := d.Multicast(procs[0].addr, ABCAST, addr.List{procs[1].addr}, addr.EntryUserBase, body("x")); err == nil {
		t.Error("ABCAST without a group destination accepted")
	}
	if _, err := d.Multicast(addr.NewProcess(1, 0, 9999), CBCAST, addr.List{gid}, addr.EntryUserBase, body("x")); err == nil {
		t.Error("multicast from an unregistered process accepted")
	}
	other := tc.newProc(1)
	otherGroup, err := d.CreateGroup(other.addr, "valid2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Multicast(procs[0].addr, CBCAST, addr.List{gid, otherGroup.Group}, addr.EntryUserBase, body("x")); err == nil {
		t.Error("two group destinations accepted")
	}
}

func TestMessagesFromKilledProcessAreDiscarded(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "zombie", 1, 2)

	if err := tc.daemons[1].KillProcess(procs[0].addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failure view", 3*time.Second, func() bool { return procs[1].lastView().Size() == 1 })
	// Attempting to multicast from the dead process fails locally.
	gid := procs[1].lastView().Group
	if _, err := tc.daemons[1].Multicast(procs[0].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("zombie")); err == nil {
		t.Error("multicast from a dead process accepted")
	}
}

func TestGroupVanishesWhenLastMemberLeaves(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "vanish", 1)
	gid := groupOf(t, tc, procs[0], "vanish")
	if err := procs[0].d.Leave(procs[0].addr, gid); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "group state dropped", 2*time.Second, func() bool {
		return len(tc.daemons[1].GroupsHosted()) == 0
	})
}
