package protos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/msg"
)

// joinKey identifies a pending join (group, joiner).
type joinKey struct {
	gid    addr.Address
	joiner addr.Address
}

// CreateGroup creates a new process group with the given symbolic name and
// the creator as its only (and therefore oldest) member. The creator's view
// callback is invoked with the initial view.
func (d *Daemon) CreateGroup(creator addr.Address, name string) (core.View, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return core.View{}, ErrClosed
	}
	lp, ok := d.procs[creator.Base()]
	if !ok {
		return core.View{}, ErrUnknownProc
	}
	if !lp.alive {
		return core.View{}, ErrDeadProcess
	}
	gid := d.gen.NextGroup()
	view := core.View{
		Group:   gid,
		Name:    name,
		ID:      1,
		Members: []addr.Address{creator.Base()},
	}
	gs := &groupState{
		view:    view,
		members: make(map[addr.Address]*memberState),
		recent:  make(map[core.MsgID]*msg.Message),
	}
	gs.members[creator.Base()] = &memberState{
		proc:       lp,
		causal:     core.NewCausalQueue(0, 1),
		total:      core.NewTotalQueue(0),
		joinedView: view.ID,
	}
	d.groups[gid] = gs
	if name != "" {
		d.nameCache[name] = gid
	}
	d.counters.ViewChanges++
	d.bus.Publish(events.Event{Kind: events.ViewInstalled, Group: gid, View: view.ID, Detail: "created"})
	v := view.Clone()
	if lp.deliverView != nil {
		cb := lp.deliverView
		d.enqueue(lp, func() { cb(v) })
	}
	return view.Clone(), nil
}

// CurrentView returns the daemon's notion of the group's current view: the
// authoritative local view when the site hosts members, or the cached view
// learned from lookups otherwise.
func (d *Daemon) CurrentView(gid addr.Address) (core.View, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if gs, ok := d.groups[gid.Base()]; ok {
		return gs.view.Clone(), true
	}
	if v, ok := d.remoteViews[gid.Base()]; ok {
		return v.Clone(), true
	}
	return core.View{}, false
}

// GroupsHosted returns the groups with members at this site.
func (d *Daemon) GroupsHosted() []addr.Address {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]addr.Address, 0, len(d.groups))
	for gid := range d.groups {
		out = append(out, gid)
	}
	return out
}

// Lookup resolves a symbolic group name to its group address, querying other
// sites when the group is not hosted locally (the paper's pg_lookup). The
// current view of the group is cached as a side effect.
func (d *Daemon) Lookup(name string) (addr.Address, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return addr.Nil, ErrClosed
	}
	// A locally hosted group, or a previously resolved name.
	if gid, ok := d.nameCache[name]; ok {
		if _, hosted := d.groups[gid]; hosted {
			d.mu.Unlock()
			return gid, nil
		}
		if _, cached := d.remoteViews[gid]; cached {
			d.mu.Unlock()
			return gid, nil
		}
	}
	for gid, gs := range d.groups {
		if gs.view.Name == name {
			d.nameCache[name] = gid
			d.mu.Unlock()
			return gid, nil
		}
	}
	d.mu.Unlock()
	view, err := d.lookupRemote(name, addr.Nil)
	if err != nil {
		return addr.Nil, err
	}
	return view.Group, nil
}

// LookupView resolves a name and returns the (possibly cached) view.
func (d *Daemon) LookupView(name string) (core.View, error) {
	gid, err := d.Lookup(name)
	if err != nil {
		return core.View{}, err
	}
	if v, ok := d.CurrentView(gid); ok {
		return v, nil
	}
	return d.lookupRemote(name, gid)
}

// refreshView fetches a fresh copy of a group's view from the sites that
// host it. Used when a cached view appears stale (e.g. its coordinator has
// stopped responding).
func (d *Daemon) refreshView(gid addr.Address) (core.View, error) {
	return d.lookupRemote("", gid)
}

// RefreshGroupView returns the group's current view, bypassing any cached
// copy when the group is not hosted locally. Reply collection uses it to
// notice that destinations have failed while the caller was waiting.
func (d *Daemon) RefreshGroupView(gid addr.Address) (core.View, error) {
	d.mu.Lock()
	if gs, ok := d.groups[gid.Base()]; ok {
		v := gs.view.Clone()
		d.mu.Unlock()
		return v, nil
	}
	d.mu.Unlock()
	return d.lookupRemote("", gid)
}

// lookupRemote queries every other attached site for a group, by name or by
// group id, and caches the first positive answer.
func (d *Daemon) lookupRemote(name string, gid addr.Address) (core.View, error) {
	callID, ch := d.newCall()
	defer d.dropCall(callID)

	// One request message serves every queried site: it is marshalled once
	// and the same bytes are broadcast.
	req := msg.New()
	req.PutInt(fCall, callID)
	if name != "" {
		req.PutString(fName, name)
	}
	if !gid.IsNil() {
		req.PutAddress(fGroup, gid)
	}
	raw, err := encodePacket(ptLookup, req)
	if err != nil {
		return core.View{}, err
	}
	sites := d.net.Sites()
	asked := 0
	for _, s := range sites {
		if s == d.site {
			continue
		}
		if err := d.sendRaw(s, raw); err == nil {
			asked++
		}
	}
	if asked == 0 {
		return core.View{}, fmt.Errorf("%w: %q", ErrUnknownGroup, name)
	}
	deadline := time.After(d.cfg.CallTimeout)
	negatives := 0
	for {
		select {
		case resp := <-ch:
			if resp.GetInt(fFound, 0) == 1 {
				view := decodeView(resp.GetMessage(fView))
				d.cacheRemoteView(view)
				return view, nil
			}
			negatives++
			if negatives >= asked {
				return core.View{}, fmt.Errorf("%w: %q", ErrUnknownGroup, name)
			}
		case <-deadline:
			return core.View{}, fmt.Errorf("%w: lookup %q", ErrTimeout, name)
		}
	}
}

// cacheRemoteView stores a view learned from another site.
func (d *Daemon) cacheRemoteView(v core.View) {
	if v.Group.IsNil() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, hosted := d.groups[v.Group]; hosted {
		return
	}
	if old, ok := d.remoteViews[v.Group]; !ok || v.ID >= old.ID {
		d.remoteViews[v.Group] = v.Clone()
		if v.Name != "" {
			d.nameCache[v.Name] = v.Group
		}
	}
}

// handleLookup answers a name/gid lookup from another site. The response
// carries whether this site's copy of the group is primary, so the merge
// protocol can tell the primary partition apart from a fellow minority.
func (d *Daemon) handleLookup(from addr.SiteID, p *msg.Message) {
	name := p.GetString(fName, "")
	gid := p.GetAddress(fGroup)
	resp := msg.New()
	resp.PutInt(fCall, p.GetInt(fCall, 0))
	d.mu.Lock()
	var found *core.View
	primary := false
	if !gid.IsNil() {
		if gs, ok := d.groups[gid.Base()]; ok {
			v := gs.view.Clone()
			found = &v
			primary = !gs.nonPrimary
		}
	}
	if found == nil && name != "" {
		for _, gs := range d.groups {
			if gs.view.Name == name {
				v := gs.view.Clone()
				found = &v
				primary = !gs.nonPrimary
				break
			}
		}
	}
	d.mu.Unlock()
	resp.PutInt(fSite, int64(d.site))
	if found != nil {
		resp.PutInt(fFound, 1)
		resp.PutMessage(fView, encodeView(*found))
		if primary {
			resp.PutInt(fPrimary, 1)
		}
	} else {
		resp.PutInt(fFound, 0)
	}
	_ = d.sendPacket(from, ptLookupResp, resp)
}

// JoinOptions configures a Join call.
type JoinOptions struct {
	// WantState requests a state transfer from the group's oldest member;
	// deliveries to the joiner are held until the transfer completes
	// (Section 3.8 "State transfer").
	WantState bool
	// StateReceiver receives the transferred state blocks. Required when
	// WantState is set if the application wants the data; if nil the
	// blocks are discarded (but delivery is still held until the transfer
	// finishes, preserving the virtual-synchrony cut).
	StateReceiver func(block []byte, last bool)
	// Credentials is an opaque string checked by the group's join
	// validation routine (the protection tool), if one is installed.
	Credentials string
}

// Join adds a local process to an existing group (the paper's pg_join /
// join_and_xfer). It returns the first view that includes the new member.
func (d *Daemon) Join(joiner addr.Address, gid addr.Address, opts JoinOptions) (core.View, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return core.View{}, ErrClosed
	}
	lp, ok := d.procs[joiner.Base()]
	if !ok {
		d.mu.Unlock()
		return core.View{}, ErrUnknownProc
	}
	if !lp.alive {
		d.mu.Unlock()
		return core.View{}, ErrDeadProcess
	}
	if opts.WantState || opts.StateReceiver != nil {
		d.pendingJoin[joinKey{gid.Base(), joiner.Base()}] = pendingJoin{stateRecv: opts.StateReceiver}
	}
	d.mu.Unlock()

	req := msg.New()
	req.PutInt(fKind, gbJoin)
	req.PutAddress(fGroup, gid.Base())
	req.PutAddressList(fProcs, addr.List{joiner.Base()})
	req.PutAddress(fSender, joiner.Base())
	req.PutString(fName, opts.Credentials)
	if opts.WantState {
		req.PutInt(fWantState, 1)
	}
	resp, err := d.coordinatorCall(gid, req)
	if err != nil {
		d.mu.Lock()
		delete(d.pendingJoin, joinKey{gid.Base(), joiner.Base()})
		d.mu.Unlock()
		return core.View{}, err
	}
	return decodeView(resp.GetMessage(fView)), nil
}

// Leave removes a local process from a group voluntarily (pg_leave).
func (d *Daemon) Leave(member addr.Address, gid addr.Address) error {
	req := msg.New()
	req.PutInt(fKind, gbLeave)
	req.PutAddress(fGroup, gid.Base())
	req.PutAddressList(fProcs, addr.List{member.Base()})
	req.PutAddress(fSender, member.Base())
	_, err := d.coordinatorCall(gid, req)
	return err
}

// SetStateProvider registers the routine the oldest member uses to encode
// the group state for a joining member. Providers return the state as a
// series of blocks.
func (d *Daemon) SetStateProvider(member, gid addr.Address, provider func() [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		return ErrUnknownGroup
	}
	ms, ok := gs.members[member.Base()]
	if !ok {
		return ErrNotMember
	}
	ms.stateProv = provider
	return nil
}

// SetStateReceiver registers (or replaces) the routine that receives the
// group state on the member's behalf. Join with a StateReceiver registers
// one implicitly; group creators — which never joined — use this call so
// that a later partition-merge rejoin can restore their state from the
// primary.
func (d *Daemon) SetStateReceiver(member, gid addr.Address, recv func(block []byte, last bool)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		return ErrUnknownGroup
	}
	ms, ok := gs.members[member.Base()]
	if !ok {
		return ErrNotMember
	}
	ms.stateRecv = recv
	return nil
}

// actingCoordinator returns the oldest member of the view whose site is not
// suspected and that is not known to have failed. Caller holds d.mu.
func (d *Daemon) actingCoordinator(v core.View) addr.Address {
	for _, m := range v.Members {
		if d.suspected[m.Site] {
			continue
		}
		if d.failedProcs[m.Base()] {
			continue
		}
		return m
	}
	return addr.Nil
}

// groupReqMu returns the mutex serializing this daemon's GBCAST request
// submissions for one group.
func (d *Daemon) groupReqMu(gid addr.Address) *sync.Mutex {
	d.mu.Lock()
	defer d.mu.Unlock()
	mu, ok := d.reqSerial[gid.Base()]
	if !ok {
		mu = &sync.Mutex{}
		d.reqSerial[gid.Base()] = mu
	}
	return mu
}

// coordinatorCall routes a gbRequest to the group's acting coordinator and
// waits for its gbDone response, retrying with a refreshed view if the
// coordinator cannot be reached (it may have failed). The request carries a
// stable request id minted once here: when a coordinator dies after
// committing but before answering, the re-submission reaches the successor
// with the same id and is answered from the commit record instead of being
// executed twice.
//
// Submissions are serialized per group: a daemon has at most one GBCAST
// request for a given group in flight at a time, and ids are minted under
// the same lock, so a requester's commits happen in request-id order. The
// per-requester high-water dedupe (groupState.gbSeen) depends on this — an
// id below the high-water mark is only guaranteed to have committed if a
// later id can never commit while an earlier one is still in flight.
func (d *Daemon) coordinatorCall(gid addr.Address, req *msg.Message) (*msg.Message, error) {
	mu := d.groupReqMu(gid)
	mu.Lock()
	defer mu.Unlock()
	rid := req.GetInt(fReqID, 0)
	if rid == 0 {
		rid = d.newReqID()
		req.PutInt(fReqID, rid)
	}
	d.noteRequest(rid, gid, reqPending)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		view, ok := d.CurrentView(gid)
		if !ok || view.Size() == 0 {
			if v, err := d.refreshView(gid); err == nil {
				view = v
			} else {
				lastErr = err
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		d.mu.Lock()
		coord := d.actingCoordinator(view)
		d.mu.Unlock()
		if coord.IsNil() {
			lastErr = ErrGroupVanished
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if coord.Site == d.site {
			// Execute locally: enqueue the work and wait for completion.
			resp, err := d.localGbRequest(gid, req)
			if err == nil {
				d.noteRequest(rid, gid, reqCommitted)
				return resp, nil
			}
			lastErr = err
		} else {
			resp, err := d.call(coord.Site, ptGbRequest, req)
			if err == nil {
				d.noteRequest(rid, gid, reqCommitted)
				return resp, nil
			}
			lastErr = err
			// The coordinator may have failed: force a view refresh next
			// time round.
			d.mu.Lock()
			delete(d.remoteViews, gid.Base())
			d.mu.Unlock()
		}
		if errors.Is(lastErr, ErrNonPrimary) {
			// The coordinator is wedged in a minority partition; retrying
			// the same partition cannot succeed until the merge runs.
			d.noteRequest(rid, gid, reqGaveUp)
			return nil, lastErr
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	d.noteRequest(rid, gid, reqGaveUp)
	return nil, lastErr
}

// requestRemoval initiates removal of members (voluntarily or by failure)
// from a group. It is asynchronous; the resulting view change propagates
// through the normal GBCAST path. A forced removal runs the full
// wedge/flush even when the members are already gone from the view — the
// takeover path uses it to finish a dead coordinator's partially completed
// protocol.
func (d *Daemon) requestRemoval(gid addr.Address, procs []addr.Address, kind int64, force bool) {
	req := msg.New()
	req.PutInt(fKind, kind)
	req.PutAddress(fGroup, gid.Base())
	req.PutAddressList(fProcs, procs)
	if force {
		req.PutInt(fForce, 1)
	}
	go func() {
		_, _ = d.coordinatorCall(gid, req)
	}()
}
