package protos

// Primary-partition and merge scenarios at the protocol level: a minority
// partition must wedge read-only instead of minting a split-brain view, the
// majority must keep committing, and a healed minority must merge back in
// through the join machinery without a restart. Also the regression test for
// the per-requester GBCAST dedupe high-water marks.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/msg"
	"repro/internal/simnet"
)

// TestMinorityPartitionWedgesThenMerges cuts one site of a three-member
// group off from the other two. The majority side must remove the stranded
// member and keep working; the minority side must refuse to install a
// split-brain view and reject writes (ErrNonPrimary); and after the
// partition heals, the stranded member must rejoin automatically — same
// process, no restart — and carry traffic again.
func TestMinorityPartitionWedgesThenMerges(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "prim", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "prim")

	var tmu sync.Mutex
	var transitions []bool
	tc.daemons[3].WatchPrimary(func(g addr.Address, primary bool) {
		if g == gid {
			tmu.Lock()
			transitions = append(transitions, primary)
			tmu.Unlock()
		}
	})

	tc.net.Partition(3, 1)
	tc.net.Partition(3, 2)

	waitFor(t, "majority removes the stranded member", 10*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 2 && !v.Contains(procs[2].addr)
	})
	waitFor(t, "minority wedges into non-primary mode", 10*time.Second, func() bool {
		return !tc.daemons[3].GroupPrimary(gid)
	})

	// The minority is read-only: writes are refused, and no split-brain view
	// was installed (the member still holds the last agreed 3-member view).
	if _, err := tc.daemons[3].Multicast(procs[2].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("rejected")); !errors.Is(err, ErrNonPrimary) {
		t.Errorf("minority write err = %v, want ErrNonPrimary", err)
	}
	// Membership changes surface the same sentinel through the GBCAST reply
	// path (the error text is reconstructed into the sentinel on arrival).
	if err := tc.daemons[3].Leave(procs[2].addr, gid); !errors.Is(err, ErrNonPrimary) {
		t.Errorf("minority Leave err = %v, want ErrNonPrimary", err)
	}
	if v := procs[2].lastView(); v.Size() != 3 {
		t.Errorf("minority installed a split-brain view: %v", v)
	}

	// The majority keeps committing.
	if _, err := tc.daemons[1].Multicast(procs[0].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("during-partition")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "majority-side delivery during the partition", 5*time.Second, func() bool {
		return procs[0].got("during-partition") && procs[1].got("during-partition")
	})

	// Heal: the minority must merge back automatically, through the ordinary
	// join machinery, keeping its process address.
	tc.net.HealAll()
	ok3 := func() bool {
		v := procs[0].lastView()
		return v.Size() == 3 && v.Contains(procs[2].addr) && tc.daemons[3].GroupPrimary(gid)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !ok3() {
		time.Sleep(2 * time.Millisecond)
	}
	if !ok3() {
		t.Fatalf("merge did not converge: v1=%v v2=%v v3=%v prim3=%v",
			procs[0].lastView(), procs[1].lastView(), procs[2].lastView(), tc.daemons[3].GroupPrimary(gid))
	}

	// The merged member carries traffic again.
	if _, err := tc.daemons[3].Multicast(procs[2].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("after-merge")); err != nil {
		t.Fatalf("write after merge: %v", err)
	}
	waitFor(t, "post-merge delivery everywhere", 5*time.Second, func() bool {
		return procs[0].got("after-merge") && procs[1].got("after-merge") && procs[2].got("after-merge")
	})

	tmu.Lock()
	defer tmu.Unlock()
	if len(transitions) < 2 || transitions[0] != false || transitions[len(transitions)-1] != true {
		t.Errorf("primary-status transitions at the minority = %v, want false ... true", transitions)
	}
}

// TestGbDedupeSurvivesLongHistory pins the per-requester high-water dedupe:
// a requester that re-submits an already-committed GBCAST after hundreds of
// other requests have committed in between must still be answered from the
// commit record instead of re-executing. (The previous bounded 256-entry
// request-id history forgot the request and delivered its payload twice.)
func TestGbDedupeSurvivesLongHistory(t *testing.T) {
	tc := newTestCluster(t, 2)
	procs := buildGroup(t, tc, "hw", 1, 2)
	gid := groupOf(t, tc, procs[0], "hw")
	d1 := tc.daemons[1]

	mkReq := func(reqID int64, text string) *msg.Message {
		req := msg.New()
		req.PutInt(fKind, gbUser)
		req.PutAddress(fGroup, gid)
		req.PutAddress(fSender, procs[0].addr)
		req.PutInt(fEntry, int64(addr.EntryUserBase))
		req.PutMessage(fPayload, body(text))
		req.PutInt(fReqID, reqID)
		return req
	}

	first := int64(77)<<32 | 1
	if _, err := d1.localGbRequest(gid, mkReq(first, "hw-once")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first GBCAST delivery", 5*time.Second, func() bool {
		return procs[0].got("hw-once") && procs[1].got("hw-once")
	})

	// Hundreds of commits from other requesters — far beyond any bounded
	// history — land in between.
	for k := 0; k < 300; k++ {
		id := int64(100+k)<<32 | 1
		if _, err := d1.localGbRequest(gid, mkReq(id, fmt.Sprintf("filler-%03d", k))); err != nil {
			t.Fatalf("filler %d: %v", k, err)
		}
	}

	// The slow retrier re-submits the committed request.
	if _, err := d1.localGbRequest(gid, mkReq(first, "hw-once")); err != nil {
		t.Fatalf("re-submission: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	for i, p := range procs {
		if n := countBody(p, "hw-once"); n != 1 {
			t.Errorf("member %d delivered the re-submitted GBCAST %d times, want 1", i+1, n)
		}
	}
}

// TestTotalWedgeResumesAfterHeal splits a five-member group three ways so
// that NO partition retains half of the view: every copy wedges
// non-primary, and there is no primary to merge into. After the heal, the
// reachable wedged copies — which all still hold the same last agreed view,
// since nothing can have committed past it — must resume in place,
// coordinated by the site hosting the oldest member, and carry traffic
// again.
func TestTotalWedgeResumesAfterHeal(t *testing.T) {
	tc := newFaultCluster(t, 5, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "wedge", 1, 2, 3, 4, 5)
	gid := groupOf(t, tc, procs[0], "wedge")

	// Three-way split: {1,2} | {3,4} | {5}.
	groups := [][]addr.SiteID{{1, 2}, {3, 4}, {5}}
	for i, ga := range groups {
		for j, gb := range groups {
			if i >= j {
				continue
			}
			for _, a := range ga {
				for _, b := range gb {
					tc.net.Partition(a, b)
				}
			}
		}
	}

	waitFor(t, "every fragment wedges non-primary", 10*time.Second, func() bool {
		for s := addr.SiteID(1); s <= 5; s++ {
			if tc.daemons[s].GroupPrimary(gid) {
				return false
			}
		}
		return true
	})

	tc.net.HealAll()
	waitFor(t, "all copies resume in place after the heal", 15*time.Second, func() bool {
		for s := addr.SiteID(1); s <= 5; s++ {
			if !tc.daemons[s].GroupPrimary(gid) {
				return false
			}
		}
		return true
	})
	// The resume installs no new view: everyone still holds the last agreed
	// five-member view, and nothing was lost.
	for i, p := range procs {
		if v := p.lastView(); v.Size() != 5 {
			t.Errorf("member %d view after resume = %v, want the intact 5-member view", i+1, v)
		}
	}

	if _, err := tc.daemons[5].Multicast(procs[4].addr, ABCAST, addr.List{gid}, addr.EntryUserBase, body("resumed")); err != nil {
		t.Fatalf("write after resume: %v", err)
	}
	waitFor(t, "post-resume delivery at every member", 10*time.Second, func() bool {
		for _, p := range procs {
			if !p.got("resumed") {
				return false
			}
		}
		return true
	})
}

// TestAsymmetricPartitionRejoinsRemovedMember cuts only the link between
// the coordinator's site and one member's site. The coordinator removes the
// member (its site is unreachable from the coordinator, so the removal is
// not corroborated away), but the member's own copy never wedges — its
// acting coordinator is elsewhere. When the link heals and the removal
// commit finally reaches the member's site, the daemon must notice it hosts
// the removed process alive and rejoin it instead of silently dropping it.
func TestAsymmetricPartitionRejoinsRemovedMember(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), time.Second, scenarioDetector())
	procs := buildGroup(t, tc, "asym", 1, 2, 3)
	gid := groupOf(t, tc, procs[0], "asym")

	tc.net.Partition(1, 3)
	waitFor(t, "coordinator removes the unreachable member", 10*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 2 && !v.Contains(procs[2].addr)
	})

	tc.net.Heal(1, 3)
	waitFor(t, "wrongly removed member rejoins after the heal", 15*time.Second, func() bool {
		v := procs[0].lastView()
		return v.Size() == 3 && v.Contains(procs[2].addr)
	})

	if _, err := tc.daemons[3].Multicast(procs[2].addr, CBCAST, addr.List{gid}, addr.EntryUserBase, body("back")); err != nil {
		t.Fatalf("write from the rejoined member: %v", err)
	}
	waitFor(t, "rejoined member's traffic delivered", 5*time.Second, func() bool {
		return procs[0].got("back") && procs[1].got("back")
	})
}
