package protos

// Request-outcome settlement scenarios: a requester that gave up on a GBCAST
// call must be able to learn, after the fact, whether the request took
// effect — with the answer staying correct when the coordinator that ran the
// request dies before answering.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/simnet"
)

// TestRequestOutcomeCommittedAcrossCoordinatorCrash commits a GBCAST at both
// members while every answer toward the requester is held, so the requester
// gives up with the outcome unresolved. The coordinator then crashes. The
// outcome query must still answer Committed: the seal round reaches the
// surviving member, whose first-hand dedupe record of the id is a positive
// vote.
func TestRequestOutcomeCommittedAcrossCoordinatorCrash(t *testing.T) {
	tc := newFaultCluster(t, 3, simnet.FastConfig(), 300*time.Millisecond, scenarioDetector())
	procs := buildGroup(t, tc, "outc", 1, 2)
	gid := groupOf(t, tc, procs[0], "outc")

	// The requester at site 3 learns the view while links are healthy, then
	// loses every inbound answer: its request reaches the coordinator, the
	// commit reaches both members, but nothing comes back.
	requester := tc.newProc(3)
	if _, err := tc.daemons[3].RefreshGroupView(gid); err != nil {
		t.Fatal(err)
	}
	tc.net.PauseLink(1, 3)
	tc.net.PauseLink(2, 3)

	_, rid, err := tc.daemons[3].MulticastRequest(requester.addr, GBCAST, addr.List{gid}, addr.EntryUserBase, body("orphaned"))
	if err == nil {
		t.Fatal("MulticastRequest succeeded with every answer held")
	}
	if rid == 0 {
		t.Fatal("failed MulticastRequest did not report the minted request id")
	}
	waitFor(t, "commit at both members", 5*time.Second, func() bool {
		return procs[0].got("orphaned") && procs[1].got("orphaned")
	})

	// Coordinator crashes; the link heals. Only the successor knows the
	// request's fate now.
	tc.daemons[1].Close()
	tc.net.ResumeAll()
	waitFor(t, "survivor finishes the takeover", 10*time.Second, func() bool {
		return procs[1].lastView().Size() == 1
	})

	waitFor(t, "outcome settles as committed via the successor", 10*time.Second, func() bool {
		out, err := tc.daemons[3].RequestOutcome(rid)
		if out == OutcomeAborted {
			t.Fatalf("RequestOutcome = aborted for a committed request (err %v)", err)
		}
		return out == OutcomeCommitted
	})

	// Settled outcomes are cached requester-side: no further protocol rounds.
	before := tc.daemons[2].Counters().GBCASTs
	if out, err := tc.daemons[3].RequestOutcome(rid); err != nil || out != OutcomeCommitted {
		t.Fatalf("cached RequestOutcome = %v, %v; want committed, nil", out, err)
	}
	if after := tc.daemons[2].Counters().GBCASTs; after != before {
		t.Errorf("cached outcome query ran %d extra GBCAST rounds", after-before)
	}
}

// TestRequestOutcomeUnknownForeignID asks about an id the daemon never
// minted.
func TestRequestOutcomeUnknownForeignID(t *testing.T) {
	tc := newFaultCluster(t, 1, simnet.FastConfig(), time.Second, scenarioDetector())
	out, err := tc.daemons[1].RequestOutcome(424242)
	if out != OutcomeUnknown || !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("RequestOutcome = %v, %v; want unknown, ErrUnknownRequest", out, err)
	}
}
