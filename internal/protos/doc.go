// Package protos implements the per-site "protocols process" shown in
// Figure 1 of the paper. One Daemon runs at every site: it performs all
// inter-site communication, maintains process-group membership views,
// implements the CBCAST / ABCAST / GBCAST multicast primitives on top of the
// ordering state machines in internal/core, detects failures, and delivers
// messages to the client processes registered at its site.
package protos
