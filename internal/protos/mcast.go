package protos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/msg"
)

// errRelayHeld reports that a relayed multicast was parked while its group is
// wedged by a GBCAST flush; it is re-dispatched (and acknowledged) when the
// flush completes, so no acknowledgement is sent yet.
var errRelayHeld = errors.New("protos: relay held during flush")

// fRelay marks a group multicast submitted by a non-member sender; such
// multicasts are routed to the group's coordinator site, which fans them out
// using its authoritative view (so that clients never need to track group
// membership themselves).
const fRelay = "&relay"

// Multicast sends an application message to a destination list using the
// selected primitive (Section 3.2 "bc_mcast"). The destination list may
// contain one group address and any number of process addresses. CBCAST and
// ABCAST are asynchronous: the call returns as soon as the message has been
// handed to the network. GBCAST is synchronous: it returns once the
// globally-ordered delivery has been committed at the group.
func (d *Daemon) Multicast(sender addr.Address, proto Protocol, dests addr.List, entry addr.EntryID, payload *msg.Message) (core.MsgID, error) {
	id, _, err := d.MulticastRequest(sender, proto, dests, entry, payload)
	return id, err
}

// MulticastRequest is Multicast, additionally returning the stable GBCAST
// request id minted for the send (zero for CBCAST/ABCAST, which have no
// request id). The id is returned even when the call fails: that is
// precisely the case in which the caller needs it, to ask RequestOutcome
// what became of the timed-out request.
func (d *Daemon) MulticastRequest(sender addr.Address, proto Protocol, dests addr.List, entry addr.EntryID, payload *msg.Message) (core.MsgID, int64, error) {
	if len(dests) == 0 {
		return core.MsgID{}, 0, ErrEmptyDest
	}
	if payload == nil {
		payload = msg.New()
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return core.MsgID{}, 0, ErrClosed
	}
	lp, ok := d.procs[sender.Base()]
	if !ok {
		d.mu.Unlock()
		return core.MsgID{}, 0, ErrUnknownProc
	}
	if !lp.alive {
		d.mu.Unlock()
		return core.MsgID{}, 0, ErrDeadProcess
	}
	lp.nextSeq++
	id := core.MsgID{Sender: sender.Base(), Seq: lp.nextSeq}
	d.mu.Unlock()

	var group addr.Address
	var procDests addr.List
	for _, a := range dests.Dedup() {
		if a.IsGroup() {
			if !group.IsNil() {
				return core.MsgID{}, 0, fmt.Errorf("%w: at most one group destination", ErrBadProtocol)
			}
			group = a.Base()
		} else {
			procDests = append(procDests, a.Base())
		}
	}

	if group.IsNil() {
		if proto == GBCAST || proto == ABCAST {
			return core.MsgID{}, 0, fmt.Errorf("%w: %v requires a group destination", ErrBadProtocol, proto)
		}
		return id, 0, d.sendPointToPoint(sender, id, procDests, entry, payload)
	}

	if proto == GBCAST {
		if len(procDests) > 0 {
			return core.MsgID{}, 0, fmt.Errorf("%w: GBCAST cannot carry extra process destinations", ErrBadProtocol)
		}
		rid, err := d.sendUserGbcast(sender, group, entry, payload)
		return id, rid, err
	}

	if err := d.sendGroupMulticast(sender, lp, proto, group, id, entry, payload); err != nil {
		return core.MsgID{}, 0, err
	}
	if len(procDests) > 0 {
		if err := d.sendPointToPoint(sender, id, procDests, entry, payload); err != nil {
			return core.MsgID{}, 0, err
		}
	}
	return id, 0, nil
}

// sendUserGbcast routes a user-level GBCAST through the group coordinator.
// It returns the stable request id minted for the call — even on error, so
// the caller can later query the request's outcome.
func (d *Daemon) sendUserGbcast(sender, gid addr.Address, entry addr.EntryID, payload *msg.Message) (int64, error) {
	req := msg.New()
	req.PutInt(fKind, gbUser)
	req.PutAddress(fGroup, gid)
	req.PutAddress(fSender, sender.Base())
	req.PutInt(fEntry, int64(entry))
	req.PutMessage(fPayload, payload.Clone())
	_, err := d.coordinatorCall(gid, req)
	return req.GetInt(fReqID, 0), err
}

// sendPointToPoint delivers a message directly to a list of processes; the
// reply mechanism of the group RPC facility uses this path (a reply is "one
// asynchronous CBCAST" in Table 1 terms).
func (d *Daemon) sendPointToPoint(sender addr.Address, id core.MsgID, dests addr.List, entry addr.EntryID, payload *msg.Message) error {
	if len(dests) == 0 {
		return nil
	}
	pkt := msg.New()
	pkt.PutInt(fProto, int64(CBCAST))
	putMsgID(pkt, id)
	pkt.PutAddress(fSender, sender.Base())
	pkt.PutInt(fEntry, int64(entry))
	pkt.PutAddressList(fDests, dests)
	pkt.PutMessage(fPayload, payload.Clone())

	d.mu.Lock()
	d.counters.PointToPoints++
	d.mu.Unlock()

	remoteSites := make(map[addr.SiteID]bool)
	for _, a := range dests {
		if a.Site == d.site {
			continue
		}
		remoteSites[a.Site] = true
	}
	// Local destinations are delivered immediately.
	d.deliverPointToPoint(pkt)
	if len(remoteSites) == 0 {
		return nil
	}
	// Marshal once; every remote site receives the same bytes.
	raw, err := encodePacket(ptData, pkt)
	if err != nil {
		return err
	}
	for s := range remoteSites {
		if err := d.sendRaw(s, raw); err != nil {
			return err
		}
	}
	return nil
}

// deliverPointToPoint hands a direct message to its local destinations.
func (d *Daemon) deliverPointToPoint(pkt *msg.Message) {
	dests := pkt.GetAddressList(fDests)
	entry := addr.EntryID(pkt.GetInt(fEntry, 0))
	sender := pkt.GetAddress(fSender)
	payload := pkt.GetMessage(fPayload)
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range dests {
		if a.Site != d.site {
			continue
		}
		lp, ok := d.procs[a.Base()]
		if !ok || !lp.alive {
			continue
		}
		m := d.buildDelivery(payload, sender, addr.Nil, 0, CBCAST)
		d.counters.Delivered++
		e := entry
		d.enqueue(lp, func() { lp.deliver(e, m) })
	}
}

// sendGroupMulticast runs the sender side of CBCAST or ABCAST for a group
// destination.
func (d *Daemon) sendGroupMulticast(sender addr.Address, lp *localProc, proto Protocol, gid addr.Address, id core.MsgID, entry addr.EntryID, payload *msg.Message) error {
	for {
		d.mu.Lock()
		gs, hosted := d.groups[gid]
		if hosted && gs.wedged {
			// A GBCAST flush is in progress: sends wait so the message is
			// unambiguously ordered after the GBCAST point.
			d.mu.Unlock()
			time.Sleep(time.Millisecond)
			continue
		}
		if !hosted {
			d.mu.Unlock()
			return d.relayExternalMulticast(sender, lp, proto, gid, id, entry, payload)
		}
		if gs.nonPrimary {
			// A minority partition is read-only: no multicast may originate
			// here until the merge protocol rejoins the primary.
			d.mu.Unlock()
			return ErrNonPrimary
		}
		ms, isMember := gs.members[sender.Base()]
		if !isMember {
			d.mu.Unlock()
			return d.relayExternalMulticast(sender, lp, proto, gid, id, entry, payload)
		}
		switch proto {
		case CBCAST:
			d.sendMemberCbcastLocked(gs, ms, sender, gid, id, entry, payload)
			d.mu.Unlock()
			return nil
		case ABCAST:
			pkt := d.buildDataPacket(ABCAST, gid, gs.view.ID, id, sender, gs.view.RankOf(sender), entry, payload)
			st := d.initiateAbcastLocked(gs, id, pkt, lp, 0)
			d.mu.Unlock()
			d.transmitAbcast(st, pkt)
			return nil
		default:
			d.mu.Unlock()
			return ErrBadProtocol
		}
	}
}

// buildDataPacket assembles the ptData wire packet body for a group
// multicast. The packet type travels in the fixed-offset envelope, not the
// body, so the body built here is destination-independent: encodePacket
// marshals it exactly once per multicast regardless of fan-out width.
func (d *Daemon) buildDataPacket(proto Protocol, gid addr.Address, viewID core.ViewID, id core.MsgID, sender addr.Address, rank int, entry addr.EntryID, payload *msg.Message) *msg.Message {
	pkt := msg.New()
	pkt.PutInt(fProto, int64(proto))
	pkt.PutAddress(fGroup, gid)
	pkt.PutInt(fViewID, int64(viewID))
	putMsgID(pkt, id)
	pkt.PutAddress(fSender, sender.Base())
	pkt.PutInt(fRank, int64(rank))
	pkt.PutInt(fEntry, int64(entry))
	pkt.PutMessage(fPayload, payload.Clone())
	return pkt
}

// sendMemberCbcastLocked performs a CBCAST send by a group member: the
// message is stamped with the member's vector timestamp, delivered locally
// at once (the sender never waits), and shipped to every other member site.
// Caller holds d.mu; the packet transmission happens asynchronously.
func (d *Daemon) sendMemberCbcastLocked(gs *groupState, ms *memberState, sender, gid addr.Address, id core.MsgID, entry addr.EntryID, payload *msg.Message) {
	vt := ms.causal.PrepareSend()
	rank := gs.view.RankOf(sender)
	pkt := d.buildDataPacket(CBCAST, gid, gs.view.ID, id, sender, rank, entry, payload)
	putVT(pkt, vt)
	d.counters.CBCASTs++
	d.recordRecentLocked(gs, id, pkt, 0)

	// Deliver to the sender itself immediately.
	d.deliverDataLocked(ms, pkt)
	// Other members at this site order it through their own causal queues.
	for a, other := range gs.members {
		if a == sender.Base() {
			continue
		}
		in := core.CausalIncoming{ID: id, SenderRank: rank, VT: vt, Payload: pkt}
		for _, out := range other.causal.Receive(in) {
			if opkt, ok := out.Payload.(*msg.Message); ok {
				d.deliverDataLocked(other, opkt)
			}
		}
	}
	// Ship one copy to every other member site, asynchronously. The packet
	// is marshalled exactly once; all destinations share the encoding.
	sites := gs.view.SitesOf()
	go func() {
		raw, err := encodePacket(ptData, pkt)
		if err != nil {
			return
		}
		d.fanoutRaw(sites, raw)
	}()
}

// relayExternalMulticast handles a group multicast whose sender is not a
// member of the group (or whose site hosts no members): the message is
// forwarded to the group's coordinator site, which fans it out using its
// authoritative view and acknowledges the relay. A refusal — the coordinator
// copy is wedged in a non-primary partition, or the addressed site no longer
// hosts the group — travels back as the sentinel error instead of being
// silently dropped; a stale cached view is refreshed and the relay retried
// once. FIFO order per sender is preserved by a per-sender sequence number
// assigned here.
func (d *Daemon) relayExternalMulticast(sender addr.Address, lp *localProc, proto Protocol, gid addr.Address, id core.MsgID, entry addr.EntryID, payload *msg.Message) error {
	// View resolution happens before any FIFO sequence is consumed: it is
	// the step most likely to fail (remote lookup of an unknown or
	// unreachable group), and a sequence number consumed by a failed relay
	// would leave a permanent hole that stalls every later relayed CBCAST
	// from this sender in the receivers' causal queues.
	view, ok := d.CurrentView(gid)
	if !ok {
		v, err := d.refreshView(gid)
		if err != nil {
			return err
		}
		view = v
	}
	if proto == CBCAST {
		// Serialize this sender's relays across the acknowledged exchange:
		// a refused relay's sequence number can only be rolled back while no
		// later number has been handed out.
		lp.relayMu.Lock()
		defer lp.relayMu.Unlock()
	}
	for attempt := 0; ; attempt++ {
		d.mu.Lock()
		coord := d.actingCoordinator(view)
		d.mu.Unlock()
		if coord.IsNil() {
			return ErrGroupVanished
		}

		pkt := d.buildDataPacket(proto, gid, view.ID, id, sender, -1, entry, payload)
		pkt.PutInt(fRelay, 1)

		var err error
		if proto != CBCAST {
			// ABCAST ordering is established by the priority agreement, so it
			// never consumes a FIFO number (a gap would stall the receivers'
			// expected sequence). ABCAST relays are counted by the coordinator
			// that initiates the two-phase protocol.
			err = d.relayCall(coord.Site, pkt)
		} else {
			d.mu.Lock()
			lp.extSeq[gid]++
			extSeq := lp.extSeq[gid]
			d.counters.CBCASTs++
			d.mu.Unlock()
			pkt.PutInt(fExtSeq, int64(extSeq))
			err = d.relayCBCASTCall(coord.Site, pkt, lp, gid, extSeq)
			if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, errSiteFailed) {
				// An explicit refusal (or a send failure): no receiver
				// consumed the sequence, so roll the counter back. On a
				// timeout or a detector abort the relay is still queued in
				// the reliable transport and may yet be delivered, so its
				// number must stand — the call remains tracked in
				// d.lostRelays and a late refusal is reconciled there
				// (rollback, or a null filler once later numbers exist; see
				// relayrepair.go).
				d.mu.Lock()
				lp.extSeq[gid]--
				d.counters.CBCASTs--
				d.mu.Unlock()
			}
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrUnknownGroup) && attempt == 0 {
			// The cached view is stale: the addressed site no longer hosts
			// the group. Refresh from the sites that do and retry once.
			if v, rerr := d.refreshView(gid); rerr == nil {
				view = v
				continue
			}
		}
		return err
	}
}

// relayCall ships a relayed multicast to the coordinator site and waits for
// its acknowledgement. A remote relay parked by a flush wedge counts as
// accepted — it is re-dispatched when the flush completes and acknowledged
// then. A local relay instead waits the wedge out (mirroring the member
// send path): if the caller were told "accepted" while the packet sat in
// heldPkts and the flush then wedged the copy non-primary, the refusal
// would have nobody to report to and the consumed FIFO sequence would
// stall every later relay from this sender.
func (d *Daemon) relayCall(site addr.SiteID, pkt *msg.Message) error {
	if site == d.site {
		for {
			err := d.relayMulticast(d.site, pkt, false)
			if !errors.Is(err, errRelayHeld) {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}
	_, err := d.call(site, ptData, pkt)
	return err
}

// relayMulticast runs at the coordinator site: it fans an external sender's
// multicast out to the group using the current view. A refusal is returned
// to the caller (and, for a relay that arrived over the wire, acknowledged
// back to the sending daemon by handleData) instead of silently dropping the
// message: ErrUnknownGroup when this site does not host the group — the
// sender's cached view was stale — and ErrNonPrimary when this copy is
// stranded read-only in a minority partition and must not fan anything out
// under its stale (possibly split-brain) view. While the group is wedged by
// a flush the relay returns errRelayHeld; with park set the packet is also
// parked in heldPkts for re-dispatch after the flush (the remote-relay
// path, whose acknowledgement is deferred with it), without park the caller
// retries (the local path, which must see the post-flush outcome itself).
func (d *Daemon) relayMulticast(from addr.SiteID, pkt *msg.Message, park bool) error {
	gid := pkt.GetAddress(fGroup)
	proto := Protocol(pkt.GetInt(fProto, 0))

	d.mu.Lock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		d.mu.Unlock()
		return ErrUnknownGroup
	}
	if gs.wedged {
		if park {
			gs.heldPkts = append(gs.heldPkts, heldPacket{from, ptData, pkt})
		}
		d.mu.Unlock()
		return errRelayHeld
	}
	if gs.nonPrimary {
		d.mu.Unlock()
		return ErrNonPrimary
	}
	fanout := pkt.Clone()
	fanout.Delete(fRelay)
	fanout.Delete(fCall)
	id := getMsgID(pkt)

	switch proto {
	case CBCAST:
		d.processCbcastLocked(gs, fanout)
		sites := gs.view.SitesOf()
		d.mu.Unlock()
		if raw, err := encodePacket(ptData, fanout); err == nil {
			d.fanoutRaw(sites, raw)
		}
	case ABCAST:
		st := d.initiateAbcastLocked(gs, id, fanout, nil, 0)
		d.mu.Unlock()
		d.transmitAbcast(st, fanout)
	default:
		d.mu.Unlock()
		return ErrBadProtocol
	}
	return nil
}

// ---------------------------------------------------------------------------
// ABCAST initiator side

// initiateAbcastLocked sets up the initiator-side state for one ABCAST and
// performs the local phase-1 proposals. Caller holds d.mu and must call
// transmitAbcast afterwards. attempt is 0 for a fresh ABCAST and counts up
// when a GBCAST flush fences the message and restarts it.
func (d *Daemon) initiateAbcastLocked(gs *groupState, id core.MsgID, pkt *msg.Message, senderLP *localProc, attempt int64) *abSendState {
	maxPrio := uint64(0)
	for _, ms := range gs.members {
		if p := ms.total.Propose(id, pkt); p > maxPrio {
			maxPrio = p
		}
	}
	st := &abSendState{
		id:      id,
		group:   gs.view.Group,
		waiting: make(map[addr.SiteID]bool),
		maxPrio: maxPrio,
		packet:  pkt,
		attempt: attempt,
	}
	st.targets = append(st.targets, d.site)
	for _, s := range gs.view.SitesOf() {
		if s == d.site || d.suspected[s] {
			continue
		}
		st.waiting[s] = true
		st.targets = append(st.targets, s)
	}
	d.pendingAb[id] = st
	if senderLP != nil {
		senderLP.outstanding++
		st.sender = senderLP.addr
	}
	if attempt == 0 {
		// A fence restart re-runs the protocol for a message already counted
		// when it was first initiated.
		d.counters.ABCASTs++
	}
	return st
}

// transmitAbcast ships phase 1 to the remote member sites and completes the
// protocol immediately if there is nobody to wait for. A watchdog completes
// the protocol even if some site never answers (it will have been declared
// failed by then, or the timeout acts as a backstop).
func (d *Daemon) transmitAbcast(st *abSendState, pkt *msg.Message) {
	d.mu.Lock()
	remote := make([]addr.SiteID, 0, len(st.waiting))
	for s := range st.waiting {
		remote = append(remote, s)
	}
	ready := len(st.waiting) == 0 && !st.done
	if ready {
		st.done = true
	}
	d.mu.Unlock()

	if len(remote) > 0 {
		// Phase 1 is marshalled once and shared by every remote member site.
		if raw, err := encodePacket(ptData, pkt); err == nil {
			for _, s := range remote {
				_ = d.sendRaw(s, raw)
			}
		}
	}
	if ready {
		d.completeAbcast(st)
		return
	}
	time.AfterFunc(d.cfg.CallTimeout, func() {
		d.mu.Lock()
		if _, still := d.pendingAb[st.id]; !still || st.done {
			d.mu.Unlock()
			return
		}
		st.done = true
		d.mu.Unlock()
		d.completeAbcast(st)
	})
}

// handleAbPropose processes a phase-1 response at the initiator. Proposals
// carry the attempt number of the phase-1 packet they answer; a response to
// a previous attempt (sent before a GBCAST flush fenced and restarted the
// ABCAST) is ignored, so the final priority is always the maximum over one
// coherent proposal round.
func (d *Daemon) handleAbPropose(from addr.SiteID, p *msg.Message) {
	id := getMsgID(p)
	prio := uint64(p.GetInt(fPriority, 0))
	d.mu.Lock()
	st, ok := d.pendingAb[id]
	if !ok || p.GetInt(fAttempt, 0) != st.attempt {
		d.mu.Unlock()
		return
	}
	if prio > st.maxPrio {
		st.maxPrio = prio
	}
	delete(st.waiting, from)
	finish := len(st.waiting) == 0 && !st.done
	if finish {
		st.done = true
	}
	d.mu.Unlock()
	if finish {
		d.completeAbcast(st)
	}
}

// finishAbcast is invoked when a site failure removes the last outstanding
// proposal for an ABCAST.
func (d *Daemon) finishAbcast(st *abSendState) { d.completeAbcast(st) }

// releaseAbSenderLocked credits the sending process's outstanding-ABCAST
// count when a protocol round ends (completed, retired by a flush, or
// dropped with its group): the Flush API blocks on this count, so every
// path that ends a round must release it exactly once. Caller holds d.mu.
func (d *Daemon) releaseAbSenderLocked(st *abSendState) {
	if st.sender.IsNil() {
		return
	}
	if lp, ok := d.procs[st.sender.Base()]; ok && lp.outstanding > 0 {
		lp.outstanding--
	}
}

// completeAbcast sends phase 2 (the final priority) to every destination
// site and applies it locally. While the local group copy is wedged by a
// GBCAST flush the completion is deferred: the flush owns the fate of every
// in-flight ABCAST (it either drives the commit itself or fences the message
// behind the new view), and a commit fanned out mid-flush would be held at
// every wedged site and then discarded, losing the message. The deferred
// retry finds the state retired (flush committed it), replaced (flush fenced
// and restarted it), or still its own, in which case it proceeds normally.
func (d *Daemon) completeAbcast(st *abSendState) {
	d.mu.Lock()
	if d.pendingAb[st.id] != st {
		// Retired by a flush's drive branch, or restarted by its fence
		// branch; either way this protocol round is over.
		d.mu.Unlock()
		return
	}
	if gs, ok := d.groups[st.group]; ok && gs.wedged && !d.closed {
		d.mu.Unlock()
		time.AfterFunc(2*time.Millisecond, func() { d.completeAbcast(st) })
		return
	}
	delete(d.pendingAb, st.id)
	final := st.maxPrio
	d.releaseAbSenderLocked(st)
	targets := append([]addr.SiteID(nil), st.targets...)
	gid := st.group
	d.mu.Unlock()

	commit := msg.New()
	commit.PutAddress(fGroup, gid)
	putMsgID(commit, st.id)
	commit.PutInt(fPriority, int64(final))
	// Phase 2 is marshalled once for all destination sites.
	if raw, err := encodePacket(ptAbCommit, commit); err == nil {
		d.fanoutRaw(targets, raw)
	}
	d.handleAbCommit(d.site, commit)
}

// handleAbCommit applies an ABCAST final priority at a destination site.
func (d *Daemon) handleAbCommit(from addr.SiteID, p *msg.Message) {
	gid := p.GetAddress(fGroup)
	id := getMsgID(p)
	final := uint64(p.GetInt(fPriority, 0))

	d.mu.Lock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		d.mu.Unlock()
		return
	}
	if gs.wedged {
		gs.heldPkts = append(gs.heldPkts, heldPacket{from, ptAbCommit, p})
		d.mu.Unlock()
		return
	}
	d.recordAbDoneLocked(id, final)
	for _, ms := range gs.members {
		d.deliverTotalLocked(gs, ms, ms.total.Commit(id, final))
	}
	d.mu.Unlock()
}

// deliverTotalLocked hands messages drained from a member's total-order
// queue to the member. A message a GBCAST flush already re-disseminated to
// the member is suppressed (the drain only advances the queue state), and a
// message sent before the member joined is skipped — its state-transfer cut
// covers it. Caller holds d.mu.
func (d *Daemon) deliverTotalLocked(gs *groupState, ms *memberState, dels []core.TotalDelivery) {
	for _, del := range dels {
		if ms.redelivered[del.ID] {
			delete(ms.redelivered, del.ID)
			continue
		}
		pkt, ok := del.Payload.(*msg.Message)
		if !ok || pkt == nil {
			continue
		}
		if pv := core.ViewID(pkt.GetInt(fViewID, 0)); pv != 0 && pv < ms.joinedView {
			continue
		}
		d.recordRecentLocked(gs, del.ID, pkt, del.Priority)
		d.deliverDataLocked(ms, pkt)
	}
}

// ---------------------------------------------------------------------------
// Straggler re-solicitation

// recordAbDoneLocked remembers the final priority of an applied ABCAST
// commit (bounded memory), so this site can answer a re-solicitation for it
// even after the initiator is gone. Caller holds d.mu.
func (d *Daemon) recordAbDoneLocked(id core.MsgID, final uint64) {
	if _, ok := d.abDone[id]; ok {
		return
	}
	d.abDone[id] = final
	d.abDoneOrder = append(d.abDoneOrder, id)
	if len(d.abDoneOrder) > abDoneLimit {
		old := d.abDoneOrder[0]
		d.abDoneOrder = d.abDoneOrder[1:]
		delete(d.abDone, old)
	}
}

// handleAbResolicit answers a member site stuck behind an uncommitted
// straggler at the head of its total-order queue: if this site has applied
// the commit (or completed the protocol as its initiator), it re-sends the
// commit record. While the protocol is genuinely still in progress the
// request is ignored — the commit will arrive on its own — and an unknown id
// is left for the next GBCAST flush to resolve.
func (d *Daemon) handleAbResolicit(from addr.SiteID, p *msg.Message) {
	gid := p.GetAddress(fGroup)
	id := getMsgID(p)
	d.mu.Lock()
	final, done := d.abDone[id]
	d.mu.Unlock()
	if !done {
		return
	}
	commit := msg.New()
	commit.PutAddress(fGroup, gid.Base())
	putMsgID(commit, id)
	commit.PutInt(fPriority, int64(final))
	_ = d.sendPacket(from, ptAbCommit, commit)
}

// runResolicitScan periodically checks every local member's total-order
// queue for a straggler: an uncommitted message that has blocked the head of
// the queue (and therefore every later committed delivery) for longer than
// ResolicitAfter. For each straggler it re-solicits the commit record —
// from the initiator's site first, rotating to the other member sites if the
// initiator does not answer — so a slow or lost proposal round no longer
// stalls the member until the next flush.
func (d *Daemon) runResolicitScan() {
	defer d.wg.Done()
	interval := d.cfg.ResolicitAfter / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.stopScan:
			return
		case <-t.C:
			d.resolicitStragglers()
			d.kickRelayRepair()
			d.kickMergeRetry()
		}
	}
}

// resolicitStragglers performs one scan round of runResolicitScan.
func (d *Daemon) resolicitStragglers() {
	type ask struct {
		to  addr.SiteID
		gid addr.Address
		id  core.MsgID
	}
	var asks []ask
	var selfFix []*msg.Message
	now := time.Now()
	d.mu.Lock()
	for gid, gs := range d.groups {
		if gs.wedged || gs.nonPrimary {
			continue
		}
		for _, ms := range gs.members {
			id, payload, blocked := ms.total.HeadBlocked()
			if !blocked {
				ms.blockedID = core.MsgID{}
				continue
			}
			if id != ms.blockedID {
				ms.blockedID = id
				ms.blockedSince = now
				ms.resolicits = 0
				continue
			}
			if now.Sub(ms.blockedSince) < d.cfg.ResolicitAfter {
				continue
			}
			ms.blockedSince = now // rate-limit: one solicitation per period
			if final, ok := d.abDone[id]; ok {
				// Another local member (or a past commit within the bounded
				// record) already knows the outcome: apply it directly.
				commit := msg.New()
				commit.PutAddress(fGroup, gid)
				putMsgID(commit, id)
				commit.PutInt(fPriority, int64(final))
				selfFix = append(selfFix, commit)
				continue
			}
			to := d.resolicitTargetLocked(gs, payload, ms.resolicits)
			ms.resolicits++
			if to != 0 {
				asks = append(asks, ask{to, gid, id})
			}
		}
	}
	d.mu.Unlock()
	for _, c := range selfFix {
		d.handleAbCommit(d.site, c)
	}
	for _, a := range asks {
		d.bus.Publish(events.Event{Kind: events.AbcastResolicit, Group: a.gid, Peer: a.to, Msg: a.id})
		req := msg.New()
		req.PutAddress(fGroup, a.gid)
		putMsgID(req, a.id)
		_ = d.sendPacket(a.to, ptAbResolicit, req)
	}
}

// resolicitTargetLocked picks the site to ask about a straggler: the sender's
// site first (for a member ABCAST that is the initiator), then the group's
// other member sites in view order — any site that applied the commit can
// answer from its record, which is what lets a receiver route around a
// paused or dead initiator link. Suspected sites are skipped. Caller holds
// d.mu.
func (d *Daemon) resolicitTargetLocked(gs *groupState, payload any, attempt int) addr.SiteID {
	seen := map[addr.SiteID]bool{d.site: true}
	var cands []addr.SiteID
	if pkt, ok := payload.(*msg.Message); ok && pkt != nil {
		if s := pkt.GetAddress(fSender); !s.IsNil() && s.Site != d.site {
			seen[s.Site] = true
			cands = append(cands, s.Site)
		}
	}
	for _, s := range gs.view.SitesOf() {
		if !seen[s] {
			seen[s] = true
			cands = append(cands, s)
		}
	}
	var live []addr.SiteID
	for _, s := range cands {
		if !d.suspected[s] {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return 0
	}
	return live[attempt%len(live)]
}

// ---------------------------------------------------------------------------
// Receive path

// handleData processes an incoming ptData packet: a point-to-point message,
// a relayed external multicast, a CBCAST, or ABCAST phase 1.
func (d *Daemon) handleData(from addr.SiteID, pkt *msg.Message) {
	gid := pkt.GetAddress(fGroup)
	if gid.IsNil() {
		d.deliverPointToPoint(pkt)
		return
	}
	if pkt.GetInt(fRelay, 0) == 1 {
		err := d.relayMulticast(from, pkt, true)
		if callID := pkt.GetInt(fCall, 0); callID != 0 && !errors.Is(err, errRelayHeld) {
			// Acknowledge the relay so the sender's daemon learns its fate;
			// a held relay is acknowledged when the flush re-dispatches it.
			if err != nil {
				d.replyError(from, callID, err.Error())
			} else {
				ack := msg.New()
				ack.PutInt(fCall, callID)
				_ = d.sendPacket(from, ptRelayAck, ack)
			}
		}
		return
	}
	proto := Protocol(pkt.GetInt(fProto, 0))
	sender := pkt.GetAddress(fSender)

	d.mu.Lock()
	gs, ok := d.groups[gid.Base()]
	if !ok {
		d.mu.Unlock()
		return
	}
	if d.failedProcs[sender.Base()] {
		// A failure that has already been observed: messages from the
		// failed process must never be delivered afterwards (Section 2.2).
		d.mu.Unlock()
		return
	}
	if gs.wedged {
		gs.heldPkts = append(gs.heldPkts, heldPacket{from, ptData, pkt})
		d.mu.Unlock()
		return
	}
	switch proto {
	case CBCAST:
		d.processCbcastLocked(gs, pkt)
		d.mu.Unlock()
	case ABCAST:
		id := getMsgID(pkt)
		maxPrio := uint64(0)
		for _, ms := range gs.members {
			if p := ms.total.Propose(id, pkt); p > maxPrio {
				maxPrio = p
			}
		}
		d.mu.Unlock()
		resp := msg.New()
		resp.PutAddress(fGroup, gid)
		putMsgID(resp, id)
		resp.PutInt(fPriority, int64(maxPrio))
		if att := pkt.GetInt(fAttempt, 0); att != 0 {
			resp.PutInt(fAttempt, att)
		}
		_ = d.sendPacket(from, ptAbPropose, resp)
	default:
		d.mu.Unlock()
	}
}

// processCbcastLocked feeds a CBCAST into every local member's causal queue
// and delivers whatever becomes deliverable. Caller holds d.mu.
func (d *Daemon) processCbcastLocked(gs *groupState, pkt *msg.Message) {
	id := getMsgID(pkt)
	rank := int(pkt.GetInt(fRank, -1))
	for _, ms := range gs.members {
		var in core.CausalIncoming
		if rank >= 0 {
			in = core.CausalIncoming{ID: id, SenderRank: rank, VT: getVT(pkt), Payload: pkt}
		} else {
			in = core.CausalIncoming{ID: id, SenderRank: -1, Seq: uint64(pkt.GetInt(fExtSeq, 0)), Payload: pkt}
		}
		for _, out := range ms.causal.Receive(in) {
			if ms.redelivered[out.ID] {
				// Already delivered to this member by a GBCAST flush
				// re-dissemination; the causal clock has been advanced by
				// Receive, so just suppress the duplicate callback.
				delete(ms.redelivered, out.ID)
				continue
			}
			if opkt, ok := out.Payload.(*msg.Message); ok {
				d.recordRecentLocked(gs, out.ID, opkt, 0)
				d.deliverDataLocked(ms, opkt)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Delivery helpers

// buildDelivery constructs the application-visible message: the payload plus
// the toolkit system fields.
func (d *Daemon) buildDelivery(payload *msg.Message, sender, group addr.Address, viewID core.ViewID, proto Protocol) *msg.Message {
	m := payload.Clone()
	m.PutAddress(msg.FSender, sender.Base())
	if !group.IsNil() {
		m.PutAddress(msg.FGroup, group)
		m.PutInt(msg.FViewID, int64(viewID))
	}
	m.PutInt(msg.FProtocol, int64(proto))
	return m
}

// deliverDataLocked delivers a group data packet to one local member. Caller
// holds d.mu. A null hole-filler (fNull) consumes its place in the ordering
// queues — that is its entire job — but is never handed to the application.
func (d *Daemon) deliverDataLocked(ms *memberState, pkt *msg.Message) {
	if pkt.GetInt(fNull, 0) == 1 {
		return
	}
	entry := addr.EntryID(pkt.GetInt(fEntry, 0))
	payload := pkt.GetMessage(fPayload)
	if payload == nil {
		payload = msg.New()
	}
	sender := pkt.GetAddress(fSender)
	gid := pkt.GetAddress(fGroup)
	proto := Protocol(pkt.GetInt(fProto, 0))
	viewID := core.ViewID(pkt.GetInt(fViewID, 0))
	m := d.buildDelivery(payload, sender, gid, viewID, proto)
	d.counters.Delivered++
	lp := ms.proc
	d.enqueueMember(ms, func() { lp.deliver(entry, m) })
}

// deliverPayloadLocked delivers an application payload (used by user-level
// GBCASTs) to one local member. Caller holds d.mu.
func (d *Daemon) deliverPayloadLocked(gs *groupState, ms *memberState, sender addr.Address, proto Protocol, entry addr.EntryID, payload *msg.Message) {
	m := d.buildDelivery(payload, sender, gs.view.Group, gs.view.ID, proto)
	d.counters.Delivered++
	lp := ms.proc
	d.enqueueMember(ms, func() { lp.deliver(entry, m) })
}

// enqueueMember schedules a delivery for a member, holding it if the member
// is still waiting for its state transfer. Caller holds d.mu.
func (d *Daemon) enqueueMember(ms *memberState, fn func()) {
	if ms.awaitingState {
		ms.held = append(ms.held, fn)
		return
	}
	d.enqueue(ms.proc, fn)
}

// recordRecentLocked remembers a delivered data packet so a GBCAST flush can
// re-disseminate it to members that missed it. For an ABCAST, prio is the
// final priority it was delivered at (0 for CBCAST and point-to-point),
// kept for exactly as long as the recent entry itself. Caller holds d.mu.
func (d *Daemon) recordRecentLocked(gs *groupState, id core.MsgID, pkt *msg.Message, prio uint64) {
	if _, ok := gs.recent[id]; ok {
		return
	}
	gs.recent[id] = pkt
	if prio != 0 {
		if gs.recentPrio == nil {
			gs.recentPrio = make(map[core.MsgID]uint64)
		}
		gs.recentPrio[id] = prio
	}
	gs.order = append(gs.order, id)
	if len(gs.order) > recentLimit {
		old := gs.order[0]
		gs.order = gs.order[1:]
		delete(gs.recent, old)
		delete(gs.recentPrio, old)
	}
}

// Flush blocks until the sender's outstanding asynchronous multicasts have
// been transmitted and committed (Section 3.2, footnote 3: flush is invoked
// before interacting with the external world or writing stable storage).
func (d *Daemon) Flush(sender addr.Address) error {
	deadline := time.Now().Add(d.cfg.CallTimeout)
	for {
		d.mu.Lock()
		lp, ok := d.procs[sender.Base()]
		outstanding := 0
		if ok {
			outstanding = lp.outstanding
		}
		closed := d.closed
		d.mu.Unlock()
		if !ok {
			return ErrUnknownProc
		}
		if closed {
			return ErrClosed
		}
		if outstanding == 0 && d.tr.Unacked() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(time.Millisecond)
	}
}
