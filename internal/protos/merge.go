package protos

// Partition merge. The paper's fault model is crash-only: a network
// partition is outside it, and the original recovery is to restart the
// minority sites. The primary-partition extension implemented here keeps the
// minority alive instead: executeGb's majority rule stops it from installing
// split-brain views (the group copy wedges into read-only "non-primary"
// mode), and once the partition heals this file's merge protocol discovers
// the primary partition's copy of the group, discards the minority's stale
// speculative state, and rejoins each local member through the ordinary
// join + state-transfer machinery — no process restart, no lost addresses.

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/msg"
)

// mergeRetries bounds how often a merge rejoin is retried before the merge
// attempt is abandoned (a later recovery event or MergeGroup call tries
// again from scratch while the group copy is still non-primary; once the
// local copy has been discarded the retries are the only safety net, so they
// are generous).
const mergeRetries = 5

// GroupPrimary reports whether this site's copy of the group is in the
// primary partition. Sites that host no members of the group — and therefore
// hold no copy that could be stale — report true.
func (d *Daemon) GroupPrimary(gid addr.Address) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if gs, ok := d.groups[gid.Base()]; ok {
		return !gs.nonPrimary
	}
	return true
}

// WatchPrimary invokes the callback whenever a locally hosted group copy
// transitions between primary and non-primary status: (gid, false) when the
// copy wedges into a minority partition, (gid, true) when it resumes or
// completes a merge back into the primary. It is a compatibility wrapper
// over the event stream: transitions are delivered asynchronously from a
// forwarding goroutine, and the returned cancel stops the subscription.
//
// Deprecated: subscribe to the event stream (Events) with kinds PrimaryLost
// and PrimaryResumed instead.
func (d *Daemon) WatchPrimary(cb func(gid addr.Address, primary bool)) (cancel func()) {
	ch, cancel := d.bus.Subscribe(events.Filter{
		Kinds: []events.Kind{events.PrimaryLost, events.PrimaryResumed},
	}, 0)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for e := range ch {
			cb(e.Group, e.Kind == events.PrimaryResumed)
		}
	}()
	return cancel
}

// notifyPrimary publishes a primary-status transition on the event stream.
func (d *Daemon) notifyPrimary(gid addr.Address, primary bool) {
	kind := events.PrimaryLost
	if primary {
		kind = events.PrimaryResumed
	}
	d.bus.Publish(events.Event{Kind: kind, Group: gid.Base()})
}

// MergeGroup merges this site's non-primary copy of a group back into the
// primary partition. Under MergeAuto the daemon calls it by itself when the
// failure detector observes the partition healing; under MergeManual the
// application decides when. Merging a group that is not in non-primary mode
// is a no-op.
func (d *Daemon) MergeGroup(gid addr.Address) error {
	return d.mergeGroup(gid.Base())
}

// mergeNonPrimaryGroups starts a merge attempt for every group copy stranded
// in non-primary mode. Called on failure-detector recovery events.
func (d *Daemon) mergeNonPrimaryGroups() {
	d.mu.Lock()
	var gids []addr.Address
	for gid, gs := range d.groups {
		if gs.nonPrimary && !d.merging[gid] {
			gids = append(gids, gid)
		}
	}
	d.mu.Unlock()
	for _, gid := range gids {
		gid := gid
		go func() { _ = d.mergeGroup(gid) }()
	}
}

// mergeGroup runs the merge protocol for one group: find the primary
// partition's current view, and either resume in place (the primary never
// moved past the view this copy already holds, so nothing diverged) or
// discard the local copy and rejoin every live local member with a state
// transfer.
func (d *Daemon) mergeGroup(gid addr.Address) error {
	d.mu.Lock()
	gs, ok := d.groups[gid]
	if !ok || !gs.nonPrimary || d.merging[gid] || d.closed {
		d.mu.Unlock()
		return nil
	}
	d.merging[gid] = true
	staleView := gs.view.Clone()
	d.bus.Publish(events.Event{Kind: events.MergeStart, Group: gid, View: staleView.ID})
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.merging, gid)
		d.mu.Unlock()
	}()

	sv, err := d.surveyGroup(gid, staleView.Name)
	if err != nil {
		return err
	}
	if sv.primary == nil {
		// No partition anywhere holds a primary copy (e.g. a three-way
		// split wedged every side). If the reachable wedged copies agree,
		// resume the last agreed view in place.
		return d.resumeWedged(gid, staleView, sv.wedged)
	}
	primView := *sv.primary

	d.mu.Lock()
	gs, ok = d.groups[gid]
	if !ok || !gs.nonPrimary {
		d.mu.Unlock()
		return nil
	}
	if primView.ID == staleView.ID {
		// The partition healed before the primary handled any failure: both
		// sides still hold the same agreed view, nothing was committed past
		// it here (writes were refused), and anything committed there is
		// retransmitted by the reliable transport. Resume in place.
		gs.nonPrimary = false
		gs.wedged = false
		held := gs.heldPkts
		gs.heldPkts = nil
		d.mu.Unlock()
		for _, h := range held {
			d.dispatchHeld(h)
		}
		d.notifyPrimary(gid, true)
		return nil
	}

	// Full merge: snapshot the live local members and their state
	// receivers, discard the stale group copy wholesale, and rejoin each
	// member from scratch. The join commit rebuilds the member state with
	// fresh ordering queues, and the state transfer replaces the
	// application's speculative state with the primary's.
	type rejoin struct {
		proc      addr.Address
		recv      func(block []byte, last bool)
		inPrimary bool
	}
	var rejoins []rejoin
	for a, ms := range gs.members {
		if !ms.proc.alive {
			continue
		}
		rejoins = append(rejoins, rejoin{a, ms.stateRecv, primView.Contains(a)})
	}
	delete(d.groups, gid)
	d.remoteViews[gid] = primView.Clone()
	if primView.Name != "" {
		d.nameCache[primView.Name] = gid
	}
	d.mu.Unlock()

	var firstErr error
	for _, r := range rejoins {
		if err := d.rejoinMember(gid, r.proc, r.recv, r.inPrimary); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			// The local copy is gone and the rejoin exhausted its retries:
			// without parking, this live process would stay unhosted until
			// an application-level intervention. Recovery events and the
			// periodic scan re-attempt parked rejoins.
			d.parkRejoin(gid, r.proc, r.recv)
		}
	}
	if firstErr == nil {
		d.bus.Publish(events.Event{Kind: events.MergeLand, Group: gid, View: primView.ID})
		d.notifyPrimary(gid, true)
	}
	return firstErr
}

// rejoinMember runs the rejoin protocol for one member of a discarded group
// copy: when the primary still lists the member (the partition healed before
// the removal committed) the stale entry is purged first, so the rejoin runs
// the full join protocol — rebuilding the member's ordering state everywhere
// — instead of no-opping against the existing membership.
func (d *Daemon) rejoinMember(gid, proc addr.Address, recv func(block []byte, last bool), listed bool) error {
	if listed {
		var lerr error
		for attempt := 0; attempt < mergeRetries; attempt++ {
			if lerr = d.Leave(proc, gid); lerr == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if lerr != nil {
			return fmt.Errorf("protos: merge purge of %v: %w", proc, lerr)
		}
	}
	var err error
	for attempt := 0; attempt < mergeRetries; attempt++ {
		_, err = d.Join(proc, gid, JoinOptions{
			WantState:     recv != nil,
			StateReceiver: recv,
		})
		if err == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("protos: merge rejoin of %v: %w", proc, err)
}

// parkKey identifies one parked rejoin: a member left unhosted after its
// group copy was discarded by a merge whose rejoin phase failed.
type parkKey struct {
	gid  addr.Address
	proc addr.Address
}

// parkedRejoin is the retained context of a failed rejoin.
type parkedRejoin struct {
	gid  addr.Address
	proc addr.Address
	recv func(block []byte, last bool)
}

// parkRejoin records a member whose merge rejoin exhausted its retries so a
// later recovery event or scan tick can try again.
func (d *Daemon) parkRejoin(gid, proc addr.Address, recv func(block []byte, last bool)) {
	d.mu.Lock()
	if !d.closed {
		k := parkKey{gid: gid.Base(), proc: proc.Base()}
		d.parkedMerges[k] = parkedRejoin{gid: k.gid, proc: k.proc, recv: recv}
		d.bus.Publish(events.Event{Kind: events.MergePark, Group: k.gid, Detail: k.proc.String()})
	}
	d.mu.Unlock()
}

// PendingMerges returns the groups with members parked after a failed merge
// rejoin, awaiting the automatic retry.
func (d *Daemon) PendingMerges() []addr.Address {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[addr.Address]bool)
	var gids []addr.Address
	for k := range d.parkedMerges {
		if !seen[k.gid] {
			seen[k.gid] = true
			gids = append(gids, k.gid)
		}
	}
	return gids
}

// kickMergeRetry re-attempts parked rejoins; called from the resolicit scan
// tick so a primary that becomes reachable (or resumes from a total wedge)
// without a fresh recovery event is still picked up.
func (d *Daemon) kickMergeRetry() {
	d.mu.Lock()
	pending := len(d.parkedMerges) > 0 && !d.retryingMerges && !d.closed
	d.mu.Unlock()
	if pending {
		go d.retryParkedMerges()
	}
}

// retryParkedMerges re-runs the rejoin protocol for every parked member. At
// most one retry pass runs at a time; members that rejoin (or turn out to be
// hosted again, or dead) are unparked, the rest stay for the next pass.
func (d *Daemon) retryParkedMerges() {
	d.mu.Lock()
	if d.retryingMerges || d.closed || len(d.parkedMerges) == 0 {
		d.mu.Unlock()
		return
	}
	d.retryingMerges = true
	parked := make([]parkedRejoin, 0, len(d.parkedMerges))
	for _, p := range d.parkedMerges {
		parked = append(parked, p)
	}
	d.mu.Unlock()

	for _, p := range parked {
		d.bus.Publish(events.Event{Kind: events.MergeRetry, Group: p.gid, Detail: p.proc.String()})
		done, notify := d.retryParkedRejoin(p)
		if !done {
			continue
		}
		d.mu.Lock()
		delete(d.parkedMerges, parkKey{gid: p.gid, proc: p.proc})
		last := true
		for k := range d.parkedMerges {
			if k.gid == p.gid {
				last = false
				break
			}
		}
		d.mu.Unlock()
		if notify && last {
			// The group's merge is finally whole: deliver the primary-status
			// transition the original merge withheld while rejoins failed.
			d.notifyPrimary(p.gid, true)
		}
	}

	d.mu.Lock()
	d.retryingMerges = false
	d.mu.Unlock()
}

// retryParkedRejoin re-attempts one parked rejoin. It reports whether the
// entry is resolved (rejoined, already hosted, or moot) and whether the
// resolution was an actual rejoin worth a primary-status notification.
func (d *Daemon) retryParkedRejoin(p parkedRejoin) (done, notify bool) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return true, false
	}
	if lp, ok := d.procs[p.proc]; !ok || !lp.alive {
		// The process died while parked; its membership died with it.
		d.mu.Unlock()
		return true, false
	}
	if gs, ok := d.groups[p.gid]; ok {
		if _, member := gs.members[p.proc]; member {
			// Hosted again — an earlier retry or an application-level join
			// got there first.
			d.mu.Unlock()
			return true, false
		}
	}
	d.mu.Unlock()

	// The membership listing must be re-evaluated against the primary's
	// current view: the removal that was pending at park time may have
	// committed (or not) since.
	view, err := d.refreshView(p.gid)
	if err != nil {
		return false, false
	}
	if err := d.rejoinMember(p.gid, p.proc, p.recv, view.Contains(p.proc)); err != nil {
		return false, false
	}
	return true, true
}

// groupSurvey is the outcome of polling every attached site for a group: a
// primary copy's view if any site holds one, and the views of the wedged
// (non-primary) copies that answered, by site.
type groupSurvey struct {
	primary *core.View
	wedged  map[addr.SiteID]core.View
}

// surveyGroup polls every attached site for its copy of a group. It returns
// as soon as a primary copy answers; otherwise it collects the wedged
// copies' views until every queried site has answered or the call times
// out. Answers from fellow minority sites report primary=0, so a minority
// cannot masquerade as the primary.
func (d *Daemon) surveyGroup(gid addr.Address, name string) (groupSurvey, error) {
	sv := groupSurvey{wedged: make(map[addr.SiteID]core.View)}
	callID, ch := d.newCall()
	defer d.dropCall(callID)

	req := msg.New()
	req.PutInt(fCall, callID)
	req.PutAddress(fGroup, gid)
	if name != "" {
		req.PutString(fName, name)
	}
	raw, err := encodePacket(ptLookup, req)
	if err != nil {
		return sv, err
	}
	asked := 0
	for _, s := range d.net.Sites() {
		if s == d.site {
			continue
		}
		if err := d.sendRaw(s, raw); err == nil {
			asked++
		}
	}
	if asked == 0 {
		return sv, fmt.Errorf("%w: no reachable sites", ErrNonPrimary)
	}
	deadline := time.After(d.cfg.CallTimeout)
	answers := 0
	for {
		select {
		case resp := <-ch:
			answers++
			if resp.GetInt(fFound, 0) == 1 {
				v := decodeView(resp.GetMessage(fView))
				if resp.GetInt(fPrimary, 0) == 1 {
					sv.primary = &v
					return sv, nil
				}
				if s := addr.SiteID(resp.GetInt(fSite, 0)); s != 0 {
					sv.wedged[s] = v
				}
			}
			if answers >= asked {
				return sv, nil
			}
		case <-deadline:
			// Partial answers: the caller decides whether what arrived is
			// enough (the resume path requires half the membership).
			return sv, nil
		}
	}
}

// resumeWedged handles total wedge: no partition anywhere retained half of
// the last agreed view (a multi-way split), so every copy is non-primary
// and there is no primary to merge into. Nothing can have committed past
// the last agreed view in that state, so if the reachable wedged copies all
// still hold that same view and together cover at least half of its
// members, the group is allowed to resume in place. The site hosting the
// oldest reachable member acts as the single initiator; it clears the
// reachable copies with a gbResume notice and then asks for a corroborated
// removal of the members that are still unreachable (the corroboration in
// the flush protects any that turn out to be alive).
func (d *Daemon) resumeWedged(gid addr.Address, staleView core.View, wedged map[addr.SiteID]core.View) error {
	for _, v := range wedged {
		if v.ID != staleView.ID {
			return fmt.Errorf("%w: wedged copies disagree (view %d vs %d); waiting for a primary",
				ErrNonPrimary, v.ID, staleView.ID)
		}
	}
	reachable := map[addr.SiteID]bool{d.site: true}
	for s := range wedged {
		reachable[s] = true
	}
	votes := 0
	for _, m := range staleView.Members {
		if reachable[m.Site] {
			votes++
		}
	}
	if votes*2 < staleView.Size() {
		return fmt.Errorf("%w: reachable wedged copies cover only %d of %d members",
			ErrNonPrimary, votes, staleView.Size())
	}
	for _, m := range staleView.Members {
		if reachable[m.Site] {
			if m.Site != d.site {
				// Another reachable site hosts an older member: its own
				// merge attempt initiates the resume, keeping the initiator
				// unique.
				return nil
			}
			break
		}
	}

	notice := msg.New()
	notice.PutAddress(fGroup, gid)
	notice.PutInt(fKind, gbResume)
	notice.PutMessage(fView, encodeView(staleView))
	if raw, err := encodePacket(ptGbCommit, notice); err == nil {
		for s := range wedged {
			_ = d.sendRaw(s, raw)
		}
	}
	d.applyGbCommit(d.site, notice)

	var unreached []addr.Address
	for _, m := range staleView.Members {
		if !reachable[m.Site] {
			unreached = append(unreached, m.Base())
		}
	}
	if len(unreached) > 0 {
		d.requestRemoval(gid, unreached, gbFail, false)
	}
	return nil
}

// rejoinRemovedMember restores the membership of a local, live process that
// a failure view wrongly removed (a stale suspicion that slipped past the
// corroboration — e.g. the member's site was unreachable at prepare time
// but its copy of the group never wedged). The member rejoins through the
// ordinary join machinery, pulling fresh state if it has a receiver.
func (d *Daemon) rejoinRemovedMember(gid addr.Address, proc addr.Address, recv func(block []byte, last bool)) {
	if err := d.rejoinMember(gid, proc, recv, false); err != nil {
		// Same exposure as a failed merge rejoin: the process is live but
		// unhosted. Park it for the recovery-event / scan-tick retry.
		d.parkRejoin(gid, proc, recv)
	}
}
