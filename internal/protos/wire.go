package protos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/vclock"
)

// Protocol selects which multicast primitive carries a message
// (Section 3.1).
type Protocol uint8

const (
	// CBCAST delivers messages in causal order; it is asynchronous (the
	// sender continues immediately).
	CBCAST Protocol = iota + 1
	// ABCAST delivers messages atomically and in the same total order at
	// every destination.
	ABCAST
	// GBCAST is ordered with respect to every other multicast and to
	// membership changes; the system itself uses it for view changes and
	// the configuration tool exposes it to applications.
	GBCAST
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case CBCAST:
		return "CBCAST"
	case ABCAST:
		return "ABCAST"
	case GBCAST:
		return "GBCAST"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// Daemon wire envelope. Every daemon-to-daemon packet begins with a small
// fixed-offset header followed by the marshalled msg.Message body:
//
//	byte 0   wireVersion
//	byte 1   packet type (one of the pt* constants below)
//	bytes 2+ marshalled msg.Message body (absent for heartbeats)
//
// Keeping the packet type at a fixed offset (rather than in a "&type" body
// field, as earlier revisions did) lets handleTransport dispatch without
// decoding the body, lets heartbeats skip message marshalling entirely, and
// lets a multicast fan-out share one encoded body across every destination
// site: the per-destination work is writing two header bytes, never
// re-sorting and re-marshalling the symbol table.
//
// The transport below this layer batches whole envelopes into frames and
// piggybacks its cumulative acks on them; see internal/transport for that
// framing table.
const (
	wireVersion   = 1
	envelopeBytes = 2
)

// Packet types exchanged between daemons, carried in byte 1 of the wire
// envelope. Daemon-internal body fields use the "&" prefix so they can never
// collide with the application's fields or with the "@" system fields the
// toolkit sets.
const (
	ptData        = byte(iota + 1) // CBCAST data / ABCAST phase 1 / point-to-point
	ptAbPropose                    // ABCAST phase 1 response: proposed priority
	ptAbCommit                     // ABCAST phase 2: final priority
	ptGbRequest                    // request to the group coordinator (join/leave/fail/user gbcast/config)
	ptGbPrepare                    // GBCAST phase 1: wedge and report pending state
	ptGbAck                        // GBCAST phase 1 response
	ptGbCommit                     // GBCAST phase 2: install view / deliver payload
	ptGbDone                       // coordinator's response to the original requester
	ptLookup                       // symbolic name lookup request
	ptLookupResp                   // lookup response
	ptHeartbeat                    // failure-detector heartbeat (empty body)
	ptStateBlock                   // state transfer block for a joining member
	ptError                        // negative response to a call
	ptStateAck                     // joiner's site announces its state transfer completed
	ptAbResolicit                  // receiver asks for a straggler ABCAST's commit record
	ptRelayAck                     // positive acknowledgement of a relayed multicast
)

// Field names used in daemon-to-daemon packet bodies.
const (
	fCall      = "&call"    // call id for request/response matching
	fGroup     = "&group"   // group address
	fViewID    = "&viewid"  // view id the packet refers to
	fMsgID     = "&msgid"   // multicast id: sender address + sequence
	fMsgSeq    = "&msgseq"  // sequence part of the multicast id
	fSender    = "&sender"  // originating process
	fRank      = "&rank"    // sender's rank in the view (-1 external)
	fVT        = "&vt"      // vector timestamp (CBCAST)
	fExtSeq    = "&extseq"  // per-sender sequence for external senders
	fProto     = "&proto"   // Protocol value
	fEntry     = "&entry"   // destination entry point
	fPayload   = "&payload" // nested application message
	fDests     = "&dests"   // explicit destination processes
	fPriority  = "&prio"    // ABCAST priority
	fKind      = "&kind"    // gb request kind
	fProcs     = "&procs"   // processes affected by a gb request
	fName      = "&name"    // symbolic group name
	fView      = "&view"    // encoded view
	fGbID      = "&gbid"    // gbcast sequence number at the coordinator
	fPending   = "&pending" // encoded pending-state report (gbAck)
	fRebcast   = "&rebcast" // encoded rebroadcast set (gbCommit)
	fStateData = "&sdata"   // state transfer block payload
	fStateLast = "&slast"   // last state block flag
	fWantState = "&wantst"  // join wants a state transfer
	fErr       = "&err"     // error text
	fReqID     = "&reqid"   // stable GBCAST request id, survives coordinator fail-over
	fForce     = "&force"   // run the full wedge/flush even for a no-op change
	fXferID    = "&xferid"  // state-transfer attempt id (the view id the provider shipped under)
	fDead      = "&dead"    // prepare ack: removal targets this site confirms dead
	fAttempt   = "&attempt" // ABCAST protocol attempt (bumped by a fence restart)
	fNull      = "&nullseq" // null relayed CBCAST: consumes its FIFO sequence, carries no app message
	fPrimary   = "&primary" // lookup response: the answering site's copy is primary
	fFound     = "&found"   // lookup response: the answering site hosts the group
	fSite      = "&site"    // lookup response: the answering site's id
	fSealReq   = "&sealreq" // gbSeal: the request id whose outcome is being settled
	fOutcome   = "&outcome" // gbSeal result: 1 committed, 2 aborted
)

// GB request kinds carried in ptGbRequest packets.
const (
	gbJoin       = int64(iota + 1) // add a member
	gbLeave                        // remove a member voluntarily
	gbFail                         // remove failed members
	gbUser                         // user-level GBCAST delivery to an entry
	gbConfigHint                   // reserved for the configuration tool (delivered like gbUser)
	gbNonPrimary                   // minority notice: wedge into read-only non-primary mode
	gbResume                       // total-wedge recovery: resume the last agreed view in place
	gbSeal                         // settle the outcome of an earlier request id (commit or abort it)
)

// encodeView stores a view in a nested message.
func encodeView(v core.View) *msg.Message {
	m := msg.New()
	m.PutAddress("g", v.Group)
	m.PutString("n", v.Name)
	m.PutInt("id", int64(v.ID))
	m.PutAddressList("m", v.Members)
	return m
}

// decodeView reads a view from a nested message.
func decodeView(m *msg.Message) core.View {
	if m == nil {
		return core.View{}
	}
	return core.View{
		Group:   m.GetAddress("g"),
		Name:    m.GetString("n", ""),
		ID:      core.ViewID(m.GetInt("id", 0)),
		Members: m.GetAddressList("m"),
	}
}

// putMsgID stores a multicast id on a packet.
func putMsgID(p *msg.Message, id core.MsgID) {
	p.PutAddress(fMsgID, id.Sender)
	p.PutInt(fMsgSeq, int64(id.Seq))
}

// getMsgID reads a multicast id from a packet.
func getMsgID(p *msg.Message) core.MsgID {
	return core.MsgID{Sender: p.GetAddress(fMsgID), Seq: uint64(p.GetInt(fMsgSeq, 0))}
}

// putVT / getVT move a vector timestamp through a packet. The encode side
// stamps through pooled scratch so the CBCAST hot path does not allocate for
// the timestamp bytes (PutBytes copies into the field's own storage).
func putVT(p *msg.Message, vt vclock.VC) {
	buf := msg.GetBuffer()
	*buf = vt.AppendEncode(*buf)
	p.PutBytes(fVT, *buf)
	msg.PutBuffer(buf)
}

func getVT(p *msg.Message) vclock.VC {
	vt, err := vclock.Decode(p.GetBytes(fVT))
	if err != nil {
		return nil
	}
	return vt
}

// pendingReport is one member-site's contribution to a GBCAST flush: the
// ABCASTs it has received but not delivered (with commit status and, when the
// site initiated them, the priorities collected so far) and the identifiers
// of recent deliveries so the coordinator can rebroadcast messages some
// members missed. On the commit, the same structure carries the
// reconciliation instructions back: committed entries to force everywhere,
// uncommitted entries to discard, recent messages to re-disseminate, and the
// ids of ABCASTs fenced behind the new view (their initiators restart them).
type pendingReport struct {
	Abcasts []abPendingWire
	Recent  []recentWire
	Fenced  []core.MsgID
}

type abPendingWire struct {
	ID        core.MsgID
	Committed bool
	Priority  uint64
	Packet    *msg.Message // the original ptData packet, so it can be re-disseminated
	Init      bool         // the reporting site holds the initiator round (pendingAb)
}

// recentWire is one recently delivered message in a flush report. For an
// ABCAST the reporting site also ships the final priority it delivered at
// (from its bounded commit record), so the coordinator can complete the
// message — at the exact final the protocol already used — at sites where it
// is still an uncommitted pending entry; Priority 0 means unknown (a CBCAST,
// or a record already evicted).
type recentWire struct {
	ID       core.MsgID
	Packet   *msg.Message
	Priority uint64
}

// encodePendingReport flattens a report into a nested message.
func encodePendingReport(r pendingReport) *msg.Message {
	m := msg.New()
	m.PutInt("nab", int64(len(r.Abcasts)))
	for i, a := range r.Abcasts {
		e := msg.New()
		putMsgID(e, a.ID)
		if a.Committed {
			e.PutInt("c", 1)
		} else {
			e.PutInt("c", 0)
		}
		e.PutInt("p", int64(a.Priority))
		if a.Packet != nil {
			e.PutMessage("pkt", a.Packet)
		}
		if a.Init {
			e.PutInt("i", 1)
		}
		m.PutMessage(fmt.Sprintf("ab%d", i), e)
	}
	m.PutInt("nrc", int64(len(r.Recent)))
	for i, rc := range r.Recent {
		e := msg.New()
		putMsgID(e, rc.ID)
		if rc.Packet != nil {
			e.PutMessage("pkt", rc.Packet)
		}
		if rc.Priority != 0 {
			e.PutInt("p", int64(rc.Priority))
		}
		m.PutMessage(fmt.Sprintf("rc%d", i), e)
	}
	m.PutInt("nfc", int64(len(r.Fenced)))
	for i, id := range r.Fenced {
		e := msg.New()
		putMsgID(e, id)
		m.PutMessage(fmt.Sprintf("fc%d", i), e)
	}
	return m
}

// decodePendingReport reverses encodePendingReport.
func decodePendingReport(m *msg.Message) pendingReport {
	var r pendingReport
	if m == nil {
		return r
	}
	nab := int(m.GetInt("nab", 0))
	for i := 0; i < nab; i++ {
		e := m.GetMessage(fmt.Sprintf("ab%d", i))
		if e == nil {
			continue
		}
		r.Abcasts = append(r.Abcasts, abPendingWire{
			ID:        getMsgID(e),
			Committed: e.GetInt("c", 0) == 1,
			Priority:  uint64(e.GetInt("p", 0)),
			Packet:    e.GetMessage("pkt"),
			Init:      e.GetInt("i", 0) == 1,
		})
	}
	nrc := int(m.GetInt("nrc", 0))
	for i := 0; i < nrc; i++ {
		e := m.GetMessage(fmt.Sprintf("rc%d", i))
		if e == nil {
			continue
		}
		r.Recent = append(r.Recent, recentWire{
			ID: getMsgID(e), Packet: e.GetMessage("pkt"), Priority: uint64(e.GetInt("p", 0)),
		})
	}
	nfc := int(m.GetInt("nfc", 0))
	for i := 0; i < nfc; i++ {
		e := m.GetMessage(fmt.Sprintf("fc%d", i))
		if e == nil {
			continue
		}
		r.Fenced = append(r.Fenced, getMsgID(e))
	}
	return r
}
