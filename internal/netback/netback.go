package netback

import (
	"time"

	"repro/internal/addr"
)

// SiteID aliases the address package's site identifier.
type SiteID = addr.SiteID

// Packet is one datagram travelling between sites.
type Packet struct {
	From    SiteID
	To      SiteID
	Payload []byte
}

// Profile describes the physical characteristics of a fabric that the
// transport layer needs to parameterize itself: the largest payload one
// packet may carry and a rough one-way inter-site delay (zero for a fabric
// with no modelled latency), from which the retransmission interval is
// derived.
type Profile struct {
	// MaxPacket is the largest payload a single Send may carry; zero means
	// the fabric imposes no limit.
	MaxPacket int
	// Delay is the nominal one-way inter-site delay.
	Delay time.Duration
}

// Endpoint is one site's attachment to a network fabric. Implementations
// must be safe for concurrent use.
type Endpoint interface {
	// Site returns the attached site's identifier.
	Site() SiteID
	// Send transmits payload to the destination site, best-effort: the
	// packet may be lost but not corrupted or reordered relative to other
	// packets on the same directed link. Callers may reuse the payload
	// buffer after Send returns.
	Send(to SiteID, payload []byte) error
	// Recv returns the channel on which delivered packets arrive. A
	// delivered Packet's payload buffer is owned by the receiver: the
	// backend must not reuse it after delivery.
	Recv() <-chan Packet
	// Close detaches the endpoint from the fabric; in-flight packets
	// toward it may be discarded, exactly as when a site crashes.
	Close()
}

// Network is a fabric sites attach to. Implementations must be safe for
// concurrent use.
type Network interface {
	// Attach connects a site to the fabric and returns its endpoint.
	// Attaching a site id that is already attached replaces the previous
	// endpoint (which stops receiving) — that models a site recovering
	// with a new incarnation. The epoch must increase across restarts of
	// the same site id; backends that perform connection handshakes (TCP)
	// use it to tell a restarted peer's fresh connections from stragglers
	// of dead incarnations. Backends without connections may ignore it.
	Attach(id SiteID, epoch uint64) (Endpoint, error)
	// Sites returns the ids of the sites currently known to the fabric
	// (attached, for fabrics with dynamic membership).
	Sites() []SiteID
	// Profile returns the fabric's physical parameters.
	Profile() Profile
	// Close shuts the fabric down, detaching every endpoint.
	Close()
}

// LinkEvent reports a fabric-level link transition on the undirected (A, B)
// pair: Up=false when the link goes down (an injected partition), Up=true
// when it heals. Only fabrics that can observe such transitions (the
// simulated LAN's fault injection) emit them; real networks surface outages
// through loss and the failure detector instead.
type LinkEvent struct {
	A, B SiteID
	Up   bool
}

// LinkWatcher is the optional capability of a Network to report link
// transitions. The protocols daemon type-asserts its fabric against this
// interface and, when present, probes healed links immediately so partition
// merges start without waiting out a heartbeat round trip.
type LinkWatcher interface {
	// WatchLinks registers a callback invoked on every link transition and
	// returns a function that unregisters it.
	WatchLinks(cb func(LinkEvent)) (cancel func())
}

// FaultInjector is the optional capability of a Network to sever and restore
// individual site-to-site links, for partition testing. Both in-tree
// backends implement it (the simulated LAN natively; the TCP fabric by
// discarding frames on blocked pairs), so tests written against
// Fabric().(FaultInjector) run unchanged on either. A blocked pair drops
// traffic in both directions; the reliable transport's retransmissions
// recover whatever was in flight once the pair heals.
type FaultInjector interface {
	// Partition severs the undirected link between two sites.
	Partition(a, b SiteID)
	// Heal restores the undirected link between two sites.
	Heal(a, b SiteID)
	// HealAll restores every severed link.
	HealAll()
}
