// Package netback defines the backend-neutral network abstraction the
// transport layer is written against: a Network fabric that sites attach to
// and the per-site Endpoint that sends and receives datagram-style packets.
//
// Two implementations exist. The simulated LAN (internal/simnet) is the
// deterministic substrate for tests and paper-calibrated benchmarks; the
// real TCP backend (internal/tcpnet) carries the same packets over
// length-prefixed frames on kernel sockets. The reliable transport
// (internal/transport) — fragmentation, batch coalescing, piggybacked acks,
// epoch-qualified streams — is written once against this package and works
// unchanged over either.
//
// The contract a backend must provide is deliberately weak, because the
// transport above supplies reliability itself:
//
//   - Send is best-effort: a packet may be silently lost (a cut link, a
//     dropped TCP connection). It must not be corrupted or truncated.
//   - Packets between one ordered pair of sites that ARE delivered arrive
//     in submission order (per-link FIFO). Losing a prefix or a middle run
//     is fine; reordering is not. The transport's sequence numbers, its
//     cumulative acks, and its mid-stream adoption heuristic for restarted
//     receivers all lean on this.
//   - Delivery may block briefly for backpressure but must unblock when
//     the endpoint or the fabric closes.
package netback
