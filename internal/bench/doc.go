// Package bench contains the experiment harnesses that regenerate the
// paper's evaluation artifacts: Table 1 (multicast overhead of the toolkit
// routines), Figure 2 (throughput of asynchronous CBCAST and latency of the
// three primitives versus message size), Figure 3 (breakdown of ABCAST
// execution time), the Section 5 end-to-end twenty-questions throughput, and
// the Section 7 CPU-utilisation observation. The same harnesses back both
// the testing.B benchmarks in the repository root and the cmd/isis-bench
// binary.
package bench
