package bench

import (
	"fmt"
	"time"

	isis "repro"
	"repro/internal/simnet"
	"repro/internal/tools/config"
	"repro/internal/tools/coordcohort"
	"repro/internal/tools/news"
	"repro/internal/tools/replica"
	"repro/internal/tools/sema"
	"repro/internal/tools/statexfer"
	"repro/internal/transport"
)

// entry points used by the harness services.
const (
	entryEcho = isis.EntryUserBase
	entryCC   = isis.EntryUserBase + 6
)

// ---------------------------------------------------------------------------
// Table 1 — multicast overhead for selected tools

// Table1Row reports the protocol cost of one toolkit operation, counted in
// multicasts of each kind (plus point-to-point sends, which is how replies
// are realised).
type Table1Row struct {
	Tool      string
	Operation string
	CBCASTs   uint64
	ABCASTs   uint64
	GBCASTs   uint64
	P2P       uint64
	PaperCost string // what Table 1 of the paper quotes for the same routine
}

// table1Env is the little world the Table 1 measurements run in: a
// three-site cluster with a three-member echo service and one client.
type table1Env struct {
	cluster *isis.Cluster
	members []*isis.Process
	gid     isis.Address
	client  *isis.Process
}

func newTable1Env() (*table1Env, error) {
	cluster, err := isis.NewCluster(isis.ClusterConfig{Sites: 4, CallTimeout: 5 * time.Second, ReplyTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	env := &table1Env{cluster: cluster}
	for i := 0; i < 3; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			cluster.Close()
			return nil, err
		}
		p.BindEntry(entryEcho, func(m *isis.Message) {
			if m.Has("@session") {
				_ = p.Reply(m, isis.Text("ok"))
			}
		})
		env.members = append(env.members, p)
		if i == 0 {
			v, err := p.CreateGroup("table1")
			if err != nil {
				cluster.Close()
				return nil, err
			}
			env.gid = v.Group
		} else {
			if _, err := p.JoinByName("table1", isis.JoinOptions{}); err != nil {
				cluster.Close()
				return nil, err
			}
		}
	}
	client, err := cluster.Site(4).Spawn()
	if err != nil {
		cluster.Close()
		return nil, err
	}
	if _, err := client.Lookup("table1"); err != nil {
		cluster.Close()
		return nil, err
	}
	env.client = client
	return env, nil
}

// measure runs op and returns the change in the cluster-wide counters,
// attributing only protocol initiations (each multicast is counted once, at
// the site that initiated it).
func (e *table1Env) measure(op func() error) (isis.Counters, error) {
	// Let in-flight background work settle so it is not attributed to op.
	time.Sleep(20 * time.Millisecond)
	before := e.cluster.Counters()
	if err := op(); err != nil {
		return isis.Counters{}, err
	}
	time.Sleep(50 * time.Millisecond)
	after := e.cluster.Counters()
	return isis.Counters{
		CBCASTs:       after.CBCASTs - before.CBCASTs,
		ABCASTs:       after.ABCASTs - before.ABCASTs,
		GBCASTs:       after.GBCASTs - before.GBCASTs,
		PointToPoints: after.PointToPoints - before.PointToPoints,
	}, nil
}

// RunTable1 exercises one call of each toolkit routine listed in Table 1 of
// the paper and reports its measured multicast cost.
func RunTable1() ([]Table1Row, error) {
	env, err := newTable1Env()
	if err != nil {
		return nil, err
	}
	defer env.cluster.Close()

	var rows []Table1Row
	add := func(tool, op, paper string, c isis.Counters) {
		rows = append(rows, Table1Row{Tool: tool, Operation: op,
			CBCASTs: c.CBCASTs, ABCASTs: c.ABCASTs, GBCASTs: c.GBCASTs, P2P: c.PointToPoints,
			PaperCost: paper})
	}

	// Group RPC: bc_mcast collecting one reply; the reply itself.
	c, err := env.measure(func() error {
		_, err := env.client.Query(isis.CBCAST, []isis.Address{env.gid}, entryEcho, isis.Text("q"))
		return err
	})
	if err != nil {
		return nil, err
	}
	add("group RPC", "bc_mcast(dests,msg,1 reply)", "multicast + collect replies", c)

	c, _ = env.measure(func() error {
		_, err := env.members[0].Cast(isis.CBCAST, []isis.Address{env.client.Address()}, entryEcho, isis.Text("r"))
		return err
	})
	add("group RPC", "reply(msg,answ)", "1 async CBCAST", c)

	// Process groups.
	var tempGid isis.Address
	c, _ = env.measure(func() error {
		v, err := env.members[0].CreateGroup("table1-temp")
		tempGid = v.Group
		return err
	})
	add("process groups", "pg_create", "1 local RPC", c)

	c, _ = env.measure(func() error {
		_, err := env.client.Lookup("table1-temp")
		return err
	})
	add("process groups", "pg_lookup", "1 local RPC (+1 query when remote)", c)

	joiner, _ := env.cluster.Site(2).Spawn()
	c, _ = env.measure(func() error {
		_, err := joiner.Join(tempGid, isis.JoinOptions{})
		return err
	})
	add("process groups", "pg_join", "1 CBCAST, 1 pg_addmember, 1 reply (GBCAST here)", c)

	c, _ = env.measure(func() error { return joiner.Leave(tempGid) })
	add("process groups", "pg_leave", "1 GBCAST", c)

	// State transfer: join_and_xfer.
	_ = statexfer.Provide(env.members[0], env.gid, 0, func() []byte { return []byte("state") })
	xferJoiner, _ := env.cluster.Site(4).Spawn()
	c, _ = env.measure(func() error {
		_, err := statexfer.JoinWithState(xferJoiner, env.gid, 5*time.Second, nil)
		return err
	})
	add("state transfer", "join_and_xfer", "1 GBCAST + transfer", c)
	_ = xferJoiner.Leave(env.gid)
	time.Sleep(50 * time.Millisecond)

	// Coordinator-cohort.
	plist := []isis.Address{env.members[0].Address(), env.members[1].Address(), env.members[2].Address()}
	for _, m := range env.members {
		m := m
		tool := coordcohort.New(m, env.gid)
		m.BindEntry(entryCC, func(req *isis.Message) {
			tool.Handle(req, plist, func(*isis.Message) *isis.Message { return isis.Text("done") }, nil)
		})
	}
	c, _ = env.measure(func() error {
		_, err := env.client.Query(isis.CBCAST, []isis.Address{env.gid}, entryCC, isis.Text("work"))
		return err
	})
	add("coordinator-cohort", "coord_cohort(...)", "request + reply + cohort copy", c)

	// Replicated data.
	items := make([]*replica.Item, len(env.members))
	for i, m := range env.members {
		var v int64
		items[i] = replica.Manage(m, env.gid, "bench-item",
			func(args *isis.Message) { v += args.GetInt("d", 0) },
			func(*isis.Message) *isis.Message { return isis.NewMessage().PutInt("v", v) },
			replica.Options{Mode: replica.Causal, Entry: isis.EntryUserBase + 7})
	}
	c, _ = env.measure(func() error { return items[0].Update(isis.NewMessage().PutInt("d", 1)) })
	add("replicated data", "update (async mode)", "1 async CBCAST or 1 ABCAST", c)
	c, _ = env.measure(func() error { _, err := items[0].ReadLocal(isis.NewMessage()); return err })
	add("replicated data", "read (by manager)", "no cost", c)
	rc := replica.NewClient(env.client, env.gid, "bench-item", isis.EntryUserBase+7, replica.Causal)
	c, _ = env.measure(func() error { _, err := rc.Read(isis.NewMessage()); return err })
	add("replicated data", "read (by other client)", "CBCAST + 1 reply", c)

	// Synchronization (replicated semaphore).
	for _, m := range env.members {
		sema.NewManager(m, env.gid, "bench-sem", sema.Options{Entry: isis.EntryUserBase + 8})
	}
	sc := sema.NewClient(env.client, env.gid, "bench-sem", isis.EntryUserBase+8)
	c, _ = env.measure(func() error { return sc.P() })
	add("synchronization", "P(gid,name)", "1 ABCAST, replies", c)
	c, _ = env.measure(func() error { return sc.V() })
	add("synchronization", "V(gid,name)", "1 async CBCAST (ABCAST here)", c)

	// Configuration tool.
	cfgTools := make([]*config.Tool, len(env.members))
	for i, m := range env.members {
		cfgTools[i] = config.New(m, env.gid)
	}
	c, _ = env.measure(func() error { return cfgTools[0].Update("k", []byte("v")) })
	add("configuration", "conf_update(item,value)", "1 GBCAST", c)
	c, _ = env.measure(func() error { cfgTools[0].Read("k"); return nil })
	add("configuration", "conf_read(item)", "no cost", c)

	// News service.
	newsHost, _ := env.cluster.Site(1).Spawn()
	if _, err := news.StartServer(newsHost); err != nil {
		return rows, nil
	}
	sub, err := news.NewClient(env.client)
	if err != nil {
		return rows, nil
	}
	c, _ = env.measure(func() error { return sub.Subscribe("bench", func(news.Posting) {}) })
	add("news", "subscribe(subject)", "1 local RPC per posting (enrol: 1 mcast)", c)
	c, _ = env.measure(func() error { return sub.Post("bench", "hello", nil) })
	add("news", "post_news(subject)", "1 async CBCAST or ABCAST", c)

	return rows, nil
}

// FormatTable1 renders the rows as a text table.
func FormatTable1(rows []Table1Row) string {
	s := fmt.Sprintf("%-20s %-32s %8s %8s %8s %8s   %s\n", "Tool", "Operation", "CBCAST", "ABCAST", "GBCAST", "P2P", "Paper (Table 1)")
	for _, r := range rows {
		s += fmt.Sprintf("%-20s %-32s %8d %8d %8d %8d   %s\n",
			r.Tool, r.Operation, r.CBCASTs, r.ABCASTs, r.GBCASTs, r.P2P, r.PaperCost)
	}
	return s
}

// ---------------------------------------------------------------------------
// Figure 2 — throughput and latency versus message size

// Fig2Point is one data point of Figure 2.
type Fig2Point struct {
	Primitive  string
	Dests      int
	SizeBytes  int
	LatencyMs  float64 // mean latency until the first (local-site) reply
	Throughput float64 // bytes/second, asynchronous-CBCAST panel only
}

// NetChoice selects the fabric a Figure 2 run measures: the simulated LAN
// with its calibrated delays (the default), or the real TCP-loopback wire,
// whose latencies are whatever the kernel delivers. Results from the two
// backends are different experiments and must never be compared as if they
// were the same hardware.
type NetChoice struct {
	// Backend is isis.BackendSimnet (also selected by "") or isis.BackendTCP.
	Backend string
	// Sim parameterizes the simulated LAN; ignored under BackendTCP.
	Sim simnet.Config
}

// SimChoice wraps a simulated-LAN configuration in a NetChoice.
func SimChoice(cfg simnet.Config) NetChoice { return NetChoice{Sim: cfg} }

// TCPChoice selects the TCP-loopback backend.
func TCPChoice() NetChoice { return NetChoice{Backend: isis.BackendTCP} }

// fig2Env builds a group with one member per destination site plus a sender
// member at site 1.
type fig2Env struct {
	cluster *isis.Cluster
	sender  *isis.Process
	gid     isis.Address
}

func newFig2Env(nc NetChoice, dests int, trCfg transport.Config) (*fig2Env, error) {
	cluster, err := isis.NewCluster(isis.ClusterConfig{
		Sites: dests + 1, Backend: nc.Backend, Net: nc.Sim, Transport: trCfg,
		CallTimeout: 20 * time.Second, ReplyTimeout: 30 * time.Second,
		DisableHeartbeats: true,
	})
	if err != nil {
		return nil, err
	}
	env := &fig2Env{cluster: cluster}
	for i := 0; i <= dests; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			cluster.Close()
			return nil, err
		}
		p.BindEntry(entryEcho, func(m *isis.Message) {
			if m.Has("@session") {
				_ = p.Reply(m, isis.NewMessage())
			}
		})
		if i == 0 {
			v, err := p.CreateGroup("fig2")
			if err != nil {
				cluster.Close()
				return nil, err
			}
			env.gid = v.Group
			env.sender = p
		} else {
			if _, err := p.JoinByName("fig2", isis.JoinOptions{}); err != nil {
				cluster.Close()
				return nil, err
			}
		}
	}
	time.Sleep(100 * time.Millisecond)
	return env, nil
}

// RunFigure2Latency measures the latency of one primitive: the delay between
// invoking it and receiving one reply from a local destination (the sender
// itself is a member, as in the paper's setup).
func RunFigure2Latency(nc NetChoice, primitive isis.Protocol, dests int, sizes []int, iters int) ([]Fig2Point, error) {
	env, err := newFig2Env(nc, dests, transport.Config{})
	if err != nil {
		return nil, err
	}
	defer env.cluster.Close()

	var out []Fig2Point
	for _, size := range sizes {
		payload := isis.NewMessage().PutBytes("data", make([]byte, size))
		var total time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := env.sender.Cast(primitive, []isis.Address{env.gid}, entryEcho, payload, isis.Replies(1)); err != nil {
				return nil, fmt.Errorf("%v size %d: %w", primitive, size, err)
			}
			total += time.Since(start)
		}
		out = append(out, Fig2Point{
			Primitive: primitive.String(), Dests: dests, SizeBytes: size,
			// Microsecond resolution: the TCP-loopback backend's latencies
			// sit well under a millisecond and would otherwise round to 0.
			LatencyMs: float64(total.Microseconds()) / 1000 / float64(iters),
		})
	}
	return out, nil
}

// RunFigure2Throughput measures asynchronous CBCAST throughput in payload
// bytes per second: the sender never waits for replies.
func RunFigure2Throughput(nc NetChoice, dests int, sizes []int, perSize time.Duration) ([]Fig2Point, error) {
	return RunFigure2ThroughputAblation(nc, dests, sizes, perSize, false)
}

// RunFigure2ThroughputAblation is RunFigure2Throughput with the transport's
// packet coalescing optionally disabled, so the batching win on the Figure 2
// panel stays measurable.
func RunFigure2ThroughputAblation(nc NetChoice, dests int, sizes []int, perSize time.Duration, unbatched bool) ([]Fig2Point, error) {
	env, err := newFig2Env(nc, dests, transport.Config{DisableBatching: unbatched})
	if err != nil {
		return nil, err
	}
	defer env.cluster.Close()

	var out []Fig2Point
	for _, size := range sizes {
		payload := isis.NewMessage().PutBytes("data", make([]byte, size))
		start := time.Now()
		var bytesSent int64
		for time.Since(start) < perSize {
			if _, err := env.sender.Cast(isis.CBCAST, []isis.Address{env.gid}, entryEcho, payload); err != nil {
				return nil, err
			}
			bytesSent += int64(size)
		}
		elapsed := time.Since(start).Seconds()
		out = append(out, Fig2Point{
			Primitive: "async CBCAST", Dests: dests, SizeBytes: size,
			Throughput: float64(bytesSent) / elapsed,
		})
	}
	return out, nil
}

// FormatFigure2 renders figure-2 points.
func FormatFigure2(points []Fig2Point) string {
	s := fmt.Sprintf("%-14s %6s %10s %14s %16s\n", "primitive", "dests", "size(B)", "latency(ms)", "throughput(B/s)")
	for _, p := range points {
		lat, thr := "", ""
		if p.LatencyMs > 0 {
			lat = fmt.Sprintf("%.2f", p.LatencyMs)
		}
		if p.Throughput > 0 {
			thr = fmt.Sprintf("%.0f", p.Throughput)
		}
		s += fmt.Sprintf("%-14s %6d %10d %14s %16s\n", p.Primitive, p.Dests, p.SizeBytes, lat, thr)
	}
	return s
}

// ---------------------------------------------------------------------------
// Figure 3 — breakdown of ABCAST execution time

// Fig3Breakdown decomposes the latency of one ABCAST to a remote
// destination, as Figure 3 of the paper does: the dominant component is the
// three inter-site packet traversals of the two-phase protocol.
type Fig3Breakdown struct {
	TotalMs          float64
	InterSitePackets int
	InterSiteLinkMs  float64 // packets on the critical path × link delay
	IntraSiteLinkMs  float64
	ProcessingMs     float64 // everything not accounted to link traversal
	CriticalPackets  int     // inter-site messages on the latency-critical path
}

// RunFigure3 performs one ABCAST from a member at site 1 to a group whose
// other member is at site 2, using the paper-calibrated network, and
// decomposes the observed latency.
func RunFigure3(netCfg simnet.Config, iters int) (Fig3Breakdown, error) {
	env, err := newFig2Env(SimChoice(netCfg), 1, transport.Config{})
	if err != nil {
		return Fig3Breakdown{}, err
	}
	defer env.cluster.Close()

	rec := simnet.NewRecorder()
	sim, ok := env.cluster.Network()
	if !ok {
		return Fig3Breakdown{}, fmt.Errorf("bench: figure-3 run requires the simnet backend")
	}
	sim.SetTracer(rec)

	var total time.Duration
	payload := isis.NewMessage().PutBytes("data", make([]byte, 100))
	for i := 0; i < iters; i++ {
		start := time.Now()
		// Wait for the remote member's reply so the measured interval covers
		// delivery at the remote destination.
		if _, err := env.sender.Cast(isis.ABCAST, []isis.Address{env.gid}, entryEcho, payload, isis.Replies(isis.All)); err != nil {
			return Fig3Breakdown{}, err
		}
		total += time.Since(start)
	}
	events := rec.Events()
	inter := 0
	for _, e := range events {
		if e.Kind == simnet.EventSend && e.From != e.To {
			inter++
		}
	}
	interPerCast := inter / iters
	// The latency-critical path of the two-phase protocol is data -> propose
	// -> commit (3 inter-site traversals); the remaining packets (the remote
	// member's reply, acks) overlap with it or follow it.
	critical := 3
	linkMs := float64(critical) * float64(netCfg.InterSiteDelay.Milliseconds())
	totalMs := float64(total.Milliseconds()) / float64(iters)
	intraMs := float64(netCfg.IntraSiteDelay.Milliseconds())
	processing := totalMs - linkMs - intraMs
	if processing < 0 {
		processing = 0
	}
	return Fig3Breakdown{
		TotalMs:          totalMs,
		InterSitePackets: interPerCast,
		CriticalPackets:  critical,
		InterSiteLinkMs:  linkMs,
		IntraSiteLinkMs:  intraMs,
		ProcessingMs:     processing,
	}, nil
}

// FormatFigure3 renders the breakdown.
func FormatFigure3(b Fig3Breakdown) string {
	return fmt.Sprintf(
		"ABCAST latency breakdown (1 remote destination, paper-calibrated network)\n"+
			"  total latency          : %8.1f ms   (paper: ~70 ms before remote delivery)\n"+
			"  inter-site packets/cast: %8d      (critical path: %d, paper: 3)\n"+
			"  inter-site link time   : %8.1f ms   (critical path x %s)\n"+
			"  intra-site link time   : %8.3f ms\n"+
			"  protocol processing    : %8.1f ms\n",
		b.TotalMs, b.InterSitePackets, b.CriticalPackets, b.InterSiteLinkMs,
		"16ms", b.IntraSiteLinkMs, b.ProcessingMs)
}

// ---------------------------------------------------------------------------
// Section 5 — twenty-questions end-to-end throughput

// TwentyResult reports the aggregate service rates of the twenty-questions
// configuration of Section 5: members at 4 sites, queries are CBCAST with
// one reply, updates are GBCAST to every member.
type TwentyResult struct {
	QueriesPerSec float64
	UpdatesPerSec float64
}

// RunTwentyQuestions measures both rates over the given measurement window.
func RunTwentyQuestions(netCfg simnet.Config, window time.Duration) (TwentyResult, error) {
	cluster, err := isis.NewCluster(isis.ClusterConfig{
		Sites: 4, Net: netCfg, CallTimeout: 20 * time.Second, ReplyTimeout: 30 * time.Second,
		DisableHeartbeats: true,
	})
	if err != nil {
		return TwentyResult{}, err
	}
	defer cluster.Close()

	var gid isis.Address
	for i := 0; i < 4; i++ {
		p, err := cluster.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			return TwentyResult{}, err
		}
		p.BindEntry(entryEcho, func(m *isis.Message) {
			view, _ := p.CurrentView(gid)
			rank := view.RankOf(p.Address())
			switch {
			case m.GetString("kind", "") == "update":
				// updates carry no reply
			case rank == int(m.GetInt("col", 0))%4:
				_ = p.Reply(m, isis.Text("yes"))
			default:
				_ = p.NullReply(m)
			}
		})
		if i == 0 {
			v, err := p.CreateGroup("twenty-bench")
			if err != nil {
				return TwentyResult{}, err
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("twenty-bench", isis.JoinOptions{}); err != nil {
				return TwentyResult{}, err
			}
		}
	}
	client, err := cluster.Site(1).Spawn()
	if err != nil {
		return TwentyResult{}, err
	}
	if _, err := client.Lookup("twenty-bench"); err != nil {
		return TwentyResult{}, err
	}
	time.Sleep(100 * time.Millisecond)

	// Queries.
	queries := 0
	start := time.Now()
	for time.Since(start) < window {
		q := isis.NewMessage().PutInt("col", int64(queries%6))
		if _, err := client.Cast(isis.CBCAST, []isis.Address{gid}, entryEcho, q, isis.Replies(1)); err != nil {
			return TwentyResult{}, err
		}
		queries++
	}
	qRate := float64(queries) / time.Since(start).Seconds()

	// Updates (GBCAST).
	updates := 0
	start = time.Now()
	for time.Since(start) < window {
		u := isis.NewMessage().PutString("kind", "update").PutString("row", "car gray suv 30000 Generic X")
		if _, err := client.Cast(isis.GBCAST, []isis.Address{gid}, entryEcho, u); err != nil {
			return TwentyResult{}, err
		}
		updates++
	}
	uRate := float64(updates) / time.Since(start).Seconds()
	return TwentyResult{QueriesPerSec: qRate, UpdatesPerSec: uRate}, nil
}

// ---------------------------------------------------------------------------
// Section 7 — sender CPU utilisation

// CPUResult reports the sender-site CPU utilisation for one workload.
type CPUResult struct {
	Workload    string
	Utilization float64 // fraction of wall-clock time the sender site was busy
}

// RunSenderUtilization compares an asynchronous CBCAST workload with a
// blocking ABCAST workload, reproducing the observation of Section 7 that
// asynchronous/local multicasts keep the sending site ~96-98% busy while
// protocols that wait on remote sites leave it 30-35% busy.
func RunSenderUtilization(netCfg simnet.Config, window time.Duration) ([]CPUResult, error) {
	run := func(async bool) (CPUResult, error) {
		env, err := newFig2Env(SimChoice(netCfg), 2, transport.Config{})
		if err != nil {
			return CPUResult{}, err
		}
		defer env.cluster.Close()
		net, ok := env.cluster.Network()
		if !ok {
			return CPUResult{}, fmt.Errorf("bench: cpu run requires the simnet backend")
		}
		net.ResetStats()
		payload := isis.NewMessage().PutBytes("data", make([]byte, 1000))
		start := time.Now()
		for time.Since(start) < window {
			if async {
				if _, err := env.sender.Cast(isis.CBCAST, []isis.Address{env.gid}, entryEcho, payload); err != nil {
					return CPUResult{}, err
				}
			} else {
				if _, err := env.sender.Cast(isis.ABCAST, []isis.Address{env.gid}, entryEcho, payload, isis.Replies(isis.All)); err != nil {
					return CPUResult{}, err
				}
			}
		}
		elapsed := time.Since(start)
		busy := net.BusyTime(1)
		util := float64(busy) / float64(elapsed)
		if util > 1 {
			util = 1 // queued background transmissions can over-account
		}
		name := "ABCAST, wait for remote replies"
		if async {
			name = "asynchronous CBCAST"
		}
		return CPUResult{Workload: name, Utilization: util}, nil
	}
	asyncRes, err := run(true)
	if err != nil {
		return nil, err
	}
	syncRes, err := run(false)
	if err != nil {
		return nil, err
	}
	return []CPUResult{asyncRes, syncRes}, nil
}
