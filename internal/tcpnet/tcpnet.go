package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netback"
)

// SiteID aliases the backend-neutral site identifier.
type SiteID = netback.SiteID

// Wire constants of the connection handshake: every connection opens with
// both sides sending a fixed-size hello (magic, version, site id, epoch)
// before any frame.
const (
	helloMagic   = 0x49534953 // "ISIS"
	wireVersion  = 1
	helloSize    = 4 + 1 + 8 + 8
	frameHdrSize = 4
)

// Config holds the TCP backend parameters. The zero value of every field
// selects a sensible default.
type Config struct {
	// MaxPacket is the largest payload one Send may carry (and the frame
	// size cap enforced by receivers). Defaults to 16384.
	MaxPacket int
	// DialTimeout bounds connection establishment and the handshake.
	// Defaults to 2s.
	DialTimeout time.Duration
	// RedialBackoff is the minimum gap between dial attempts to an
	// unreachable peer; frames queued in between are dropped (the
	// transport retransmits). Defaults to 50ms.
	RedialBackoff time.Duration
	// WriteTimeout bounds one frame write; a peer that stops reading long
	// enough to fill the kernel buffers costs a dropped connection, not a
	// wedged sender. Defaults to 10s.
	WriteTimeout time.Duration
	// QueueLen is the capacity of each endpoint's receive channel.
	// Defaults to 4096.
	QueueLen int
	// SendQueueLen is the capacity of each per-peer send queue; when it
	// overflows the newest frame is dropped. Defaults to 1024.
	SendQueueLen int
	// ListenHost is the interface listeners bind to (port is always
	// ephemeral). Defaults to 127.0.0.1 — the loopback deployment the
	// in-process fabric is built for.
	ListenHost string
}

func (c Config) withDefaults() Config {
	if c.MaxPacket <= 0 {
		c.MaxPacket = 16384
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4096
	}
	if c.SendQueueLen <= 0 {
		c.SendQueueLen = 1024
	}
	if c.ListenHost == "" {
		c.ListenHost = "127.0.0.1"
	}
	return c
}

// Errors returned by the backend.
var (
	ErrClosed      = errors.New("tcpnet: endpoint closed")
	ErrUnknownSite = errors.New("tcpnet: destination site not attached")
	ErrTooLarge    = errors.New("tcpnet: payload exceeds MaxPacket")
)

// Stats counts backend activity across all endpoints of a fabric.
type Stats struct {
	FramesSent    uint64 // frames handed to a socket
	FramesDropped uint64 // frames dropped (no connection, full queue, write error)
	FramesRecv    uint64 // frames delivered to receive channels
	BytesSent     uint64
	Dials         uint64 // outbound connections established (handshake done)
	Accepts       uint64 // inbound connections established (handshake done)
	Refused       uint64 // connections refused (stale epoch or lost tie-break)
}

// The TCP fabric supports the same injected-partition capabilities as the
// simulated LAN, so partition tests run against either backend.
var (
	_ netback.FaultInjector = (*Network)(nil)
	_ netback.LinkWatcher   = (*Network)(nil)
)

// Network is the in-process fabric for TCP-loopback deployments: a shared
// address book that maps attached site ids to their listeners, so sites in
// one process discover each other exactly as they would from a static
// cluster manifest. It implements netback.Network over real kernel sockets.
type Network struct {
	cfg Config

	mu        sync.Mutex
	addrs     map[SiteID]string
	eps       map[SiteID]*Endpoint
	blocked   map[[2]SiteID]bool // severed undirected pairs (fault injection)
	watchers  map[int]func(netback.LinkEvent)
	nextWatch int
	closed    bool

	framesSent    atomic.Uint64
	framesDropped atomic.Uint64
	framesRecv    atomic.Uint64
	bytesSent     atomic.Uint64
	dials         atomic.Uint64
	accepts       atomic.Uint64
	refused       atomic.Uint64
}

// New creates an empty TCP fabric.
func New(cfg Config) *Network {
	return &Network{
		cfg:      cfg.withDefaults(),
		addrs:    make(map[SiteID]string),
		eps:      make(map[SiteID]*Endpoint),
		blocked:  make(map[[2]SiteID]bool),
		watchers: make(map[int]func(netback.LinkEvent)),
	}
}

// pairKey normalizes an undirected site pair.
func pairKey(a, b SiteID) [2]SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]SiteID{a, b}
}

// Partition severs the undirected link between two sites: frames between
// them are dropped at both the sender (never queued) and the receiver
// (connections established before the cut keep carrying frames, which are
// discarded on arrival). The TCP connections themselves are left alone —
// a real partition does not reset established sockets promptly either; the
// failure detector, not the socket layer, is what notices the outage.
func (n *Network) Partition(a, b SiteID) { n.setBlocked(a, b, true) }

// Heal restores the undirected link between two sites.
func (n *Network) Heal(a, b SiteID) { n.setBlocked(a, b, false) }

// HealAll restores every severed link.
func (n *Network) HealAll() {
	n.mu.Lock()
	pairs := make([][2]SiteID, 0, len(n.blocked))
	for k := range n.blocked {
		pairs = append(pairs, k)
	}
	n.mu.Unlock()
	for _, k := range pairs {
		n.setBlocked(k[0], k[1], false)
	}
}

func (n *Network) setBlocked(a, b SiteID, down bool) {
	k := pairKey(a, b)
	n.mu.Lock()
	was := n.blocked[k]
	if down == was {
		n.mu.Unlock()
		return
	}
	if down {
		n.blocked[k] = true
	} else {
		delete(n.blocked, k)
	}
	cbs := make([]func(netback.LinkEvent), 0, len(n.watchers))
	for _, cb := range n.watchers {
		cbs = append(cbs, cb)
	}
	n.mu.Unlock()
	ev := netback.LinkEvent{A: k[0], B: k[1], Up: !down}
	for _, cb := range cbs {
		cb(ev)
	}
}

func (n *Network) isBlocked(a, b SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[pairKey(a, b)]
}

// WatchLinks registers a callback invoked on every injected link transition
// and returns a function that unregisters it (netback.LinkWatcher).
func (n *Network) WatchLinks(cb func(netback.LinkEvent)) (cancel func()) {
	n.mu.Lock()
	n.nextWatch++
	id := n.nextWatch
	n.watchers[id] = cb
	n.mu.Unlock()
	return func() {
		n.mu.Lock()
		delete(n.watchers, id)
		n.mu.Unlock()
	}
}

// Config returns the fabric's configuration (with defaults applied).
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the fabric's activity counters.
func (n *Network) Stats() Stats {
	return Stats{
		FramesSent:    n.framesSent.Load(),
		FramesDropped: n.framesDropped.Load(),
		FramesRecv:    n.framesRecv.Load(),
		BytesSent:     n.bytesSent.Load(),
		Dials:         n.dials.Load(),
		Accepts:       n.accepts.Load(),
		Refused:       n.refused.Load(),
	}
}

// Attach connects a site to the fabric: it opens a listener on an ephemeral
// port, registers it in the shared address book, and returns the endpoint.
// Re-attaching an id replaces the previous endpoint (a restart with a new
// incarnation); the epoch must increase across such restarts, and is what
// the connection handshake uses to refuse stragglers of dead incarnations.
func (n *Network) Attach(id SiteID, epoch uint64) (netback.Endpoint, error) {
	ln, err := net.Listen("tcp", net.JoinHostPort(n.cfg.ListenHost, "0"))
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen for site %d: %w", id, err)
	}
	ep := &Endpoint{
		net:   n,
		id:    id,
		epoch: epoch,
		ln:    ln,
		recv:  make(chan netback.Packet, n.cfg.QueueLen),
		done:  make(chan struct{}),
		peers: make(map[SiteID]*peer),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	old := n.eps[id]
	n.eps[id] = ep
	n.addrs[id] = ln.Addr().String()
	n.mu.Unlock()
	if old != nil {
		old.Close()
	}
	ep.wg.Add(1)
	go ep.runAccept()
	return ep, nil
}

// Sites returns the ids of currently attached sites, in ascending order.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	out := make([]SiteID, 0, len(n.addrs))
	for id := range n.addrs {
		out = append(out, id)
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profile returns the fabric's physical parameters: the frame size cap and
// no modelled delay (the wire is as fast as the kernel makes it).
func (n *Network) Profile() netback.Profile {
	return netback.Profile{MaxPacket: n.cfg.MaxPacket}
}

// Close detaches every endpoint and shuts the fabric down.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[SiteID]*Endpoint)
	n.addrs = make(map[SiteID]string)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// addrOf resolves a site to its current listener address.
func (n *Network) addrOf(id SiteID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.addrs[id]
	return a, ok
}

// detach removes an endpoint from the fabric if it is still the current
// holder of its site id (a replacement installed by a later Attach stays).
func (n *Network) detach(ep *Endpoint) {
	n.mu.Lock()
	if cur, ok := n.eps[ep.id]; ok && cur == ep {
		delete(n.eps, ep.id)
		delete(n.addrs, ep.id)
	}
	n.mu.Unlock()
}

// peer is the connection state toward one remote site: at most one
// established duplex connection, a bounded send queue drained by a dedicated
// sender goroutine, and the highest handshake epoch ever seen from the site
// (connections presenting a lower one are stragglers and refused).
type peer struct {
	id         SiteID
	sendQ      chan []byte
	conn       net.Conn // established connection, nil while down
	connDialer SiteID   // which side dialed it (tie-breaking)
	maxEpoch   uint64
	lastFail   time.Time // last failed dial, for backoff
}

// Endpoint is one site's attachment to the TCP fabric.
type Endpoint struct {
	net   *Network
	id    SiteID
	epoch uint64
	ln    net.Listener
	recv  chan netback.Packet
	done  chan struct{}

	mu     sync.Mutex
	peers  map[SiteID]*peer
	closed bool
	wg     sync.WaitGroup
}

// Site returns the endpoint's site id.
func (e *Endpoint) Site() SiteID { return e.id }

// Recv returns the channel on which delivered packets arrive.
func (e *Endpoint) Recv() <-chan netback.Packet { return e.recv }

// Send queues payload for transmission to the destination site. Delivery is
// best-effort: if the peer is unreachable, the connection dies mid-flight,
// or the send queue overflows, the frame is dropped and the reliable
// transport's retransmission recovers it. Frames that are delivered arrive
// in submission order (one TCP connection per peer).
func (e *Endpoint) Send(to SiteID, payload []byte) error {
	if len(payload) > e.net.cfg.MaxPacket {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), e.net.cfg.MaxPacket)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if to == e.id {
		// Intra-site traffic short-circuits the socket layer.
		cp := make([]byte, len(payload))
		copy(cp, payload)
		e.mu.Unlock()
		select {
		case e.recv <- netback.Packet{From: e.id, To: e.id, Payload: cp}:
			e.net.framesRecv.Add(1)
		case <-e.done:
		}
		return nil
	}
	p, ok := e.peers[to]
	if !ok {
		p = &peer{id: to, sendQ: make(chan []byte, e.net.cfg.SendQueueLen)}
		e.peers[to] = p
		e.wg.Add(1)
		go e.runSender(p)
	}
	e.mu.Unlock()

	if e.net.isBlocked(e.id, to) {
		// Injected partition: drop at the source, like a lost datagram.
		e.net.framesDropped.Add(1)
		return nil
	}

	// Frame = 4-byte big-endian length + payload, built here so the caller
	// may reuse its buffer immediately.
	frame := make([]byte, frameHdrSize+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[frameHdrSize:], payload)
	select {
	case p.sendQ <- frame:
	default:
		e.net.framesDropped.Add(1) // backpressure overflow: transport retransmits
	}
	return nil
}

// Close detaches the endpoint: the listener stops accepting, every
// connection closes, and the background goroutines exit.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.done)
	conns := make([]net.Conn, 0, len(e.peers))
	for _, p := range e.peers {
		if p.conn != nil {
			conns = append(conns, p.conn)
			p.conn = nil
		}
	}
	e.mu.Unlock()
	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	e.net.detach(e)
	e.wg.Wait()
}

// runAccept accepts inbound connections until the listener closes.
func (e *Endpoint) runAccept() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.acceptHandshake(c)
	}
}

// acceptHandshake completes the hello exchange on an inbound connection and
// installs it for the peer it identifies.
func (e *Endpoint) acceptHandshake(c net.Conn) {
	defer e.wg.Done()
	peerID, peerEpoch, err := e.handshake(c)
	if err != nil || peerID == e.id {
		c.Close()
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return
	}
	p, ok := e.peers[peerID]
	if !ok {
		p = &peer{id: peerID, sendQ: make(chan []byte, e.net.cfg.SendQueueLen)}
		e.peers[peerID] = p
		e.wg.Add(1)
		go e.runSender(p)
	}
	installed := e.installConnLocked(p, c, peerEpoch, peerID)
	e.mu.Unlock()
	if installed {
		e.net.accepts.Add(1)
	}
}

// handshake performs the symmetric hello exchange on a fresh connection and
// returns the remote site id and epoch. It also disables Nagle's algorithm:
// the transport's own batch coalescing decides frame boundaries, and a
// delayed partial write under Nagle would serialize the ack path.
func (e *Endpoint) handshake(c net.Conn) (SiteID, uint64, error) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	deadline := time.Now().Add(e.net.cfg.DialTimeout)
	_ = c.SetDeadline(deadline)
	var hello [helloSize]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	hello[4] = wireVersion
	binary.BigEndian.PutUint64(hello[5:13], uint64(e.id))
	binary.BigEndian.PutUint64(hello[13:21], e.epoch)
	if _, err := c.Write(hello[:]); err != nil {
		return 0, 0, err
	}
	var in [helloSize]byte
	if _, err := io.ReadFull(c, in[:]); err != nil {
		return 0, 0, err
	}
	if binary.BigEndian.Uint32(in[0:4]) != helloMagic || in[4] != wireVersion {
		return 0, 0, errors.New("tcpnet: bad hello")
	}
	_ = c.SetDeadline(time.Time{})
	return SiteID(binary.BigEndian.Uint64(in[5:13])), binary.BigEndian.Uint64(in[13:21]), nil
}

// installConnLocked decides the fate of a freshly handshaken connection
// against the peer's current state and installs it if it wins. The rules,
// applied in order, keep both ends deterministic:
//
//   - a connection presenting an epoch lower than the highest already seen
//     from this site is a straggler of a dead incarnation: refused;
//   - a higher epoch announces a restarted peer: it replaces whatever
//     connection is established;
//   - at equal epochs (a simultaneous dial race), the connection dialed by
//     the lower-numbered site wins — both ends evaluate the same rule on
//     the same pair of connections and settle on the same socket. A re-dial
//     from the same direction replaces its predecessor (which is dead or
//     dying, or the peer would not have dialed again).
//
// Caller holds e.mu. Returns whether the connection was installed.
func (e *Endpoint) installConnLocked(p *peer, c net.Conn, epoch uint64, dialer SiteID) bool {
	if epoch < p.maxEpoch {
		e.net.refused.Add(1)
		c.Close()
		return false
	}
	if epoch == p.maxEpoch && p.conn != nil && dialer > p.connDialer {
		e.net.refused.Add(1)
		c.Close()
		return false
	}
	if epoch > p.maxEpoch {
		p.maxEpoch = epoch
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = c
	p.connDialer = dialer
	e.wg.Add(1)
	go e.runReader(p, c)
	return true
}

// runSender drains one peer's send queue onto its connection, dialing on
// demand. A frame that cannot be sent is dropped: reliability is the
// transport's job, and blocking here would stall the retransmission loop
// for every other peer.
func (e *Endpoint) runSender(p *peer) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case frame := <-p.sendQ:
			c := e.connFor(p)
			if c == nil {
				e.net.framesDropped.Add(1)
				continue
			}
			if !e.writeFrame(p, c, frame) {
				// The established connection may have been dead for a
				// while (half-open): retry once on a fresh dial so the
				// first frame after an outage is not systematically lost.
				if c = e.connFor(p); c == nil || !e.writeFrame(p, c, frame) {
					e.net.framesDropped.Add(1)
					continue
				}
			}
			e.net.framesSent.Add(1)
			e.net.bytesSent.Add(uint64(len(frame) - frameHdrSize))
		}
	}
}

// writeFrame writes one frame, dropping the connection on error or write
// timeout. Only the peer's sender goroutine writes frames, so writes are
// never interleaved.
func (e *Endpoint) writeFrame(p *peer, c net.Conn, frame []byte) bool {
	_ = c.SetWriteDeadline(time.Now().Add(e.net.cfg.WriteTimeout))
	if _, err := c.Write(frame); err != nil {
		e.forgetConn(p, c)
		c.Close()
		return false
	}
	return true
}

// connFor returns the peer's established connection, dialing one if none
// exists and the redial backoff has elapsed.
func (e *Endpoint) connFor(p *peer) net.Conn {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	if p.conn != nil {
		c := p.conn
		e.mu.Unlock()
		return c
	}
	if time.Since(p.lastFail) < e.net.cfg.RedialBackoff {
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()
	return e.dialPeer(p)
}

// dialPeer establishes a fresh connection to the peer: resolve its listener
// from the fabric's address book (at dial time, so a restarted peer's new
// port is picked up), connect, handshake, and run the install rules.
func (e *Endpoint) dialPeer(p *peer) net.Conn {
	fail := func() net.Conn {
		e.mu.Lock()
		p.lastFail = time.Now()
		e.mu.Unlock()
		return nil
	}
	addr, ok := e.net.addrOf(p.id)
	if !ok {
		return fail()
	}
	c, err := net.DialTimeout("tcp", addr, e.net.cfg.DialTimeout)
	if err != nil {
		return fail()
	}
	peerID, peerEpoch, err := e.handshake(c)
	if err != nil || peerID != p.id {
		c.Close()
		return fail()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil
	}
	installed := e.installConnLocked(p, c, peerEpoch, e.id)
	cur := p.conn
	e.mu.Unlock()
	if installed {
		e.net.dials.Add(1)
	}
	// Whether our dial won the tie-break or an accepted connection beat it,
	// the peer's current connection is what sends should use.
	return cur
}

// forgetConn clears a dead connection from the peer state, leaving any
// replacement that was installed concurrently untouched.
func (e *Endpoint) forgetConn(p *peer, c net.Conn) {
	e.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	e.mu.Unlock()
}

// runReader delivers one connection's inbound frames until it dies. Frames
// are length-checked against MaxPacket (with handshake slack) so a corrupt
// or hostile length prefix cannot demand an unbounded allocation.
func (e *Endpoint) runReader(p *peer, c net.Conn) {
	defer e.wg.Done()
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [frameHdrSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n > e.net.cfg.MaxPacket {
			break
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			break
		}
		if e.net.isBlocked(e.id, p.id) {
			// Injected partition: frames already in flight on a connection
			// established before the cut are discarded on arrival.
			e.net.framesDropped.Add(1)
			continue
		}
		select {
		case e.recv <- netback.Packet{From: p.id, To: e.id, Payload: buf}:
			e.net.framesRecv.Add(1)
		case <-e.done:
			c.Close()
			e.forgetConn(p, c)
			return
		}
	}
	c.Close()
	e.forgetConn(p, c)
}
