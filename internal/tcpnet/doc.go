// Package tcpnet is the real-wire network backend: it carries the
// transport's packets over kernel TCP sockets as length-prefixed frames,
// implementing the netback fabric contract that internal/simnet implements
// in simulation.
//
// Each attached site owns one listener; peers are connected lazily with one
// duplex connection per site pair. When both sides dial simultaneously the
// duplicate is resolved deterministically — the connection dialed by the
// lower-numbered site wins — so both ends settle on the same socket. Every
// connection opens with an epoch handshake (magic, version, site id,
// incarnation epoch): a connection presenting an epoch lower than the
// highest already seen from that site is a straggler of a dead incarnation
// and is refused, while a higher epoch announces a restarted peer and
// replaces the established connection. The reliable transport above this
// backend supplies retransmission and duplicate suppression, so the backend
// is deliberately lossy at the edges: frames queued for a dead connection
// are dropped and redelivery is the transport's job, which is exactly the
// datagram contract netback specifies.
package tcpnet
