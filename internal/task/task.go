package task

import (
	"errors"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/msg"
)

// Handler is a routine bound to an entry point. It runs in its own task.
type Handler func(m *msg.Message)

// Filter examines an arriving message before a task is created for it. A
// filter returns false to discard the message (for example, the protection
// tool rejects messages from untrusted senders). Filters run in the order
// they were added, on the dispatcher's goroutine.
type Filter func(entry addr.EntryID, m *msg.Message) bool

// Errors returned by Dispatch.
var (
	ErrClosed  = errors.New("task: manager closed")
	ErrNoEntry = errors.New("task: no handler bound to entry")
)

// Manager owns one process's entry table, filter chain, and running tasks.
// It is safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	entries map[addr.EntryID]Handler
	filters []Filter
	workers map[addr.EntryID]chan queued
	closed  bool
	done    chan struct{}

	active sync.WaitGroup
	nTasks int64
	total  uint64
}

// queued is one message awaiting its entry worker.
type queued struct {
	h Handler
	m *msg.Message
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		entries: make(map[addr.EntryID]Handler),
		workers: make(map[addr.EntryID]chan queued),
		done:    make(chan struct{}),
	}
}

// BindEntry binds handler h to entry point e, replacing any previous
// binding. Binding a nil handler removes the entry.
func (g *Manager) BindEntry(e addr.EntryID, h Handler) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if h == nil {
		delete(g.entries, e)
		return
	}
	g.entries[e] = h
}

// Bound reports whether an entry currently has a handler.
func (g *Manager) Bound(e addr.EntryID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.entries[e]
	return ok
}

// AddFilter appends a filter to the chain.
func (g *Manager) AddFilter(f Filter) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.filters = append(g.filters, f)
}

// Dispatch runs the filter chain for the message and, if every filter
// passes, schedules a task running the handler bound to the entry point.
// Tasks for the same entry run sequentially in dispatch order; tasks for
// different entries run concurrently. Dispatch returns ErrNoEntry when
// nothing is bound to the entry, ErrClosed when the manager has been
// closed, and nil when a task was scheduled or the message was (silently)
// dropped by a filter.
func (g *Manager) Dispatch(entry addr.EntryID, m *msg.Message) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	filters := make([]Filter, len(g.filters))
	copy(filters, g.filters)
	h, ok := g.entries[entry]
	g.mu.Unlock()

	for _, f := range filters {
		if !f(entry, m) {
			return nil // dropped by a filter; not an error
		}
	}
	if !ok {
		return ErrNoEntry
	}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	w, exists := g.workers[entry]
	if !exists {
		w = make(chan queued, 4096)
		g.workers[entry] = w
		go g.runEntryWorker(w)
	}
	g.active.Add(1)
	g.nTasks++
	g.total++
	// Enqueue under the lock so queue order equals dispatch order.
	select {
	case w <- queued{h: h, m: m}:
		g.mu.Unlock()
	default:
		// The entry's queue is saturated: fall back to an unordered task
		// rather than blocking the caller (which is the protocols process).
		g.mu.Unlock()
		go func() {
			defer g.taskDone()
			h(m)
		}()
	}
	return nil
}

// runEntryWorker executes one entry point's tasks sequentially.
func (g *Manager) runEntryWorker(w chan queued) {
	for {
		select {
		case q := <-w:
			q.h(q.m)
			g.taskDone()
		case <-g.done:
			// Drain whatever was enqueued before shutdown so WaitIdle
			// callers are released.
			for {
				select {
				case <-w:
					g.taskDone()
				default:
					return
				}
			}
		}
	}
}

func (g *Manager) taskDone() {
	g.mu.Lock()
	g.nTasks--
	g.mu.Unlock()
	g.active.Done()
}

// Run executes fn as a tracked task without going through the entry table;
// the toolkit uses it for internally generated work (e.g. monitor
// callbacks) so that WaitIdle covers it too.
func (g *Manager) Run(fn func()) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.active.Add(1)
	g.nTasks++
	g.total++
	g.mu.Unlock()
	go func() {
		defer func() {
			g.mu.Lock()
			g.nTasks--
			g.mu.Unlock()
			g.active.Done()
		}()
		fn()
	}()
	return nil
}

// ActiveTasks returns the number of currently running tasks.
func (g *Manager) ActiveTasks() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int(g.nTasks)
}

// TotalTasks returns the number of tasks ever started.
func (g *Manager) TotalTasks() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// WaitIdle blocks until all running tasks finish or the timeout elapses,
// and reports whether the manager became idle.
func (g *Manager) WaitIdle(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		g.active.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close stops the manager: subsequent Dispatch and Run calls fail. Running
// tasks are allowed to finish; queued tasks are discarded.
func (g *Manager) Close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.done)
	}
	g.mu.Unlock()
}
