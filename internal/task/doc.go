// Package task implements the ISIS light-weight task facility of Section 4.1
// of the paper: a single process can execute multiple concurrent tasks, one
// per arriving message. Each process binds routines to entry points (1-byte
// identifiers); when a message arrives, it is passed through a chain of
// filters (the protection facility installs one, and the final "filter" is
// the one that creates new tasks) and then a new task runs the routine bound
// to the destination entry point.
//
// The 1987 implementation used fixed-stack, non-preemptive coroutines: a
// task ran until it blocked, so messages arriving at one entry point were
// processed in arrival order unless the handler explicitly waited. Here each
// task is a goroutine, and that ordering property is preserved by running
// the tasks of each entry point sequentially (one worker per entry);
// different entry points execute concurrently, and Run starts explicitly
// concurrent work. A handler that blocks therefore delays only later
// messages for its own entry, which matches how the toolkit's tools use
// entries (one entry per tool or per replicated item).
package task
