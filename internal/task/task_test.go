package task

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/msg"
)

func TestDispatchRunsHandler(t *testing.T) {
	g := NewManager()
	var got atomic.Int64
	g.BindEntry(addr.EntryUserBase, func(m *msg.Message) {
		got.Store(m.GetInt("x", 0))
	})
	if err := g.Dispatch(addr.EntryUserBase, msg.New().PutInt("x", 7)); err != nil {
		t.Fatal(err)
	}
	if !g.WaitIdle(time.Second) {
		t.Fatal("tasks did not drain")
	}
	if got.Load() != 7 {
		t.Errorf("handler saw x = %d", got.Load())
	}
	if g.TotalTasks() != 1 {
		t.Errorf("TotalTasks = %d", g.TotalTasks())
	}
}

func TestDispatchNoEntry(t *testing.T) {
	g := NewManager()
	err := g.Dispatch(addr.EntryUserBase, msg.New())
	if !errors.Is(err, ErrNoEntry) {
		t.Errorf("err = %v, want ErrNoEntry", err)
	}
}

func TestBindNilUnbinds(t *testing.T) {
	g := NewManager()
	g.BindEntry(5, func(*msg.Message) {})
	if !g.Bound(5) {
		t.Fatal("entry not bound")
	}
	g.BindEntry(5, nil)
	if g.Bound(5) {
		t.Fatal("entry still bound after nil bind")
	}
	if err := g.Dispatch(5, msg.New()); !errors.Is(err, ErrNoEntry) {
		t.Errorf("err = %v", err)
	}
}

func TestRebindReplacesHandler(t *testing.T) {
	g := NewManager()
	var first, second atomic.Int64
	g.BindEntry(1, func(*msg.Message) { first.Add(1) })
	g.BindEntry(1, func(*msg.Message) { second.Add(1) })
	_ = g.Dispatch(1, msg.New())
	g.WaitIdle(time.Second)
	if first.Load() != 0 || second.Load() != 1 {
		t.Errorf("first=%d second=%d", first.Load(), second.Load())
	}
}

func TestFilterDropsMessage(t *testing.T) {
	g := NewManager()
	var ran atomic.Int64
	g.BindEntry(1, func(*msg.Message) { ran.Add(1) })
	g.AddFilter(func(e addr.EntryID, m *msg.Message) bool {
		return m.GetString("allowed", "") == "yes"
	})
	if err := g.Dispatch(1, msg.New().PutString("allowed", "no")); err != nil {
		t.Fatalf("dropped message should not be an error: %v", err)
	}
	if err := g.Dispatch(1, msg.New().PutString("allowed", "yes")); err != nil {
		t.Fatal(err)
	}
	g.WaitIdle(time.Second)
	if ran.Load() != 1 {
		t.Errorf("handler ran %d times, want 1", ran.Load())
	}
}

func TestFilterChainOrder(t *testing.T) {
	g := NewManager()
	var order []int
	var mu sync.Mutex
	g.AddFilter(func(addr.EntryID, *msg.Message) bool {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		return true
	})
	g.AddFilter(func(addr.EntryID, *msg.Message) bool {
		mu.Lock()
		order = append(order, 2)
		mu.Unlock()
		return false // drop, third filter must not run
	})
	g.AddFilter(func(addr.EntryID, *msg.Message) bool {
		mu.Lock()
		order = append(order, 3)
		mu.Unlock()
		return true
	})
	g.BindEntry(1, func(*msg.Message) {})
	_ = g.Dispatch(1, msg.New())
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("filter order = %v", order)
	}
}

func TestFilterSeesEntry(t *testing.T) {
	g := NewManager()
	var seen atomic.Int64
	g.AddFilter(func(e addr.EntryID, m *msg.Message) bool {
		seen.Store(int64(e))
		return true
	})
	g.BindEntry(42, func(*msg.Message) {})
	_ = g.Dispatch(42, msg.New())
	if seen.Load() != 42 {
		t.Errorf("filter saw entry %d", seen.Load())
	}
}

func TestConcurrentTasksAcrossEntries(t *testing.T) {
	// Tasks for different entry points run concurrently: all ten must start
	// even though none has finished.
	g := NewManager()
	release := make(chan struct{})
	started := make(chan struct{}, 10)
	for e := addr.EntryID(1); e <= 10; e++ {
		g.BindEntry(e, func(*msg.Message) {
			started <- struct{}{}
			<-release
		})
	}
	for e := addr.EntryID(1); e <= 10; e++ {
		if err := g.Dispatch(e, msg.New()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case <-started:
		case <-time.After(time.Second):
			t.Fatalf("only %d tasks started concurrently", i)
		}
	}
	if g.ActiveTasks() != 10 {
		t.Errorf("ActiveTasks = %d", g.ActiveTasks())
	}
	close(release)
	if !g.WaitIdle(time.Second) {
		t.Fatal("tasks did not drain")
	}
	if g.ActiveTasks() != 0 {
		t.Errorf("ActiveTasks after drain = %d", g.ActiveTasks())
	}
}

func TestSameEntryTasksRunInDispatchOrder(t *testing.T) {
	// Tasks for the same entry point are serialized in dispatch order,
	// mirroring the non-preemptive coroutines of the original system; this
	// is what lets the replicated-data tool apply ABCAST updates in the
	// delivery order.
	g := NewManager()
	var mu sync.Mutex
	var order []int64
	g.BindEntry(1, func(m *msg.Message) {
		mu.Lock()
		order = append(order, m.GetInt("i", -1))
		mu.Unlock()
	})
	const k = 200
	for i := 0; i < k; i++ {
		if err := g.Dispatch(1, msg.New().PutInt("i", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !g.WaitIdle(5 * time.Second) {
		t.Fatal("tasks did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != k {
		t.Fatalf("ran %d tasks, want %d", len(order), k)
	}
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("order violated at %d: %v", i, order[:i+1])
		}
	}
}

func TestBlockedEntryDoesNotStallOtherEntries(t *testing.T) {
	g := NewManager()
	block := make(chan struct{})
	g.BindEntry(1, func(*msg.Message) { <-block })
	var ran atomic.Bool
	g.BindEntry(2, func(*msg.Message) { ran.Store(true) })
	_ = g.Dispatch(1, msg.New())
	_ = g.Dispatch(2, msg.New())
	deadline := time.Now().Add(time.Second)
	for !ran.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !ran.Load() {
		t.Fatal("a blocked entry stalled an unrelated entry")
	}
	close(block)
	g.WaitIdle(time.Second)
}

func TestRun(t *testing.T) {
	g := NewManager()
	var ran atomic.Bool
	if err := g.Run(func() { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	g.WaitIdle(time.Second)
	if !ran.Load() {
		t.Error("Run did not execute the function")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	g := NewManager()
	g.BindEntry(1, func(*msg.Message) {})
	g.Close()
	if err := g.Dispatch(1, msg.New()); !errors.Is(err, ErrClosed) {
		t.Errorf("Dispatch after close = %v", err)
	}
	if err := g.Run(func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after close = %v", err)
	}
}

func TestWaitIdleTimeout(t *testing.T) {
	g := NewManager()
	block := make(chan struct{})
	g.BindEntry(1, func(*msg.Message) { <-block })
	_ = g.Dispatch(1, msg.New())
	if g.WaitIdle(20 * time.Millisecond) {
		t.Error("WaitIdle returned true while a task was blocked")
	}
	close(block)
	if !g.WaitIdle(time.Second) {
		t.Error("WaitIdle timed out after the task unblocked")
	}
}
