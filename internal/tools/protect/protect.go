package protect

import (
	"sync"

	isis "repro"
)

// Decision is what the validation routine decides about a suspect message.
type Decision int

const (
	// Reject silently drops the message.
	Reject Decision = iota
	// Accept lets the message through to its entry point.
	Accept
)

// Validator examines a message from a sender that is not on the allow list
// and decides its fate, based on the sender and the message contents.
type Validator func(sender isis.Address, entry isis.EntryID, m *isis.Message) Decision

// Guard is the per-process protection state: an allow list plus a validator
// for everything else. Install attaches it to the process's filter chain.
type Guard struct {
	mu       sync.Mutex
	allowed  map[isis.Address]bool
	validate Validator
	rejected uint64
}

// Install creates a guard and attaches it to the process. With a nil
// validator, messages from unknown senders are rejected.
func Install(p *isis.Process, validate Validator) *Guard {
	g := &Guard{allowed: make(map[isis.Address]bool), validate: validate}
	p.AddFilter(func(entry isis.EntryID, m *isis.Message) bool {
		return g.check(entry, m)
	})
	return g
}

// Allow marks senders as trusted: their messages always pass.
func (g *Guard) Allow(senders ...isis.Address) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range senders {
		g.allowed[s.Base()] = true
	}
}

// Revoke removes senders from the allow list.
func (g *Guard) Revoke(senders ...isis.Address) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range senders {
		delete(g.allowed, s.Base())
	}
}

// Rejected returns how many messages the guard has dropped.
func (g *Guard) Rejected() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rejected
}

func (g *Guard) check(entry isis.EntryID, m *isis.Message) bool {
	sender := m.Sender()
	g.mu.Lock()
	trusted := g.allowed[sender.Base()]
	validate := g.validate
	g.mu.Unlock()
	if trusted {
		return true
	}
	if validate != nil && validate(sender, entry, m) == Accept {
		return true
	}
	g.mu.Lock()
	g.rejected++
	g.mu.Unlock()
	return false
}
