package protect

import (
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: 2, CallTimeout: 2 * time.Second, ReplyTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestGuardRejectsUnknownSenders(t *testing.T) {
	c := cluster(t)
	server, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan string, 10)
	server.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		delivered <- m.GetString("body", "")
	})
	guard := Install(server, nil) // nil validator: reject all unknown senders
	v, err := server.CreateGroup("protected")
	if err != nil {
		t.Fatal(err)
	}

	trusted, _ := c.Site(2).Spawn()
	untrusted, _ := c.Site(2).Spawn()
	guard.Allow(trusted.Address())

	if _, err := trusted.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, isis.Text("from-trusted")); err != nil {
		t.Fatal(err)
	}
	if _, err := untrusted.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, isis.Text("from-untrusted")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if got != "from-trusted" {
			t.Fatalf("delivered %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("trusted message never delivered")
	}
	// The untrusted message must have been dropped.
	select {
	case got := <-delivered:
		t.Fatalf("untrusted message delivered: %q", got)
	case <-time.After(100 * time.Millisecond):
	}
	if guard.Rejected() == 0 {
		t.Error("Rejected counter did not advance")
	}
}

func TestValidatorCanAccept(t *testing.T) {
	c := cluster(t)
	server, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan string, 10)
	server.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		delivered <- m.GetString("body", "")
	})
	Install(server, func(sender isis.Address, entry isis.EntryID, m *isis.Message) Decision {
		if m.GetString("password", "") == "sesame" {
			return Accept
		}
		return Reject
	})
	v, err := server.CreateGroup("validated")
	if err != nil {
		t.Fatal(err)
	}
	client, _ := c.Site(2).Spawn()
	good := isis.Text("with-password")
	good.PutString("password", "sesame")
	bad := isis.Text("without-password")
	if _, err := client.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, good); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if got != "with-password" {
			t.Fatalf("delivered %q, want the validated message only", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("validated message never delivered")
	}
}

func TestSenderAddressCannotBeForged(t *testing.T) {
	c := cluster(t)
	server, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	senders := make(chan isis.Address, 10)
	server.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		senders <- m.Sender()
	})
	v, err := server.CreateGroup("unforgeable")
	if err != nil {
		t.Fatal(err)
	}
	attacker, _ := c.Site(2).Spawn()
	// The attacker tries to claim the server's own address as the sender;
	// the system field is stripped and replaced with the true sender.
	forged := isis.Text("spoof")
	forged.PutAddress("@sender", server.Address())
	if _, err := attacker.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, forged); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-senders:
		if got != attacker.Address() {
			t.Errorf("sender = %v, want the attacker's real address %v", got, attacker.Address())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestRevoke(t *testing.T) {
	c := cluster(t)
	server, _ := c.Site(1).Spawn()
	got := make(chan string, 10)
	server.BindEntry(isis.EntryUserBase, func(m *isis.Message) { got <- m.GetString("body", "") })
	guard := Install(server, nil)
	v, _ := server.CreateGroup("revocable")
	client, _ := c.Site(2).Spawn()
	guard.Allow(client.Address())
	_, _ = client.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, isis.Text("one"))
	select {
	case <-got:
	case <-time.After(3 * time.Second):
		t.Fatal("allowed message not delivered")
	}
	guard.Revoke(client.Address())
	_, _ = client.Cast(isis.CBCAST, []isis.Address{v.Group}, isis.EntryUserBase, isis.Text("two"))
	select {
	case m := <-got:
		t.Fatalf("revoked sender's message delivered: %q", m)
	case <-time.After(100 * time.Millisecond):
	}
}
