// Package protect implements the protection tool of Section 3.10: incoming
// messages are validated using the sender address, which the system
// guarantees cannot be forged (it is a system field set by the protocols
// process, and any client-supplied value is stripped before transmission).
// Messages from unknown or untrusted clients are presented to a
// user-specified routine that decides what to do with them.
package protect
