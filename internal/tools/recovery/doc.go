// Package recovery implements the recovery manager of Section 3.8: it
// restarts registered services after failures, and — running an algorithm in
// the spirit of [Skeen] — distinguishes the total failure of a process group
// (every member crashed; the recovering process should restart the group
// from its stable state) from a partial failure (the group is still running
// elsewhere; the recovering process should rejoin it and pick up the current
// state by transfer).
//
// A service registers a restart function and, optionally, the stable store
// holding its logs. RecoverAll is called when a site (re)starts; for each
// registered service it looks the group up in the rest of the system and
// advises Restart or Rejoin accordingly.
package recovery
