package recovery

import (
	"sort"
	"sync"

	isis "repro"
	"repro/internal/stable"
)

// Advice tells a recovering service how to come back.
type Advice int

const (
	// Restart means the whole group is down (total failure): recreate it
	// from stable storage; this process was among the last to fail.
	Restart Advice = iota + 1
	// Rejoin means the group is still operating elsewhere (partial
	// failure): join it and obtain the current state by state transfer.
	Rejoin
)

// String names the advice.
func (a Advice) String() string {
	switch a {
	case Restart:
		return "restart"
	case Rejoin:
		return "rejoin"
	default:
		return "unknown"
	}
}

// RestartFunc brings a service back at this site following the given advice.
// It receives the service's stable store (which may be nil if none was
// registered).
type RestartFunc func(advice Advice, store stable.Store) error

// registration is one service the manager is responsible for.
type registration struct {
	name    string
	store   stable.Store
	restart RestartFunc
}

// Manager is the per-site recovery manager. In the real ISIS it is one of
// the long-lived service processes at each site (Figure 1).
type Manager struct {
	site *isis.Site

	mu       sync.Mutex
	services map[string]*registration
	auto     bool
}

// NewManager creates the recovery manager for a site.
func NewManager(site *isis.Site) *Manager {
	return &Manager{site: site, services: make(map[string]*registration)}
}

// Register records that the named service (a process-group name) should be
// restarted at this site after failures. The store holds its stable state
// and may be nil.
func (m *Manager) Register(name string, store stable.Store, restart RestartFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.services[name] = &registration{name: name, store: store, restart: restart}
}

// Unregister removes a service.
func (m *Manager) Unregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.services, name)
}

// Services returns the registered service names in sorted order.
func (m *Manager) Services() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.services))
	for n := range m.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Diagnose determines whether the named service's group is currently
// operational anywhere in the system. The lookup is performed through an
// ephemeral probe process at this site.
func (m *Manager) Diagnose(name string) (Advice, error) {
	probe, err := m.site.Spawn()
	if err != nil {
		return 0, err
	}
	defer probe.Kill()
	if _, err := probe.Lookup(name); err != nil {
		// Nobody answers for the group: total failure, restart from the
		// stable state (this site considers itself among the last to fail).
		return Restart, nil
	}
	return Rejoin, nil
}

// RecoverAll runs recovery for every registered service, in name order, and
// returns the advice that was applied per service.
func (m *Manager) RecoverAll() (map[string]Advice, error) {
	result := make(map[string]Advice)
	for _, name := range m.Services() {
		m.mu.Lock()
		reg := m.services[name]
		m.mu.Unlock()
		if reg == nil {
			continue
		}
		advice, err := m.Diagnose(name)
		if err != nil {
			return result, err
		}
		result[name] = advice
		if reg.restart != nil {
			if err := reg.restart(advice, reg.store); err != nil {
				return result, err
			}
		}
	}
	return result, nil
}

// AutoRestartOnSiteRecovery arranges for RecoverAll to run automatically
// when this site observes another site recovering (which is when migrated
// services may want to move back) — the "restart processes ... if a site
// recovers" behaviour of Section 3.8. It is optional; tests drive
// RecoverAll directly.
func (m *Manager) AutoRestartOnSiteRecovery() {
	m.mu.Lock()
	if m.auto {
		m.mu.Unlock()
		return
	}
	m.auto = true
	m.mu.Unlock()
	m.site.WatchSites(func(ev isis.SiteEvent) {
		if ev.Kind == isis.SiteRecovered {
			go func() { _, _ = m.RecoverAll() }()
		}
	})
}
