package recovery

import (
	"testing"
	"time"

	isis "repro"
	"repro/internal/stable"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAdviceString(t *testing.T) {
	if Restart.String() != "restart" || Rejoin.String() != "rejoin" || Advice(9).String() != "unknown" {
		t.Error("Advice strings wrong")
	}
}

func TestDiagnoseRejoinWhenGroupAlive(t *testing.T) {
	c := cluster(t, 2)
	// The service runs at site 1.
	svc, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateGroup("inventory"); err != nil {
		t.Fatal(err)
	}
	// Site 2's recovery manager should advise Rejoin: the group is alive.
	m := NewManager(c.Site(2))
	advice, err := m.Diagnose("inventory")
	if err != nil {
		t.Fatal(err)
	}
	if advice != Rejoin {
		t.Errorf("advice = %v, want Rejoin (partial failure)", advice)
	}
}

func TestDiagnoseRestartWhenGroupGone(t *testing.T) {
	c := cluster(t, 2)
	m := NewManager(c.Site(1))
	advice, err := m.Diagnose("defunct-service")
	if err != nil {
		t.Fatal(err)
	}
	if advice != Restart {
		t.Errorf("advice = %v, want Restart (total failure)", advice)
	}
}

func TestRecoverAllRunsRestartFunctions(t *testing.T) {
	c := cluster(t, 2)
	// One live group ("alive"), one dead ("dead"): the restart functions
	// must receive the matching advice and the registered stores.
	svc, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateGroup("alive"); err != nil {
		t.Fatal(err)
	}

	m := NewManager(c.Site(2))
	aliveStore := stable.NewMem()
	deadStore := stable.NewMem()
	_ = deadStore.WriteCheckpoint([]byte("persisted"))

	got := map[string]Advice{}
	stores := map[string]stable.Store{}
	m.Register("alive", aliveStore, func(a Advice, s stable.Store) error {
		got["alive"] = a
		stores["alive"] = s
		return nil
	})
	m.Register("dead", deadStore, func(a Advice, s stable.Store) error {
		got["dead"] = a
		stores["dead"] = s
		return nil
	})
	if names := m.Services(); len(names) != 2 || names[0] != "alive" || names[1] != "dead" {
		t.Errorf("Services = %v", names)
	}

	result, err := m.RecoverAll()
	if err != nil {
		t.Fatal(err)
	}
	if result["alive"] != Rejoin || got["alive"] != Rejoin {
		t.Errorf("alive advice = %v / %v", result["alive"], got["alive"])
	}
	if result["dead"] != Restart || got["dead"] != Restart {
		t.Errorf("dead advice = %v / %v", result["dead"], got["dead"])
	}
	if stores["dead"] != deadStore {
		t.Error("restart function did not receive its stable store")
	}
	// The dead service's stable state is still intact for the restart.
	cp, _, _ := stores["dead"].Recover()
	if string(cp) != "persisted" {
		t.Errorf("checkpoint = %q", cp)
	}
}

func TestUnregister(t *testing.T) {
	c := cluster(t, 1)
	m := NewManager(c.Site(1))
	m.Register("svc", nil, func(Advice, stable.Store) error { return nil })
	m.Unregister("svc")
	if len(m.Services()) != 0 {
		t.Errorf("Services after unregister = %v", m.Services())
	}
	res, err := m.RecoverAll()
	if err != nil || len(res) != 0 {
		t.Errorf("RecoverAll = %v, %v", res, err)
	}
}

func TestEndToEndPartialRecoveryRejoinsAndTransfersState(t *testing.T) {
	c := cluster(t, 2)
	// A replicated "inventory" service with state at site 1; site 2's copy
	// fails; the recovery manager at site 2 advises Rejoin and the restart
	// function joins with a state transfer, obtaining the current state.
	primary, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := primary.CreateGroup("inventory")
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.SetStateProvider(v.Group, func() [][]byte {
		return [][]byte{[]byte("widgets=42")}
	}); err != nil {
		t.Fatal(err)
	}

	m := NewManager(c.Site(2))
	recoveredState := ""
	m.Register("inventory", nil, func(a Advice, _ stable.Store) error {
		if a != Rejoin {
			t.Errorf("advice = %v", a)
			return nil
		}
		p, err := c.Site(2).Spawn()
		if err != nil {
			return err
		}
		gid, err := p.Lookup("inventory")
		if err != nil {
			return err
		}
		done := make(chan struct{})
		if _, err := p.Join(gid, isis.JoinOptions{StateReceiver: func(b []byte, last bool) {
			if len(b) > 0 {
				recoveredState = string(b)
			}
			if last {
				close(done)
			}
		}}); err != nil {
			return err
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("state transfer timed out during recovery")
		}
		return nil
	})
	if _, err := m.RecoverAll(); err != nil {
		t.Fatal(err)
	}
	if recoveredState != "widgets=42" {
		t.Errorf("recovered state = %q", recoveredState)
	}
}
