package txn

import (
	"errors"
	"sync"

	isis "repro"
	"repro/internal/tools/sema"
)

// Errors.
var (
	ErrFinished   = errors.New("txn: transaction already committed or aborted")
	ErrLockFailed = errors.New("txn: could not acquire lock")
)

// Write is one buffered update: an opaque message applied through the given
// apply function at commit time.
type Write struct {
	Apply func() error
}

// Domain is a transactional domain: a lock-manager group plus the client
// processes that run transactions against it. Each named lock is a
// replicated semaphore (exclusive, 2-phase).
type Domain struct {
	p   *isis.Process
	gid isis.Address

	mu      sync.Mutex
	clients map[string]*sema.Client
}

// NewDomain attaches a client process to a transactional domain managed by
// the given group. The group's members must have called ServeDomain.
func NewDomain(p *isis.Process, gid isis.Address) *Domain {
	return &Domain{p: p, gid: gid, clients: make(map[string]*sema.Client)}
}

// ServeDomain attaches a group member as a lock manager for the named locks.
// Every member of the group must call it with the same lock names.
func ServeDomain(p *isis.Process, gid isis.Address, lockNames []string) []*sema.Manager {
	managers := make([]*sema.Manager, 0, len(lockNames))
	for i, name := range lockNames {
		managers = append(managers, sema.NewManager(p, gid, name, sema.Options{
			Initial: 1,
			Entry:   isis.EntryUserBase + 10 + isis.EntryID(i),
		}))
	}
	return managers
}

// lockClient returns (creating if needed) the semaphore client for a lock.
func (d *Domain) lockClient(name string, idx int) *sema.Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[name]
	if !ok {
		c = sema.NewClient(d.p, d.gid, name, isis.EntryUserBase+10+isis.EntryID(idx))
		d.clients[name] = c
	}
	return c
}

// Txn is one transaction: two-phase locking (all locks acquired before any
// is released), buffered writes applied at commit, everything released at
// commit or abort.
type Txn struct {
	domain    *Domain
	lockNames []string // the domain's lock name space, in declaration order

	mu       sync.Mutex
	held     []string
	writes   []Write
	finished bool
}

// Begin starts a transaction in the domain. lockNames is the domain's lock
// name space in the same order passed to ServeDomain (the index determines
// the lock's entry point).
func (d *Domain) Begin(lockNames []string) *Txn {
	return &Txn{domain: d, lockNames: lockNames}
}

// Lock acquires the named lock (blocking) unless the transaction already
// holds it. Locks are held until Commit or Abort (2-phase locking).
func (t *Txn) Lock(name string) error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrFinished
	}
	for _, h := range t.held {
		if h == name {
			t.mu.Unlock()
			return nil
		}
	}
	t.mu.Unlock()

	idx := t.indexOf(name)
	if idx < 0 {
		return ErrLockFailed
	}
	if err := t.domain.lockClient(name, idx).P(); err != nil {
		return err
	}
	t.mu.Lock()
	t.held = append(t.held, name)
	t.mu.Unlock()
	return nil
}

// Buffer records a write to apply at commit time.
func (t *Txn) Buffer(w Write) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return ErrFinished
	}
	t.writes = append(t.writes, w)
	return nil
}

// Commit applies the buffered writes in order and releases every lock. If a
// write fails, the remaining writes are skipped, the locks are still
// released, and the error is returned (the caller decides whether to retry;
// the paper's full nested-transaction semantics are out of scope).
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrFinished
	}
	t.finished = true
	writes := t.writes
	held := t.held
	t.mu.Unlock()

	var firstErr error
	for _, w := range writes {
		if err := w.Apply(); err != nil {
			firstErr = err
			break
		}
	}
	t.release(held)
	return firstErr
}

// Abort discards the buffered writes and releases every lock.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrFinished
	}
	t.finished = true
	held := t.held
	t.writes = nil
	t.mu.Unlock()
	t.release(held)
	return nil
}

// Held returns the names of the locks the transaction currently holds.
func (t *Txn) Held() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.held...)
}

func (t *Txn) release(held []string) {
	for _, name := range held {
		idx := t.indexOf(name)
		if idx < 0 {
			continue
		}
		_ = t.domain.lockClient(name, idx).V()
	}
}

func (t *Txn) indexOf(name string) int {
	for i, n := range t.lockNames {
		if n == name {
			return i
		}
	}
	return -1
}
