package txn

import (
	"sync"
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

var lockNames = []string{"accounts", "audit"}

// buildDomain creates a lock-manager group with n members and returns a
// client-side domain bound to a separate process.
func buildDomain(t *testing.T, c *isis.Cluster, n int) (*Domain, isis.Address) {
	t.Helper()
	var gid isis.Address
	for i := 0; i < n; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			v, err := p.CreateGroup("txn-domain")
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("txn-domain", isis.JoinOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		ServeDomain(p, gid, lockNames)
	}
	client, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Lookup("txn-domain"); err != nil {
		t.Fatal(err)
	}
	return NewDomain(client, gid), gid
}

func TestCommitAppliesBufferedWrites(t *testing.T) {
	c := cluster(t, 2)
	d, _ := buildDomain(t, c, 2)

	balance := 100
	tx := d.Begin(lockNames)
	if err := tx.Lock("accounts"); err != nil {
		t.Fatal(err)
	}
	if got := tx.Held(); len(got) != 1 || got[0] != "accounts" {
		t.Errorf("Held = %v", got)
	}
	_ = tx.Buffer(Write{Apply: func() error { balance -= 30; return nil }})
	_ = tx.Buffer(Write{Apply: func() error { balance += 10; return nil }})
	if balance != 100 {
		t.Error("writes applied before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if balance != 80 {
		t.Errorf("balance = %d, want 80", balance)
	}
	if err := tx.Commit(); err != ErrFinished {
		t.Errorf("double commit err = %v", err)
	}
}

func TestAbortDiscardsWritesAndReleasesLocks(t *testing.T) {
	c := cluster(t, 1)
	d, _ := buildDomain(t, c, 1)

	value := 1
	tx := d.Begin(lockNames)
	if err := tx.Lock("accounts"); err != nil {
		t.Fatal(err)
	}
	_ = tx.Buffer(Write{Apply: func() error { value = 2; return nil }})
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if value != 1 {
		t.Error("aborted write was applied")
	}
	// The lock must be free again: a second transaction can acquire it
	// immediately.
	tx2 := d.Begin(lockNames)
	done := make(chan error, 1)
	go func() { done <- tx2.Lock("accounts") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lock not released by abort")
	}
	_ = tx2.Abort()
	if err := tx.Lock("accounts"); err != ErrFinished {
		t.Errorf("lock after abort err = %v", err)
	}
}

func TestTwoPhaseLockingSerializesConflictingTransactions(t *testing.T) {
	c := cluster(t, 2)
	d, _ := buildDomain(t, c, 2)

	// Two transactions increment a shared counter under the same lock; the
	// final value must reflect both (no lost update).
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := d.Begin(lockNames)
			if err := tx.Lock("accounts"); err != nil {
				t.Errorf("lock: %v", err)
				return
			}
			snapshot := counter
			time.Sleep(10 * time.Millisecond)
			_ = tx.Buffer(Write{Apply: func() error { counter = snapshot + 1; return nil }})
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
		}()
	}
	wg.Wait()
	if counter != 2 {
		t.Errorf("counter = %d, want 2 (lost update)", counter)
	}
}

func TestLockIdempotentWithinTransaction(t *testing.T) {
	c := cluster(t, 1)
	d, _ := buildDomain(t, c, 1)
	tx := d.Begin(lockNames)
	if err := tx.Lock("audit"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock("audit"); err != nil {
		t.Fatalf("re-locking a held lock failed: %v", err)
	}
	if len(tx.Held()) != 1 {
		t.Errorf("Held = %v", tx.Held())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownLockName(t *testing.T) {
	c := cluster(t, 1)
	d, _ := buildDomain(t, c, 1)
	tx := d.Begin(lockNames)
	if err := tx.Lock("not-a-lock"); err != ErrLockFailed {
		t.Errorf("err = %v, want ErrLockFailed", err)
	}
	_ = tx.Abort()
}

func TestBufferAfterFinish(t *testing.T) {
	c := cluster(t, 1)
	d, _ := buildDomain(t, c, 1)
	tx := d.Begin(lockNames)
	_ = tx.Abort()
	if err := tx.Buffer(Write{Apply: func() error { return nil }}); err != ErrFinished {
		t.Errorf("err = %v, want ErrFinished", err)
	}
	if err := tx.Abort(); err != ErrFinished {
		t.Errorf("double abort err = %v", err)
	}
}
