// Package txn implements the transactional facility sketched in Section
// 3.11: a simple subroutine interface providing begin, commit, and abort,
// with two-phase read/write locks and transactional access to replicated
// data. The paper positions transactions as the right mechanism for
// short-lived access to shared data, to be layered on top of the virtual
// synchrony toolkit rather than underneath it — which is exactly how this
// package is built: locks are granted by a lock-manager group whose requests
// travel by ABCAST (so every manager sees the same queue), and writes are
// buffered locally and applied through the replicated data tool's update
// path at commit.
package txn
