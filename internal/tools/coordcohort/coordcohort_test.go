package coordcohort

import (
	"sync"
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// service builds a group whose members all answer requests through the
// coordinator–cohort tool; the action records which member executed it.
type service struct {
	members []*isis.Process
	tools   []*Tool
	gid     isis.Address

	mu       sync.Mutex
	executed []int // indices of members that ran the action
}

func newService(t *testing.T, c *isis.Cluster, n int) *service {
	t.Helper()
	s := &service{}
	for i := 0; i < n; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		s.members = append(s.members, p)
	}
	v, err := s.members[0].CreateGroup("cc-service")
	if err != nil {
		t.Fatal(err)
	}
	s.gid = v.Group
	for i := 1; i < n; i++ {
		if _, err := s.members[i].Join(s.gid, isis.JoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range s.members {
		i, p := i, p
		tool := New(p, s.gid)
		s.tools = append(s.tools, tool)
		p.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
			plist := s.plist()
			tool.Handle(m, plist, func(req *isis.Message) *isis.Message {
				s.mu.Lock()
				s.executed = append(s.executed, i)
				s.mu.Unlock()
				return isis.NewMessage().PutString("body", "done-by-"+itoa(i))
			}, nil)
		})
	}
	wait(t, "service membership", 5*time.Second, func() bool {
		v, ok := s.members[0].CurrentView(s.gid)
		return ok && v.Size() == n
	})
	return s
}

func (s *service) plist() []isis.Address {
	out := make([]isis.Address, len(s.members))
	for i, p := range s.members {
		out[i] = p.Address()
	}
	return out
}

func (s *service) executions() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.executed...)
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestChoosePrefersCallerSite(t *testing.T) {
	view := isis.View{
		Members: []isis.Address{
			procAt(1, 1), procAt(2, 2), procAt(3, 3),
		},
	}
	plist := view.Members
	caller := procAt(2, 99)
	if got := Choose(caller, view, plist); got != procAt(2, 2) {
		t.Errorf("Choose = %v, want the participant at the caller's site", got)
	}
	// Caller at a site with no participant: deterministic circular pick.
	caller = procAt(7, 1)
	first := Choose(caller, view, plist)
	if first != Choose(caller, view, plist) {
		t.Error("Choose is not deterministic")
	}
	if !view.Contains(first) {
		t.Error("Choose picked a non-participant")
	}
	// Participants that are not in the view (failed) are skipped.
	small := isis.View{Members: []isis.Address{procAt(3, 3)}}
	if got := Choose(caller, small, plist); got != procAt(3, 3) {
		t.Errorf("Choose with failures = %v", got)
	}
	if got := Choose(caller, isis.View{}, plist); !got.IsNil() {
		t.Errorf("Choose with no operational participants = %v", got)
	}
}

func procAt(site isis.SiteID, id uint32) isis.Address {
	return isis.Address{Site: site, Kind: 1, LocalID: id} // Kind 1 = process
}

func TestExactlyOneMemberExecutes(t *testing.T) {
	c := cluster(t, 3)
	s := newService(t, c, 3)
	client, err := c.Site(2).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := client.Query(isis.CBCAST, []isis.Address{s.gid}, isis.EntryUserBase, isis.Text("work"))
	if err != nil {
		t.Fatal(err)
	}
	if reply.GetString("body", "") == "" {
		t.Error("empty reply from the coordinator")
	}
	// Let any stray executions surface, then check exactly one member ran
	// the action — and that it is the member at the caller's site (site 2,
	// member index 1), the latency-minimising choice of Section 6.
	time.Sleep(100 * time.Millisecond)
	ex := s.executions()
	if len(ex) != 1 {
		t.Fatalf("action executed %d times: %v", len(ex), ex)
	}
	if ex[0] != 1 {
		t.Errorf("coordinator was member %d, want the caller-site member 1", ex[0])
	}
}

func TestCohortTakesOverAfterCoordinatorFailure(t *testing.T) {
	c := cluster(t, 3)
	s := newService(t, c, 3)

	// Override member 1 (the one the client's site selects) with an action
	// that crashes before replying: the cohorts must detect the failure and
	// one of them must take over and reply.
	var killOnce sync.Once
	crashy := s.members[1]
	crashyTool := s.tools[1]
	crashy.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		plist := s.plist()
		crashyTool.Handle(m, plist, func(req *isis.Message) *isis.Message {
			killOnce.Do(func() {
				_ = crashy.Kill() // crash before the reply is sent
			})
			// The reply below is lost because the process is dead.
			return isis.Text("never-sent")
		}, nil)
	})

	client, err := c.Site(2).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := client.Query(isis.CBCAST, []isis.Address{s.gid}, isis.EntryUserBase, isis.Text("resilient-work"))
	if err != nil {
		t.Fatalf("query failed despite cohorts: %v", err)
	}
	body := reply.GetString("body", "")
	if body != "done-by-0" && body != "done-by-2" {
		t.Errorf("takeover reply = %q, want a cohort's reply", body)
	}
	// A surviving cohort executed the action.
	wait(t, "cohort execution", 3*time.Second, func() bool {
		for _, e := range s.executions() {
			if e == 0 || e == 2 {
				return true
			}
		}
		return false
	})
}

func TestNonParticipantsSendNullReplies(t *testing.T) {
	c := cluster(t, 2)
	s := newService(t, c, 2)
	// Rebind member 1 so only member 0 is in the participant list; member 1
	// must send a null reply and the caller must still get exactly one
	// normal reply when asking for ALL.
	p1 := s.members[1]
	tool1 := s.tools[1]
	only0 := []isis.Address{s.members[0].Address()}
	p1.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		tool1.Handle(m, only0, func(*isis.Message) *isis.Message { return isis.Text("wrong") }, nil)
	})
	p0 := s.members[0]
	tool0 := s.tools[0]
	p0.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
		tool0.Handle(m, only0, func(*isis.Message) *isis.Message { return isis.Text("right") }, nil)
	})

	client, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	replies, err := client.Cast(isis.CBCAST, []isis.Address{s.gid}, isis.EntryUserBase, isis.Text("q"), isis.Replies(isis.All))
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0].GetString("body", "") != "right" {
		t.Errorf("replies = %v", replies)
	}
}

func TestCohortsLearnOfCompletion(t *testing.T) {
	c := cluster(t, 2)
	s := newService(t, c, 2)
	var mu sync.Mutex
	gotReplyAt := 0

	// Rebind both members with a gotReply callback that records cohort
	// notification.
	for i, p := range s.members {
		i, p := i, p
		tool := s.tools[i]
		p.BindEntry(isis.EntryUserBase, func(m *isis.Message) {
			tool.Handle(m, s.plist(), func(*isis.Message) *isis.Message {
				return isis.Text("answer")
			}, func(reply *isis.Message) {
				mu.Lock()
				gotReplyAt++
				mu.Unlock()
			})
		})
	}
	client, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(isis.CBCAST, []isis.Address{s.gid}, isis.EntryUserBase, isis.Text("q")); err != nil {
		t.Fatal(err)
	}
	wait(t, "cohort notification", 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotReplyAt >= 1
	})
}
