// Package coordcohort implements the coordinator–cohort tool of Sections
// 3.3 and 6 of the paper. A group of processes uses it to respond to a
// request sent to the group: one member (the coordinator) performs the
// action and replies to the caller, while the others (the cohorts) monitor
// its progress and take over, one by one, if it fails. Because every
// participant picks the coordinator from the same ranked view with the same
// deterministic rule, no extra agreement messages are needed.
package coordcohort
