package coordcohort

import (
	"sync"

	isis "repro"
)

// Action computes the reply to a request. It runs in the coordinator only
// (and again in a cohort that takes over after a failure).
type Action func(req *isis.Message) *isis.Message

// GotReply is invoked in a cohort when the coordinator's reply has been
// observed; it receives a copy of the reply.
type GotReply func(reply *isis.Message)

// Tool is the per-process coordinator–cohort machinery. Create one per
// (process, group) pair with New; every member of the group must create its
// own Tool and call Handle for every request the group receives.
type Tool struct {
	p   *isis.Process
	gid isis.Address

	mu      sync.Mutex
	watches map[int64]*watch // keyed by the request's session id
	// completed remembers recently observed reply copies whose request had
	// not yet been handled locally (the copy can overtake the request when
	// they travel to this site over different paths); bounded FIFO.
	completed      map[int64]*isis.Message
	completedOrder []int64
}

const completedLimit = 256

// watch is a cohort-side record of one computation being monitored.
type watch struct {
	req      *isis.Message
	plist    []isis.Address
	action   Action
	gotReply GotReply
	done     bool
}

// New creates the tool for one group member. It binds the generic
// GENERIC_CC_REPLY entry point and monitors the group so cohorts learn about
// coordinator failures.
func New(p *isis.Process, gid isis.Address) *Tool {
	t := &Tool{p: p, gid: gid, watches: make(map[int64]*watch), completed: make(map[int64]*isis.Message)}
	p.BindEntry(isis.EntryGenericCCRply, t.onReplyCopy)
	p.Monitor(gid, t.onViewChange)
	return t
}

// Handle is called by every group member that received the request msg. The
// participant list plist names the members able to perform this action (in
// the same order at every member); action computes the result; gotReply is
// invoked in cohorts when the coordinator's reply is observed. Members not
// in plist send a null reply so the caller never waits for them.
func (t *Tool) Handle(req *isis.Message, plist []isis.Address, action Action, gotReply GotReply) {
	view, ok := t.p.CurrentView(t.gid)
	if !ok {
		return
	}
	me := t.p.Address()
	if !contains(plist, me) {
		_ = t.p.NullReply(req)
		return
	}
	coord := Choose(req.Sender(), view, plist)
	if coord == me.Base() {
		// Coordinator: perform the action synchronously and send the reply
		// (with copies to the cohorts so they stop monitoring).
		result := action(req)
		t.sendResult(req, result, plist)
		return
	}
	// Cohort: remember the computation and wait for the reply copy or a
	// coordinator failure. If the reply copy already arrived (it can
	// overtake the request), complete immediately.
	session := req.Session()
	t.mu.Lock()
	if reply, ok := t.completed[session]; ok {
		delete(t.completed, session)
		t.mu.Unlock()
		if gotReply != nil {
			gotReply(reply)
		}
		return
	}
	t.watches[session] = &watch{req: req, plist: plist, action: action, gotReply: gotReply}
	t.mu.Unlock()
}

// sendResult replies to the caller and copies the reply to the cohorts.
func (t *Tool) sendResult(req *isis.Message, result *isis.Message, plist []isis.Address) {
	if result == nil {
		result = isis.NewMessage()
	}
	cohorts := make([]isis.Address, 0, len(plist)-1)
	for _, a := range plist {
		if a.Base() != t.p.Address().Base() {
			cohorts = append(cohorts, a)
		}
	}
	result = result.Clone()
	result.PutInt("cc-session", req.Session())
	_ = t.p.ReplyWithCopies(req, result, cohorts, isis.EntryGenericCCRply)
}

// onReplyCopy runs in a cohort when the coordinator's reply copy arrives: the
// computation succeeded, so the monitor is deactivated and gotReply invoked.
func (t *Tool) onReplyCopy(m *isis.Message) {
	session := m.GetInt("cc-session", m.GetInt("cc-origin-session", 0))
	t.mu.Lock()
	w, ok := t.watches[session]
	if ok {
		delete(t.watches, session)
	} else {
		// The copy overtook the request: remember it so Handle can complete
		// the computation the moment the request arrives.
		if _, dup := t.completed[session]; !dup {
			t.completed[session] = m
			t.completedOrder = append(t.completedOrder, session)
			if len(t.completedOrder) > completedLimit {
				old := t.completedOrder[0]
				t.completedOrder = t.completedOrder[1:]
				delete(t.completed, old)
			}
		}
	}
	t.mu.Unlock()
	if ok && !w.done && w.gotReply != nil {
		w.gotReply(m)
	}
}

// onViewChange runs on every membership change: if the coordinator of a
// monitored computation has failed before its reply was observed, the
// cohorts re-run the selection rule on the surviving participants; the one
// now chosen performs the action and replies (taking over the computation).
func (t *Tool) onViewChange(view isis.View) {
	type takeover struct {
		w *watch
	}
	var mine []takeover
	t.mu.Lock()
	for session, w := range t.watches {
		survivors := make([]isis.Address, 0, len(w.plist))
		for _, a := range w.plist {
			if view.Contains(a) {
				survivors = append(survivors, a)
			}
		}
		if len(survivors) == 0 {
			delete(t.watches, session)
			continue
		}
		coord := Choose(w.req.Sender(), view, survivors)
		if coord == t.p.Address().Base() {
			delete(t.watches, session)
			mine = append(mine, takeover{w})
		} else {
			w.plist = survivors
		}
	}
	t.mu.Unlock()

	for _, tk := range mine {
		result := tk.w.action(tk.w.req)
		t.sendResult(tk.w.req, result, tk.w.plist)
	}
}

// Choose applies the paper's deterministic coordinator-selection rule
// (Section 6): prefer an operational participant at the caller's site (to
// minimise latency); otherwise use the caller's site id as a pseudo-random
// index into the participant list and take the first operational process in
// a circular scan. Because all members evaluate it on the same view and the
// same participant list, they agree without communicating.
func Choose(caller isis.Address, view isis.View, plist []isis.Address) isis.Address {
	operational := make([]isis.Address, 0, len(plist))
	for _, a := range plist {
		if view.Contains(a) {
			operational = append(operational, a.Base())
		}
	}
	if len(operational) == 0 {
		return isis.Address{}
	}
	for _, a := range operational {
		if a.Site == caller.Site {
			return a
		}
	}
	start := int(caller.Site) % len(operational)
	return operational[start]
}

func contains(list []isis.Address, a isis.Address) bool {
	for _, x := range list {
		if x.Base() == a.Base() {
			return true
		}
	}
	return false
}
