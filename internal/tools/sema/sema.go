package sema

import (
	"sync"

	isis "repro"
)

const (
	fOp   = "sem-op"
	fName = "sem-name"
	opP   = "P"
	opV   = "V"
)

// Manager is one group member's replica of the semaphore state. All members
// of the managing group must create a Manager with the same name and
// initial count.
type Manager struct {
	p     *isis.Process
	gid   isis.Address
	name  string
	entry isis.EntryID

	mu      sync.Mutex
	count   int
	waiting []waiter // FIFO queue of blocked P requests
	holders map[isis.Address]*holding
}

// holding records how many units a process holds and whether it was a group
// member when granted (only member holders can be observed to fail, so only
// their units are auto-released on a failure view).
type holding struct {
	units  int
	member bool
}

type waiter struct {
	req    *isis.Message
	holder isis.Address
	member bool // the requester was a group member when it queued
}

// Options configures a semaphore manager.
type Options struct {
	// Initial is the initial semaphore count (default 1: a mutex).
	Initial int
	// Entry is the entry point used for the semaphore's traffic; defaults
	// to EntryUserBase+2.
	Entry isis.EntryID
}

// NewManager attaches a group member as a manager of the named semaphore.
func NewManager(p *isis.Process, gid isis.Address, name string, opts Options) *Manager {
	if opts.Initial == 0 {
		opts.Initial = 1
	}
	if opts.Entry == 0 {
		opts.Entry = isis.EntryUserBase + 2
	}
	m := &Manager{
		p:       p,
		gid:     gid,
		name:    name,
		entry:   opts.Entry,
		count:   opts.Initial,
		holders: make(map[isis.Address]*holding),
	}
	p.BindEntry(opts.Entry, m.onRequest)
	p.Monitor(gid, m.onViewChange)
	return m
}

// onRequest applies one P or V operation; because requests arrive by ABCAST
// every manager applies them in the same order and reaches the same state.
func (m *Manager) onRequest(req *isis.Message) {
	if req.GetString(fName, "") != m.name {
		return
	}
	switch req.GetString(fOp, "") {
	case opP:
		m.handleP(req)
	case opV:
		m.handleV(req)
	}
}

func (m *Manager) handleP(req *isis.Message) {
	holder := req.Sender()
	m.mu.Lock()
	grant := false
	if m.count > 0 {
		m.count--
		m.grantToLocked(holder.Base())
		grant = true
	} else {
		member := false
		if v, ok := m.p.CurrentView(m.gid); ok {
			member = v.Contains(holder)
		}
		m.waiting = append(m.waiting, waiter{req: req, holder: holder.Base(), member: member})
	}
	iAmGranter := m.iAmGranterLocked()
	m.mu.Unlock()

	if grant {
		if iAmGranter {
			_ = m.p.Reply(req, isis.NewMessage().PutString("sem-grant", m.name))
		} else {
			_ = m.p.NullReply(req)
		}
	}
	// Blocked requests are answered later, when a V (or a failure) releases
	// the semaphore; managers other than the granter stay silent so the
	// requester keeps exactly one pending reply slot.
}

func (m *Manager) handleV(req *isis.Message) {
	m.mu.Lock()
	holder := req.Sender().Base()
	if h, ok := m.holders[holder]; ok {
		h.units--
		if h.units <= 0 {
			delete(m.holders, holder)
		}
	}
	grants := m.releaseLocked(1)
	iAmGranter := m.iAmGranterLocked()
	m.mu.Unlock()
	m.sendGrants(grants, iAmGranter)
}

// grantToLocked records one unit held by the given process.
func (m *Manager) grantToLocked(holder isis.Address) {
	h, ok := m.holders[holder]
	if !ok {
		member := false
		if v, okv := m.p.CurrentView(m.gid); okv {
			member = v.Contains(holder)
		}
		h = &holding{member: member}
		m.holders[holder] = h
	}
	h.units++
}

// releaseLocked returns the waiters granted by releasing n units.
func (m *Manager) releaseLocked(n int) []waiter {
	m.count += n
	var grants []waiter
	for m.count > 0 && len(m.waiting) > 0 {
		w := m.waiting[0]
		m.waiting = m.waiting[1:]
		m.count--
		m.grantToLocked(w.holder)
		grants = append(grants, w)
	}
	return grants
}

// iAmGranterLocked reports whether this manager is the one that sends grant
// replies: the oldest member of the current view. Every manager computes the
// same answer from the same view.
func (m *Manager) iAmGranterLocked() bool {
	v, ok := m.p.CurrentView(m.gid)
	if !ok {
		return false
	}
	return v.Coordinator().Base() == m.p.Address().Base()
}

func (m *Manager) sendGrants(grants []waiter, iAmGranter bool) {
	for _, w := range grants {
		if iAmGranter {
			_ = m.p.Reply(w.req, isis.NewMessage().PutString("sem-grant", m.name))
		} else {
			_ = m.p.NullReply(w.req)
		}
	}
}

// onViewChange implements the automatic release of Section 3.5: when a
// holder that was a group member disappears from the view (it failed or
// left), its units are released and the next waiters are granted. Holders
// that were never members are external clients whose failure the group
// cannot observe, so their units are untouched.
func (m *Manager) onViewChange(v isis.View) {
	m.mu.Lock()
	released := 0
	for holder, h := range m.holders {
		if h.member && !v.Contains(holder) {
			released += h.units
			delete(m.holders, holder)
		}
	}
	// Drop queued requests from departed members too, so a grant is never
	// sent to a dead process. Requests from external clients stay queued
	// (their failure is not observable through this group's views).
	kept := m.waiting[:0]
	for _, w := range m.waiting {
		if !w.member || v.Contains(w.holder) {
			kept = append(kept, w)
		}
	}
	m.waiting = kept
	var grants []waiter
	if released > 0 {
		grants = m.releaseLocked(released)
	}
	iAmGranter := v.Coordinator().Base() == m.p.Address().Base()
	m.mu.Unlock()
	m.sendGrants(grants, iAmGranter)
}

// Count returns the current semaphore count (for tests and monitoring).
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// QueueLength returns the number of blocked P requests.
func (m *Manager) QueueLength() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiting)
}

// ---------------------------------------------------------------------------
// Client side

// Client acquires and releases a semaphore managed by a group.
type Client struct {
	p     *isis.Process
	gid   isis.Address
	name  string
	entry isis.EntryID
}

// NewClient builds a client handle; entry must match the managers' Options.
func NewClient(p *isis.Process, gid isis.Address, name string, entry isis.EntryID) *Client {
	if entry == 0 {
		entry = isis.EntryUserBase + 2
	}
	return &Client{p: p, gid: gid, name: name, entry: entry}
}

// P acquires one unit, blocking until it is granted (the grant arrives as
// the reply to the ABCAST request).
func (c *Client) P() error {
	m := isis.NewMessage().PutString(fOp, opP).PutString(fName, c.name)
	_, err := c.p.Query(isis.ABCAST, []isis.Address{c.gid}, c.entry, m)
	return err
}

// V releases one unit (one ABCAST so every manager applies it in the same
// order relative to P requests).
func (c *Client) V() error {
	m := isis.NewMessage().PutString(fOp, opV).PutString(fName, c.name)
	_, err := c.p.Cast(isis.ABCAST, []isis.Address{c.gid}, c.entry, m)
	return err
}
