package sema

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// buildSemaphore creates n manager members plus the given initial count.
func buildSemaphore(t *testing.T, c *isis.Cluster, n, initial int) ([]*isis.Process, []*Manager, isis.Address) {
	t.Helper()
	procs := make([]*isis.Process, n)
	mgrs := make([]*Manager, n)
	var gid isis.Address
	for i := 0; i < n; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		if i == 0 {
			v, err := p.CreateGroup("mutex-svc")
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("mutex-svc", isis.JoinOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		mgrs[i] = NewManager(p, gid, "lock", Options{Initial: initial})
	}
	wait(t, "semaphore membership", 5*time.Second, func() bool {
		v, ok := procs[0].CurrentView(gid)
		return ok && v.Size() == n
	})
	return procs, mgrs, gid
}

func TestPAndVBasic(t *testing.T) {
	c := cluster(t, 3)
	_, mgrs, gid := buildSemaphore(t, c, 2, 1)
	client, err := c.Site(3).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(client, gid, "lock", 0)
	if err := cl.P(); err != nil {
		t.Fatalf("P: %v", err)
	}
	wait(t, "count to drop", 2*time.Second, func() bool {
		return mgrs[0].Count() == 0 && mgrs[1].Count() == 0
	})
	if err := cl.V(); err != nil {
		t.Fatalf("V: %v", err)
	}
	wait(t, "count to recover", 2*time.Second, func() bool {
		return mgrs[0].Count() == 1 && mgrs[1].Count() == 1
	})
}

func TestMutualExclusion(t *testing.T) {
	c := cluster(t, 3)
	_, _, gid := buildSemaphore(t, c, 2, 1)

	// Three clients hammer a critical section guarded by the replicated
	// mutex; at most one may be inside at a time.
	var inside atomic.Int32
	var maxInside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p, err := c.Site(3).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(p, gid, "lock", 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if err := cl.P(); err != nil {
					t.Errorf("P: %v", err)
					return
				}
				n := inside.Add(1)
				if n > 1 {
					violations.Add(1)
				}
				if n > maxInside.Load() {
					maxInside.Store(n)
				}
				time.Sleep(2 * time.Millisecond)
				inside.Add(-1)
				if err := cl.V(); err != nil {
					t.Errorf("V: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if violations.Load() > 0 {
		t.Errorf("mutual exclusion violated %d times (max inside %d)", violations.Load(), maxInside.Load())
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	c := cluster(t, 2)
	procs, mgrs, gid := buildSemaphore(t, c, 1, 1)
	_ = procs

	// The holder takes the lock; two more requests queue. When released,
	// grants go out in request (FIFO) order.
	holderProc, _ := c.Site(2).Spawn()
	holder := NewClient(holderProc, gid, "lock", 0)
	if err := holder.P(); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		p, _ := c.Site(2).Spawn()
		cl := NewClient(p, gid, "lock", 0)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := cl.P(); err != nil {
				t.Errorf("queued P: %v", err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			_ = cl.V()
		}(i)
		// Space the requests out so their ABCAST order is deterministic.
		wait(t, "request to queue", 3*time.Second, func() bool {
			return mgrs[0].QueueLength() == i+1
		})
	}
	if err := holder.V(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("grant order = %v, want FIFO", order)
	}
}

func TestAutomaticReleaseOnHolderFailure(t *testing.T) {
	c := cluster(t, 3)
	procs, mgrs, gid := buildSemaphore(t, c, 2, 1)

	// A member of the managing group acquires the lock and then fails; the
	// semaphore must be released automatically so a waiting client gets it.
	holder := NewClient(procs[1], gid, "lock", 0)
	if err := holder.P(); err != nil {
		t.Fatal(err)
	}
	waiterProc, _ := c.Site(3).Spawn()
	waiter := NewClient(waiterProc, gid, "lock", 0)
	acquired := make(chan error, 1)
	go func() { acquired <- waiter.P() }()
	wait(t, "waiter to queue", 3*time.Second, func() bool { return mgrs[0].QueueLength() == 1 })

	if err := procs[1].Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter P after holder failure: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("semaphore was not released when its holder failed")
	}
}

func TestCountingSemaphore(t *testing.T) {
	c := cluster(t, 2)
	_, mgrs, gid := buildSemaphore(t, c, 1, 2)
	a, _ := c.Site(2).Spawn()
	b, _ := c.Site(2).Spawn()
	ca := NewClient(a, gid, "lock", 0)
	cb := NewClient(b, gid, "lock", 0)
	if err := ca.P(); err != nil {
		t.Fatal(err)
	}
	if err := cb.P(); err != nil {
		t.Fatal(err)
	}
	if mgrs[0].Count() != 0 {
		t.Errorf("count = %d after two acquisitions of a 2-semaphore", mgrs[0].Count())
	}
	_ = ca.V()
	_ = cb.V()
	wait(t, "count restored", 2*time.Second, func() bool { return mgrs[0].Count() == 2 })
}
