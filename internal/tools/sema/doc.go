// Package sema implements the replicated semaphore tool of Section 3.5: a
// fault-tolerant semaphore managed by the members of a process group, with
// fair (FIFO) request queueing. If the holder of the semaphore fails, the
// semaphore is automatically released (when the group observes the failure
// view) so the system never deadlocks on a dead process.
//
// Requests are ordered with ABCAST, so every manager sees the same queue and
// the decision of who to grant next needs no extra communication: the oldest
// manager sends the grant reply (Table 1: P is "1 ABCAST, all replies"-ish —
// here one ABCAST plus one reply; V is one asynchronous CBCAST).
package sema
