package news

import (
	"sort"
	"sync"

	isis "repro"
)

// GroupName is the symbolic name under which the news service registers.
const GroupName = "isis:news"

const (
	fOp      = "news-op"
	fSubject = "news-subject"
	opSub    = "subscribe"
	opUnsub  = "unsubscribe"
	opPost   = "post"
	opFeed   = "feed"
)

// Server is one member of the news service group.
type Server struct {
	p   *isis.Process
	gid isis.Address

	mu   sync.Mutex
	subs map[string][]isis.Address // subject -> subscribers (sorted, deduped)
}

// StartServer creates (or joins) the news service group with the given
// process as a server.
func StartServer(p *isis.Process) (*Server, error) {
	s := &Server{p: p, subs: make(map[string][]isis.Address)}
	p.BindEntry(isis.EntryNews, s.onMessage)
	if gid, err := p.Lookup(GroupName); err == nil {
		if _, err := p.Join(gid, isis.JoinOptions{}); err != nil {
			return nil, err
		}
		s.gid = gid
	} else {
		v, err := p.CreateGroup(GroupName)
		if err != nil {
			return nil, err
		}
		s.gid = v.Group
	}
	return s, nil
}

// Group returns the news service's group address.
func (s *Server) Group() isis.Address { return s.gid }

// Subjects returns the subjects with at least one subscriber (for tests and
// monitoring).
func (s *Server) Subjects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.subs))
	for subj := range s.subs {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// onMessage applies subscription changes and postings. All servers see them
// in the same (ABCAST) order, so their subscriber tables stay identical and
// the forwarding decision below needs no coordination.
func (s *Server) onMessage(m *isis.Message) {
	subject := m.GetString(fSubject, "")
	switch m.GetString(fOp, "") {
	case opSub:
		s.addSubscriber(subject, m.Sender())
	case opUnsub:
		s.removeSubscriber(subject, m.Sender())
	case opPost:
		s.forward(subject, m)
	}
}

func (s *Server) addSubscriber(subject string, who isis.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.subs[subject] {
		if a == who.Base() {
			return
		}
	}
	s.subs[subject] = append(s.subs[subject], who.Base())
	sort.Slice(s.subs[subject], func(i, j int) bool { return s.subs[subject][i].Less(s.subs[subject][j]) })
}

func (s *Server) removeSubscriber(subject string, who isis.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.subs[subject]
	out := list[:0]
	for _, a := range list {
		if a != who.Base() {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		delete(s.subs, subject)
	} else {
		s.subs[subject] = out
	}
}

// forward delivers a posting to the local responsibility share of the
// subscribers: the server whose rank equals (index of subscriber) mod
// (number of servers) forwards to that subscriber. Every server computes
// the same assignment from the same view and subscriber table.
func (s *Server) forward(subject string, post *isis.Message) {
	view, ok := s.p.CurrentView(s.gid)
	if !ok || view.Size() == 0 {
		return
	}
	myRank := view.RankOf(s.p.Address())
	if myRank < 0 {
		return
	}
	s.mu.Lock()
	subscribers := append([]isis.Address(nil), s.subs[subject]...)
	s.mu.Unlock()

	feed := isis.NewMessage()
	feed.PutString(fOp, opFeed)
	feed.PutString(fSubject, subject)
	feed.PutString("body", post.GetString("body", ""))
	if b := post.GetBytes("data"); b != nil {
		feed.PutBytes("data", b)
	}
	feed.PutAddress("news-poster", post.Sender())

	var mine []isis.Address
	for i, sub := range subscribers {
		if i%view.Size() == myRank {
			mine = append(mine, sub)
		}
	}
	if len(mine) == 0 {
		return
	}
	_, _ = s.p.Cast(isis.CBCAST, mine, isis.EntryNews, feed)
}

// ---------------------------------------------------------------------------
// Client side

// Posting is one delivered news item.
type Posting struct {
	Subject string
	Body    string
	Data    []byte
	Poster  isis.Address
}

// Client subscribes to subjects and posts news.
type Client struct {
	p   *isis.Process
	gid isis.Address

	mu       sync.Mutex
	handlers map[string][]func(Posting)
}

// NewClient attaches a process to the news service (which must already have
// at least one server).
func NewClient(p *isis.Process) (*Client, error) {
	gid, err := p.Lookup(GroupName)
	if err != nil {
		return nil, err
	}
	c := &Client{p: p, gid: gid, handlers: make(map[string][]func(Posting))}
	p.BindEntry(isis.EntryNews, c.onFeed)
	return c, nil
}

// Subscribe enrolls the process for a subject; the handler runs for every
// posting on it, in posting order.
func (c *Client) Subscribe(subject string, handler func(Posting)) error {
	c.mu.Lock()
	c.handlers[subject] = append(c.handlers[subject], handler)
	c.mu.Unlock()
	m := isis.NewMessage().PutString(fOp, opSub).PutString(fSubject, subject)
	_, err := c.p.Cast(isis.ABCAST, []isis.Address{c.gid}, isis.EntryNews, m)
	return err
}

// Unsubscribe cancels the enrollment for a subject.
func (c *Client) Unsubscribe(subject string) error {
	c.mu.Lock()
	delete(c.handlers, subject)
	c.mu.Unlock()
	m := isis.NewMessage().PutString(fOp, opUnsub).PutString(fSubject, subject)
	_, err := c.p.Cast(isis.ABCAST, []isis.Address{c.gid}, isis.EntryNews, m)
	return err
}

// Post publishes a news item on a subject (one asynchronous multicast to the
// service, Table 1).
func (c *Client) Post(subject, body string, data []byte) error {
	m := isis.NewMessage().PutString(fOp, opPost).PutString(fSubject, subject).PutString("body", body)
	if data != nil {
		m.PutBytes("data", data)
	}
	_, err := c.p.Cast(isis.ABCAST, []isis.Address{c.gid}, isis.EntryNews, m)
	return err
}

// onFeed dispatches a forwarded posting to the local handlers.
func (c *Client) onFeed(m *isis.Message) {
	if m.GetString(fOp, "") != opFeed {
		return
	}
	p := Posting{
		Subject: m.GetString(fSubject, ""),
		Body:    m.GetString("body", ""),
		Data:    m.GetBytes("data"),
		Poster:  m.GetAddress("news-poster"),
	}
	c.mu.Lock()
	handlers := make([]func(Posting), len(c.handlers[p.Subject]))
	copy(handlers, c.handlers[p.Subject])
	c.mu.Unlock()
	for _, h := range handlers {
		h(p)
	}
}
