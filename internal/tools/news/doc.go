// Package news implements the news service of Section 3.9: processes enroll
// in a system-wide facility by subject; every subscriber receives a copy of
// each message posted to a subject it has enrolled for, in the order the
// messages were posted. Unlike net-news, the service is an active entity
// that forwards postings to interested processes immediately.
//
// The service is a process group of server processes (normally one per
// site). Subscriptions and postings are ABCAST to the group so every server
// sees them in the same order; the server ranked by the subscriber's site
// forwards postings point-to-point, so each subscriber receives exactly one
// copy, in posting order.
package news
