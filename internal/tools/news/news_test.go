package news

import (
	"sync"
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type inbox struct {
	mu    sync.Mutex
	posts []Posting
}

func (i *inbox) add(p Posting) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.posts = append(i.posts, p)
}

func (i *inbox) bodies() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, len(i.posts))
	for j, p := range i.posts {
		out[j] = p.Body
	}
	return out
}

func startService(t *testing.T, c *isis.Cluster, sites ...isis.SiteID) []*Server {
	t.Helper()
	servers := make([]*Server, len(sites))
	for i, s := range sites {
		p, err := c.Site(s).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		srv, err := StartServer(p)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}
	return servers
}

func TestSubscribeAndPost(t *testing.T) {
	c := cluster(t, 3)
	servers := startService(t, c, 1, 2)
	_ = servers

	subProc, _ := c.Site(3).Spawn()
	sub, err := NewClient(subProc)
	if err != nil {
		t.Fatal(err)
	}
	in := &inbox{}
	if err := sub.Subscribe("alerts", in.add); err != nil {
		t.Fatal(err)
	}
	wait(t, "subscription registered", 3*time.Second, func() bool {
		return len(servers[0].Subjects()) == 1
	})

	posterProc, _ := c.Site(1).Spawn()
	poster, err := NewClient(posterProc)
	if err != nil {
		t.Fatal(err)
	}
	if err := poster.Post("alerts", "furnace overheating", []byte{42}); err != nil {
		t.Fatal(err)
	}
	wait(t, "posting delivery", 5*time.Second, func() bool { return len(in.bodies()) == 1 })
	in.mu.Lock()
	p := in.posts[0]
	in.mu.Unlock()
	if p.Subject != "alerts" || p.Body != "furnace overheating" || len(p.Data) != 1 {
		t.Errorf("posting = %+v", p)
	}
	if p.Poster != posterProc.Address() {
		t.Errorf("poster = %v", p.Poster)
	}
}

func TestPostingsArriveInOrderAndExactlyOnce(t *testing.T) {
	c := cluster(t, 3)
	servers := startService(t, c, 1, 2) // two servers: the forwarding split must not duplicate

	subProc, _ := c.Site(3).Spawn()
	sub, err := NewClient(subProc)
	if err != nil {
		t.Fatal(err)
	}
	in := &inbox{}
	if err := sub.Subscribe("ticker", in.add); err != nil {
		t.Fatal(err)
	}
	wait(t, "subscription registered at both servers", 3*time.Second, func() bool {
		return len(servers[0].Subjects()) == 1 && len(servers[1].Subjects()) == 1
	})
	posterProc, _ := c.Site(2).Spawn()
	poster, err := NewClient(posterProc)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	for i := 0; i < k; i++ {
		if err := poster.Post("ticker", string(rune('a'+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	wait(t, "all postings", 5*time.Second, func() bool { return len(in.bodies()) >= k })
	time.Sleep(50 * time.Millisecond)
	got := in.bodies()
	if len(got) != k {
		t.Fatalf("received %d postings, want exactly %d (no duplicates)", len(got), k)
	}
	for i := 0; i < k; i++ {
		if got[i] != string(rune('a'+i)) {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestSubjectsAreIndependentAndUnsubscribeWorks(t *testing.T) {
	c := cluster(t, 2)
	servers := startService(t, c, 1)
	subProc, _ := c.Site(2).Spawn()
	sub, err := NewClient(subProc)
	if err != nil {
		t.Fatal(err)
	}
	alerts := &inbox{}
	sports := &inbox{}
	if err := sub.Subscribe("alerts", alerts.add); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe("sports", sports.add); err != nil {
		t.Fatal(err)
	}
	// Subscriptions are asynchronous; a posting concurrent with the
	// enrollment may legitimately miss it, so wait until the service has
	// registered both subjects before posting.
	wait(t, "subscriptions registered", 3*time.Second, func() bool {
		return len(servers[0].Subjects()) == 2
	})
	posterProc, _ := c.Site(1).Spawn()
	poster, _ := NewClient(posterProc)
	_ = poster.Post("alerts", "a1", nil)
	_ = poster.Post("sports", "s1", nil)
	wait(t, "both subjects", 5*time.Second, func() bool {
		return len(alerts.bodies()) == 1 && len(sports.bodies()) == 1
	})
	if err := sub.Unsubscribe("alerts"); err != nil {
		t.Fatal(err)
	}
	wait(t, "unsubscribe registered", 3*time.Second, func() bool {
		return len(servers[0].Subjects()) == 1
	})
	_ = poster.Post("alerts", "a2", nil)
	_ = poster.Post("sports", "s2", nil)
	wait(t, "second sports posting", 5*time.Second, func() bool { return len(sports.bodies()) == 2 })
	time.Sleep(50 * time.Millisecond)
	if len(alerts.bodies()) != 1 {
		t.Errorf("unsubscribed subject still delivered: %v", alerts.bodies())
	}
}

func TestServerSubjectsView(t *testing.T) {
	c := cluster(t, 2)
	servers := startService(t, c, 1)
	subProc, _ := c.Site(2).Spawn()
	sub, err := NewClient(subProc)
	if err != nil {
		t.Fatal(err)
	}
	_ = sub.Subscribe("x", func(Posting) {})
	_ = sub.Subscribe("y", func(Posting) {})
	wait(t, "subjects registered", 3*time.Second, func() bool {
		return len(servers[0].Subjects()) == 2
	})
	subs := servers[0].Subjects()
	if subs[0] != "x" || subs[1] != "y" {
		t.Errorf("Subjects = %v", subs)
	}
	if servers[0].Group().IsNil() {
		t.Error("server group is nil")
	}
}

func TestClientWithoutServiceFails(t *testing.T) {
	c := cluster(t, 1)
	p, _ := c.Site(1).Spawn()
	if _, err := NewClient(p); err == nil {
		t.Error("NewClient succeeded with no news servers running")
	}
}
