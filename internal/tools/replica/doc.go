// Package replica implements the replicated data tool of Section 3.6: a
// simple way to replicate a data item among the members of a process group,
// reducing access time in read-intensive settings and giving low-overhead
// fault tolerance.
//
// The processes managing the item supply routines that update and (if
// meaningful) read it; arguments are passed through uninterpreted, exactly
// as in the paper. The tool handles the multicasting needed to keep the
// copies consistent:
//
//   - in Total mode (a globally consistent request ordering is required,
//     like the replicated FIFO queue of Section 2.4), updates travel by
//     ABCAST;
//   - in Causal mode (updates are asynchronous, or the caller has obtained
//     mutual exclusion), updates travel by CBCAST, which is cheaper.
//
// An optional logging mode records updates on stable storage so the item can
// be reloaded after a crash; a checkpoint routine may be supplied and is
// invoked when the log grows long.
package replica
