package replica

import (
	"errors"
	"sync"

	isis "repro"
	"repro/internal/stable"
)

// Mode selects the multicast primitive used for updates.
type Mode int

const (
	// Causal replicates updates with CBCAST: correct when each datum has a
	// single writer at a time (private access or external mutual
	// exclusion).
	Causal Mode = iota
	// Total replicates updates with ABCAST: required when concurrent
	// writers must be applied in the same order at every copy.
	Total
)

// UpdateFunc applies one update to the local copy. It must be
// deterministic: every member applies the same updates in the same order.
type UpdateFunc func(args *isis.Message)

// ReadFunc answers a read-only query against the local copy.
type ReadFunc func(args *isis.Message) *isis.Message

// CheckpointFunc carves the current value of the item into blocks for the
// logging mode's checkpoints and for state transfers to joining members.
type CheckpointFunc func() [][]byte

// Options configures a replicated item.
type Options struct {
	// Mode selects the ordering requirement (Causal by default).
	Mode Mode
	// Entry is the entry point used for the item's traffic; items sharing a
	// group must use distinct entries. Defaults to EntryUserBase+1.
	Entry isis.EntryID
	// Log, when non-nil, enables the logging mode: updates are appended to
	// the store and a checkpoint is written whenever the log exceeds
	// CheckpointEvery records.
	Log stable.Store
	// CheckpointEvery bounds the log length before a checkpoint is taken
	// (default 64). Only meaningful with Log and Checkpoint set.
	CheckpointEvery int
	// Checkpoint encodes the item for checkpoints and state transfer.
	Checkpoint CheckpointFunc
}

// Errors.
var (
	ErrNoRead = errors.New("replica: no read routine supplied")
)

const (
	fOp   = "ri-op"
	fRead = "read"
	fUpd  = "update"
)

// Item is one member's handle on a replicated data item.
type Item struct {
	p     *isis.Process
	gid   isis.Address
	name  string
	entry isis.EntryID
	mode  Mode

	update UpdateFunc
	read   ReadFunc
	opts   Options

	mu      sync.Mutex
	applied uint64
}

// Manage attaches a group member as a manager of the named replicated item.
// Every member of the group must call Manage with the same name, mode and
// (deterministic) update routine. The client-facing interface this returns
// can be concealed beneath an RPC stub, as the paper notes.
func Manage(p *isis.Process, gid isis.Address, name string, update UpdateFunc, read ReadFunc, opts Options) *Item {
	if opts.Entry == 0 {
		opts.Entry = isis.EntryUserBase + 1
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 64
	}
	it := &Item{
		p:      p,
		gid:    gid,
		name:   name,
		entry:  opts.Entry,
		mode:   opts.Mode,
		update: update,
		read:   read,
		opts:   opts,
	}
	p.BindEntry(opts.Entry, it.onMessage)
	return it
}

// Applied returns the number of updates applied to the local copy.
func (it *Item) Applied() uint64 {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.applied
}

// protocol returns the multicast primitive matching the item's mode.
func (it *Item) protocol() isis.Protocol {
	if it.mode == Total {
		return isis.ABCAST
	}
	return isis.CBCAST
}

// Update replicates an update to every copy. In Causal mode the call is
// asynchronous (one async CBCAST, Table 1); in Total mode it is one ABCAST.
func (it *Item) Update(args *isis.Message) error {
	m := args.Clone()
	m.PutString(fOp, fUpd)
	m.PutString("ri-name", it.name)
	_, err := it.p.Cast(it.protocol(), []isis.Address{it.gid}, it.entry, m)
	return err
}

// ReadLocal answers a read-only query from the local copy with no
// communication (permitted for the item's managers).
func (it *Item) ReadLocal(args *isis.Message) (*isis.Message, error) {
	if it.read == nil {
		return nil, ErrNoRead
	}
	return it.read(args), nil
}

// Read performs a read-only query. A manager answers locally at no cost;
// the remote form (used by Client) costs one CBCAST plus one reply.
func (it *Item) Read(args *isis.Message) (*isis.Message, error) {
	return it.ReadLocal(args)
}

// onMessage applies replicated traffic arriving at the item's entry point.
func (it *Item) onMessage(m *isis.Message) {
	if m.GetString("ri-name", "") != it.name {
		return
	}
	switch m.GetString(fOp, "") {
	case fUpd:
		it.applyUpdate(m)
	case fRead:
		if it.read == nil {
			_ = it.p.NullReply(m)
			return
		}
		_ = it.p.Reply(m, it.read(m))
	}
}

func (it *Item) applyUpdate(m *isis.Message) {
	it.update(m)
	it.mu.Lock()
	it.applied++
	it.mu.Unlock()
	if it.opts.Log != nil {
		it.logUpdate(m)
	}
}

// logUpdate appends the update to stable storage and takes a checkpoint when
// the log grows long (Section 3.6's logging mode).
func (it *Item) logUpdate(m *isis.Message) {
	b, err := m.Marshal()
	if err != nil {
		return
	}
	_ = it.opts.Log.Append(stable.Record{Kind: 1, Data: b})
	if it.opts.Checkpoint == nil {
		return
	}
	if n, err := it.opts.Log.LogLen(); err == nil && n >= it.opts.CheckpointEvery {
		blocks := it.opts.Checkpoint()
		cp := isis.NewMessage()
		cp.PutInt("n", int64(len(blocks)))
		for i, blk := range blocks {
			cp.PutBytes(blockKey(i), blk)
		}
		if enc, err := cp.Marshal(); err == nil {
			_ = it.opts.Log.WriteCheckpoint(enc)
		}
	}
}

// Recover replays the item's stable log into the local copy: the checkpoint
// (if any) is handed to install, then every logged update is re-applied via
// the update routine. It is used when restarting after a total failure
// (Section 3.8, twenty-questions Step 6).
func (it *Item) Recover(install func(blocks [][]byte)) error {
	if it.opts.Log == nil {
		return nil
	}
	cp, log, err := it.opts.Log.Recover()
	if err != nil {
		return err
	}
	if cp != nil && install != nil {
		m, err := isis.UnmarshalMessage(cp)
		if err != nil {
			return err
		}
		n := int(m.GetInt("n", 0))
		blocks := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			blocks = append(blocks, m.GetBytes(blockKey(i)))
		}
		install(blocks)
	}
	for _, rec := range log {
		m, err := isis.UnmarshalMessage(rec.Data)
		if err != nil {
			continue
		}
		it.update(m)
		it.mu.Lock()
		it.applied++
		it.mu.Unlock()
	}
	return nil
}

// StateBlocks encodes the item for a state transfer to a joining member
// using the checkpoint routine.
func (it *Item) StateBlocks() [][]byte {
	if it.opts.Checkpoint == nil {
		return nil
	}
	return it.opts.Checkpoint()
}

func blockKey(i int) string { return "b" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Client is a non-manager's handle on a replicated item: reads and updates
// are shipped to the managing group.
type Client struct {
	p     *isis.Process
	gid   isis.Address
	name  string
	entry isis.EntryID
	mode  Mode
}

// NewClient builds a client handle. The entry and mode must match the
// managers' Options.
func NewClient(p *isis.Process, gid isis.Address, name string, entry isis.EntryID, mode Mode) *Client {
	if entry == 0 {
		entry = isis.EntryUserBase + 1
	}
	return &Client{p: p, gid: gid, name: name, entry: entry, mode: mode}
}

// Update ships an update to the managers (asynchronously).
func (c *Client) Update(args *isis.Message) error {
	m := args.Clone()
	m.PutString(fOp, fUpd)
	m.PutString("ri-name", c.name)
	proto := isis.CBCAST
	if c.mode == Total {
		proto = isis.ABCAST
	}
	_, err := c.p.Cast(proto, []isis.Address{c.gid}, c.entry, m)
	return err
}

// Read queries one manager (one CBCAST plus one reply, Table 1).
func (c *Client) Read(args *isis.Message) (*isis.Message, error) {
	m := args.Clone()
	m.PutString(fOp, fRead)
	m.PutString("ri-name", c.name)
	return c.p.Query(isis.CBCAST, []isis.Address{c.gid}, c.entry, m)
}
