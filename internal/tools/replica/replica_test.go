package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	isis "repro"
	"repro/internal/stable"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// counterCopy is one member's copy of a replicated counter with an append
// log (to check update ordering).
type counterCopy struct {
	mu    sync.Mutex
	value int64
	log   []int64
}

func (cc *counterCopy) update(m *isis.Message) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.value += m.GetInt("delta", 0)
	cc.log = append(cc.log, m.GetInt("delta", 0))
}

func (cc *counterCopy) read(*isis.Message) *isis.Message {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return isis.NewMessage().PutInt("value", cc.value)
}

func (cc *counterCopy) snapshot() (int64, []int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.value, append([]int64(nil), cc.log...)
}

// buildReplicated creates n members each managing a copy of a counter item.
func buildReplicated(t *testing.T, c *isis.Cluster, n int, mode Mode, logStore stable.Store, cp CheckpointFunc) ([]*isis.Process, []*counterCopy, []*Item, isis.Address) {
	t.Helper()
	procs := make([]*isis.Process, n)
	copies := make([]*counterCopy, n)
	items := make([]*Item, n)
	var gid isis.Address
	for i := 0; i < n; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		if i == 0 {
			v, err := p.CreateGroup("counter-svc")
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("counter-svc", isis.JoinOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		cc := &counterCopy{}
		copies[i] = cc
		opts := Options{Mode: mode}
		if i == 0 && logStore != nil {
			opts.Log = logStore
			opts.Checkpoint = cp
			opts.CheckpointEvery = 4
		}
		items[i] = Manage(p, gid, "counter", cc.update, cc.read, opts)
	}
	wait(t, "replica membership", 5*time.Second, func() bool {
		v, ok := procs[0].CurrentView(gid)
		return ok && v.Size() == n
	})
	return procs, copies, items, gid
}

func TestCausalUpdateReachesAllCopies(t *testing.T) {
	c := cluster(t, 3)
	_, copies, items, _ := buildReplicated(t, c, 3, Causal, nil, nil)

	if err := items[0].Update(isis.NewMessage().PutInt("delta", 5)); err != nil {
		t.Fatal(err)
	}
	if err := items[0].Update(isis.NewMessage().PutInt("delta", 7)); err != nil {
		t.Fatal(err)
	}
	wait(t, "updates at every copy", 3*time.Second, func() bool {
		for _, cc := range copies {
			if v, _ := cc.snapshot(); v != 12 {
				return false
			}
		}
		return true
	})
	// Single writer: the update order is the send order at every copy.
	for i, cc := range copies {
		_, log := cc.snapshot()
		if len(log) != 2 || log[0] != 5 || log[1] != 7 {
			t.Errorf("copy %d log = %v", i, log)
		}
	}
	if items[0].Applied() != 2 {
		t.Errorf("Applied = %d", items[0].Applied())
	}
}

func TestTotalModeOrdersConcurrentWriters(t *testing.T) {
	c := cluster(t, 3)
	_, copies, items, _ := buildReplicated(t, c, 3, Total, nil, nil)

	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it *Item) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := it.Update(isis.NewMessage().PutInt("delta", int64(i*10+j))); err != nil {
					t.Errorf("update: %v", err)
				}
			}
		}(i, it)
	}
	wg.Wait()
	wait(t, "all updates applied everywhere", 10*time.Second, func() bool {
		for _, cc := range copies {
			if _, log := cc.snapshot(); len(log) != 15 {
				return false
			}
		}
		return true
	})
	_, ref := copies[0].snapshot()
	for i := 1; i < len(copies); i++ {
		_, log := copies[i].snapshot()
		for j := range ref {
			if log[j] != ref[j] {
				t.Fatalf("copy %d order differs at %d: %v vs %v", i, j, log, ref)
			}
		}
	}
}

func TestLocalReadNoCost(t *testing.T) {
	c := cluster(t, 1)
	_, _, items, _ := buildReplicated(t, c, 1, Causal, nil, nil)
	if err := items[0].Update(isis.NewMessage().PutInt("delta", 3)); err != nil {
		t.Fatal(err)
	}
	wait(t, "update applied", 2*time.Second, func() bool { return items[0].Applied() == 1 })
	before := c.Counters()
	r, err := items[0].Read(isis.NewMessage())
	if err != nil || r.GetInt("value", -1) != 3 {
		t.Fatalf("Read = %v, %v", r, err)
	}
	after := c.Counters()
	if after.CBCASTs != before.CBCASTs && after.ABCASTs != before.ABCASTs {
		t.Error("manager read caused communication")
	}
}

func TestClientReadAndUpdate(t *testing.T) {
	c := cluster(t, 3)
	_, copies, _, gid := buildReplicated(t, c, 2, Causal, nil, nil)

	clientProc, err := c.Site(3).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientProc.Lookup("counter-svc"); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(clientProc, gid, "counter", 0, Causal)
	if err := cl.Update(isis.NewMessage().PutInt("delta", 9)); err != nil {
		t.Fatal(err)
	}
	wait(t, "client update at the copies", 3*time.Second, func() bool {
		v0, _ := copies[0].snapshot()
		v1, _ := copies[1].snapshot()
		return v0 == 9 && v1 == 9
	})
	r, err := cl.Read(isis.NewMessage())
	if err != nil {
		t.Fatal(err)
	}
	if r.GetInt("value", -1) != 9 {
		t.Errorf("client read = %v", r.Format())
	}
}

func TestReadWithoutRoutine(t *testing.T) {
	c := cluster(t, 1)
	p, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.CreateGroup("no-read")
	if err != nil {
		t.Fatal(err)
	}
	it := Manage(p, v.Group, "item", func(*isis.Message) {}, nil, Options{})
	if _, err := it.Read(isis.NewMessage()); err != ErrNoRead {
		t.Errorf("err = %v, want ErrNoRead", err)
	}
}

func TestLoggingAndRecovery(t *testing.T) {
	c := cluster(t, 1)
	store := stable.NewMem()
	cc := &counterCopy{}
	cp := func() [][]byte {
		v, _ := cc.snapshot()
		return [][]byte{[]byte(fmt.Sprintf("%d", v))}
	}
	p, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.CreateGroup("counter-logged")
	if err != nil {
		t.Fatal(err)
	}
	item := Manage(p, v.Group, "counter", cc.update, cc.read, Options{
		Mode: Causal, Log: store, Checkpoint: cp, CheckpointEvery: 4,
	})

	// Apply enough updates to force at least one checkpoint (every 4).
	for i := 1; i <= 6; i++ {
		if err := item.Update(isis.NewMessage().PutInt("delta", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	wait(t, "updates applied", 3*time.Second, func() bool { return item.Applied() == 6 })

	// The log has been written: a checkpoint exists and the tail of the log
	// holds the post-checkpoint updates.
	cpData, log, err := store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if cpData == nil {
		t.Error("no checkpoint written despite CheckpointEvery=4")
	}
	if len(log) == 0 && cpData == nil {
		t.Error("neither log nor checkpoint present")
	}

	// Simulate a restart: a fresh copy recovers from the log records (the
	// checkpoint install is exercised through the install callback).
	fresh := &counterCopy{}
	p2, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p2.CreateGroup("counter-recovered")
	if err != nil {
		t.Fatal(err)
	}
	it2 := Manage(p2, v2.Group, "counter", fresh.update, fresh.read, Options{Log: store, Checkpoint: nil})
	installed := ""
	if err := it2.Recover(func(blocks [][]byte) {
		if len(blocks) > 0 {
			installed = string(blocks[0])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if installed == "" {
		t.Error("checkpoint was not handed to install")
	}
	// The replayed updates are those logged after the checkpoint; together
	// with the checkpoint they reconstruct the value 1+2+..+6 = 21.
	val, _ := fresh.snapshot()
	var cpVal int64
	fmt.Sscanf(installed, "%d", &cpVal)
	if cpVal+val != 21 {
		t.Errorf("recovered value = %d (checkpoint %d + replay %d), want 21", cpVal+val, cpVal, val)
	}
}

func TestStateBlocks(t *testing.T) {
	c := cluster(t, 1)
	cc := &counterCopy{}
	p, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.CreateGroup("blocks")
	if err != nil {
		t.Fatal(err)
	}
	it := Manage(p, v.Group, "x", cc.update, cc.read, Options{
		Checkpoint: func() [][]byte { return [][]byte{[]byte("b1"), []byte("b2")} },
	})
	blocks := it.StateBlocks()
	if len(blocks) != 2 || string(blocks[0]) != "b1" {
		t.Errorf("StateBlocks = %v", blocks)
	}
	it2 := Manage(p, v.Group, "y", cc.update, cc.read, Options{Entry: isis.EntryUserBase + 7})
	if it2.StateBlocks() != nil {
		t.Error("StateBlocks without a checkpoint routine should be nil")
	}
}
