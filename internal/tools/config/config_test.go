package config

import (
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func buildMembers(t *testing.T, c *isis.Cluster, n int) ([]*isis.Process, []*Tool, isis.Address) {
	t.Helper()
	procs := make([]*isis.Process, n)
	tools := make([]*Tool, n)
	var gid isis.Address
	for i := 0; i < n; i++ {
		p, err := c.Site(isis.SiteID(i + 1)).Spawn()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		if i == 0 {
			v, err := p.CreateGroup("configured")
			if err != nil {
				t.Fatal(err)
			}
			gid = v.Group
		} else {
			if _, err := p.JoinByName("configured", isis.JoinOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		tools[i] = New(p, gid)
	}
	wait(t, "membership", 5*time.Second, func() bool {
		v, ok := procs[0].CurrentView(gid)
		return ok && v.Size() == n
	})
	return procs, tools, gid
}

func TestUpdatePropagatesToAllMembers(t *testing.T) {
	c := cluster(t, 3)
	_, tools, _ := buildMembers(t, c, 3)

	if err := tools[1].Update("workers", []byte("4")); err != nil {
		t.Fatal(err)
	}
	wait(t, "configuration at every member", 3*time.Second, func() bool {
		for _, tool := range tools {
			v, _ := tool.Read("workers")
			if string(v) != "4" {
				return false
			}
		}
		return true
	})
	for i, tool := range tools {
		if tool.Version() != 1 {
			t.Errorf("member %d version = %d", i, tool.Version())
		}
	}
}

func TestReadIsLocalAndMissingKeyIsNil(t *testing.T) {
	c := cluster(t, 1)
	_, tools, _ := buildMembers(t, c, 1)
	before := c.Counters()
	v, ver := tools[0].Read("absent")
	if v != nil || ver != 0 {
		t.Errorf("Read(absent) = %v, %d", v, ver)
	}
	after := c.Counters()
	if after.CBCASTs != before.CBCASTs || after.ABCASTs != before.ABCASTs || after.GBCASTs != before.GBCASTs {
		t.Error("a local read caused communication")
	}
}

func TestSequentialUpdatesConvergeInOrder(t *testing.T) {
	c := cluster(t, 2)
	_, tools, _ := buildMembers(t, c, 2)
	// Updates are GBCASTs issued by the same member: they are applied in
	// order everywhere, so the final value is the last one and the version
	// counts every update.
	for i, v := range []string{"a", "b", "c"} {
		if err := tools[0].Update("key", []byte(v)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	wait(t, "final configuration", 3*time.Second, func() bool {
		for _, tool := range tools {
			val, _ := tool.Read("key")
			if string(val) != "c" || tool.Version() != 3 {
				return false
			}
		}
		return true
	})
	if keys := tools[1].Keys(); len(keys) != 1 || keys[0] != "key" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestWatchCallbacks(t *testing.T) {
	c := cluster(t, 1)
	_, tools, _ := buildMembers(t, c, 1)
	type ev struct {
		key string
		ver uint64
	}
	got := make(chan ev, 4)
	tools[0].Watch(func(key string, value []byte, version uint64) {
		got <- ev{key, version}
	})
	if err := tools[0].Update("limit", []byte("9")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.key != "limit" || e.ver != 1 {
			t.Errorf("watch event = %+v", e)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("watch callback never ran")
	}
}

func TestSnapshotInstallRoundTrip(t *testing.T) {
	c := cluster(t, 1)
	_, tools, gid := buildMembers(t, c, 1)
	_ = gid
	if err := tools[0].Update("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tools[0].Update("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	wait(t, "updates applied", 2*time.Second, func() bool { return tools[0].Version() == 2 })

	snap := tools[0].Snapshot()
	p2, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p2.CreateGroup("other")
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(p2, v2.Group)
	if err := fresh.Install(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := fresh.Read("a"); string(v) != "1" {
		t.Errorf("installed a = %q", v)
	}
	if v, _ := fresh.Read("b"); string(v) != "2" {
		t.Errorf("installed b = %q", v)
	}
	if fresh.Version() != 2 {
		t.Errorf("installed version = %d", fresh.Version())
	}
	if err := fresh.Install([]byte("garbage")); err == nil {
		t.Error("Install accepted garbage")
	}
}
