package config

import (
	"errors"
	"fmt"
	"sync"

	isis "repro"
)

// ErrNotMember is returned when a non-member attempts a local read.
var ErrNotMember = errors.New("config: process is not attached to the configuration")

// Tool is one member's handle on the group's configuration structure.
type Tool struct {
	p   *isis.Process
	gid isis.Address

	mu      sync.Mutex
	values  map[string][]byte
	version uint64
	watch   []func(key string, value []byte, version uint64)
}

// New attaches a group member to the configuration structure. Every member
// that wants to read the configuration must create its own Tool (the data
// is stored directly in the members, as the paper describes).
func New(p *isis.Process, gid isis.Address) *Tool {
	t := &Tool{p: p, gid: gid, values: make(map[string][]byte)}
	p.BindEntry(isis.EntryConfig, t.onUpdate)
	return t
}

// Update installs a new value for a key at every member. The change is
// carried by GBCAST, so it is ordered consistently with respect to every
// other multicast and membership change; it costs one GBCAST.
func (t *Tool) Update(key string, value []byte) error {
	m := isis.NewMessage()
	m.PutString("cfg-key", key)
	m.PutBytes("cfg-val", value)
	_, err := t.p.Cast(isis.GBCAST, []isis.Address{t.gid}, isis.EntryConfig, m)
	return err
}

// Read returns the local copy of a key's value (nil if unset) and the
// configuration version that produced it. It involves no communication.
func (t *Tool) Read(key string) ([]byte, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.values[key]
	if !ok {
		return nil, t.version
	}
	return append([]byte(nil), v...), t.version
}

// Version returns the number of configuration updates applied so far.
func (t *Tool) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Keys returns the currently configured keys.
func (t *Tool) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.values))
	for k := range t.values {
		out = append(out, k)
	}
	return out
}

// Watch registers a callback invoked (on the member's task queue order)
// whenever a configuration update is applied.
func (t *Tool) Watch(cb func(key string, value []byte, version uint64)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watch = append(t.watch, cb)
}

// onUpdate applies a configuration update delivered by GBCAST.
func (t *Tool) onUpdate(m *isis.Message) {
	key := m.GetString("cfg-key", "")
	val := m.GetBytes("cfg-val")
	t.mu.Lock()
	t.values[key] = append([]byte(nil), val...)
	t.version++
	version := t.version
	cbs := make([]func(string, []byte, uint64), len(t.watch))
	copy(cbs, t.watch)
	t.mu.Unlock()
	for _, cb := range cbs {
		cb(key, val, version)
	}
}

// Snapshot serializes the configuration for a state transfer to a joining
// member.
func (t *Tool) Snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := isis.NewMessage()
	m.PutInt("version", int64(t.version))
	i := 0
	for k, v := range t.values {
		e := isis.NewMessage().PutString("k", k).PutBytes("v", v)
		m.PutMessage(keyName(i), e)
		i++
	}
	m.PutInt("n", int64(i))
	b, _ := m.Marshal()
	return b
}

// Install replaces the local configuration with a snapshot produced by
// Snapshot (used when joining with a state transfer).
func (t *Tool) Install(snapshot []byte) error {
	m, err := isis.UnmarshalMessage(snapshot)
	if err != nil {
		return err
	}
	values := make(map[string][]byte)
	n := int(m.GetInt("n", 0))
	for i := 0; i < n; i++ {
		e := m.GetMessage(keyName(i))
		if e == nil {
			continue
		}
		values[e.GetString("k", "")] = append([]byte(nil), e.GetBytes("v")...)
	}
	t.mu.Lock()
	t.values = values
	t.version = uint64(m.GetInt("version", 0))
	t.mu.Unlock()
	return nil
}

func keyName(i int) string { return fmt.Sprintf("e%d", i) }
