// Package config implements the configuration tool of Section 3.3: a
// process group maintains a small configuration data structure (key/value
// pairs) that, like the membership list, appears to change instantaneously —
// configuration updates are carried by GBCAST, so every recipient of any
// message sees the same configuration when that message arrives. Reads are
// answered from the local copy at no communication cost; updates cost one
// GBCAST (Table 1).
//
// The twenty-questions example uses it (Step 7) to re-assign member numbers
// at run time for dynamic load balancing.
package config
