// Package statexfer implements the state transfer tool of Section 3.8: a
// convenient way to join a pre-existing process group while transferring the
// group state from the operational members to the joiner. The transfer is
// virtually synchronous with respect to incoming requests: up to the instant
// of the join the old members receive requests and the joiner does not; from
// the join on, the joiner receives requests too — but only after it has
// received the state that was current at the join. The kernel enforces that
// cut (deliveries to the joiner are held until the last state block
// arrives); this package adds block encoding helpers and a blocking
// JoinWithState call.
//
// Process migration (Section 3.8) is expressed with this tool: start a new
// process, JoinWithState, then have the old member Leave.
package statexfer
