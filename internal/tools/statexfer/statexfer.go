package statexfer

import (
	"errors"
	"sync"
	"time"

	isis "repro"
)

// ErrTransferTimeout is returned when the state transfer does not complete
// within the configured timeout.
var ErrTransferTimeout = errors.New("statexfer: state transfer timed out")

// Provide registers fn as the member's state encoder, splitting its output
// into blocks of at most blockSize bytes (the paper's "series of variable
// sized blocks"; small transfers travel as ISIS messages, large ones are
// fragmented by the transport exactly like any large message).
func Provide(p *isis.Process, gid isis.Address, blockSize int, fn func() []byte) error {
	if blockSize <= 0 {
		blockSize = 16 * 1024
	}
	return p.SetStateProvider(gid, func() [][]byte {
		data := fn()
		if len(data) == 0 {
			return nil
		}
		var blocks [][]byte
		for len(data) > 0 {
			n := blockSize
			if n > len(data) {
				n = len(data)
			}
			blocks = append(blocks, append([]byte(nil), data[:n]...))
			data = data[n:]
		}
		return blocks
	})
}

// ProvideBlocks registers a block-oriented provider directly (for state that
// is naturally chunked, like the replicated data tool's checkpoints).
func ProvideBlocks(p *isis.Process, gid isis.Address, fn func() [][]byte) error {
	return p.SetStateProvider(gid, fn)
}

// JoinWithState joins the group, blocks until the state transfer completes,
// and hands the reassembled state to install. It returns the first view that
// includes the new member.
func JoinWithState(p *isis.Process, gid isis.Address, timeout time.Duration, install func(state []byte)) (isis.View, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	var mu sync.Mutex
	var buf []byte
	done := make(chan struct{})
	var once sync.Once

	view, err := p.Join(gid, isis.JoinOptions{
		StateReceiver: func(block []byte, last bool) {
			mu.Lock()
			buf = append(buf, block...)
			mu.Unlock()
			if last {
				once.Do(func() { close(done) })
			}
		},
	})
	if err != nil {
		return isis.View{}, err
	}
	select {
	case <-done:
	case <-time.After(timeout):
		return view, ErrTransferTimeout
	}
	if install != nil {
		mu.Lock()
		state := append([]byte(nil), buf...)
		mu.Unlock()
		install(state)
	}
	return view, nil
}

// JoinWithStateByName resolves the group by name first.
func JoinWithStateByName(p *isis.Process, name string, timeout time.Duration, install func(state []byte)) (isis.View, error) {
	gid, err := p.Lookup(name)
	if err != nil {
		return isis.View{}, err
	}
	return JoinWithState(p, gid, timeout, install)
}
