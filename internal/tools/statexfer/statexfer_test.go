package statexfer

import (
	"bytes"
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestJoinWithStateTransfersWholeState(t *testing.T) {
	c := cluster(t, 2)
	first, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := first.CreateGroup("xfer")
	if err != nil {
		t.Fatal(err)
	}
	// 100 KB of state: exercises block splitting and transport
	// fragmentation.
	state := bytes.Repeat([]byte("0123456789abcdef"), 6400)
	if err := Provide(first, v.Group, 8*1024, func() []byte { return state }); err != nil {
		t.Fatal(err)
	}

	joiner, err := c.Site(2).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	view, err := JoinWithState(joiner, v.Group, 10*time.Second, func(s []byte) { got = s })
	if err != nil {
		t.Fatal(err)
	}
	if view.Size() != 2 || !view.Contains(joiner.Address()) {
		t.Errorf("join view = %v", view)
	}
	if !bytes.Equal(got, state) {
		t.Errorf("transferred %d bytes, want %d, equal=%v", len(got), len(state), bytes.Equal(got, state))
	}
}

func TestJoinWithStateByNameAndEmptyState(t *testing.T) {
	c := cluster(t, 2)
	first, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.CreateGroup("empty-state"); err != nil {
		t.Fatal(err)
	}
	if err := Provide(first, mustLookup(t, first, "empty-state"), 0, func() []byte { return nil }); err != nil {
		t.Fatal(err)
	}
	joiner, err := c.Site(2).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	called := false
	view, err := JoinWithStateByName(joiner, "empty-state", 5*time.Second, func(s []byte) {
		called = true
		if len(s) != 0 {
			t.Errorf("expected empty state, got %d bytes", len(s))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("install was not called for an empty state")
	}
	if view.Size() != 2 {
		t.Errorf("view = %v", view)
	}
}

func TestJoinWithStateUnknownGroup(t *testing.T) {
	c := cluster(t, 1)
	p, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinWithStateByName(p, "does-not-exist", time.Second, nil); err == nil {
		t.Error("joining an unknown group succeeded")
	}
}

func TestProvideBlocks(t *testing.T) {
	c := cluster(t, 2)
	first, err := c.Site(1).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	v, err := first.CreateGroup("blocky")
	if err != nil {
		t.Fatal(err)
	}
	if err := ProvideBlocks(first, v.Group, func() [][]byte {
		return [][]byte{[]byte("alpha"), []byte("beta")}
	}); err != nil {
		t.Fatal(err)
	}
	joiner, err := c.Site(2).Spawn()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := JoinWithState(joiner, v.Group, 5*time.Second, func(s []byte) { got = s }); err != nil {
		t.Fatal(err)
	}
	if string(got) != "alphabeta" {
		t.Errorf("got %q", got)
	}
}

func mustLookup(t *testing.T, p *isis.Process, name string) isis.Address {
	t.Helper()
	gid, err := p.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return gid
}
