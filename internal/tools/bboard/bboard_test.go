package bboard

import (
	"testing"
	"time"

	isis "repro"
)

func cluster(t *testing.T, sites int) *isis.Cluster {
	t.Helper()
	c, err := isis.NewCluster(isis.ClusterConfig{Sites: sites, CallTimeout: 2 * time.Second, ReplyTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func wait(t *testing.T, what string, d time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPostAndReadAcrossMembers(t *testing.T) {
	c := cluster(t, 2)
	p1, _ := c.Site(1).Spawn()
	b1, err := Create(p1, "diagnosis", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Site(2).Spawn()
	b2, err := Attach(p2, "diagnosis", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.Post("sensor", "temperature high", []byte{9}); err != nil {
		t.Fatal(err)
	}
	wait(t, "note at both members", 3*time.Second, func() bool {
		return b1.Len() == 1 && b2.Len() == 1
	})
	notes := b2.Read("sensor")
	if len(notes) != 1 || notes[0].Body != "temperature high" || notes[0].Poster != p1.Address() {
		t.Errorf("notes = %+v", notes)
	}
	if len(b2.Read("absent-subject")) != 0 {
		t.Error("Read matched an absent subject")
	}
	if len(b2.Read("")) != 1 {
		t.Error("empty subject should match everything")
	}
}

func TestAttachReceivesExistingNotesByStateTransfer(t *testing.T) {
	c := cluster(t, 2)
	p1, _ := c.Site(1).Spawn()
	b1, err := Create(p1, "history", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b1.Post("log", string(rune('a'+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	wait(t, "creator's notes", 2*time.Second, func() bool { return b1.Len() == 3 })

	p2, _ := c.Site(2).Spawn()
	b2, err := Attach(p2, "history", Options{})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, "transferred notes", 3*time.Second, func() bool { return b2.Len() == 3 })
	notes := b2.Read("log")
	if len(notes) != 3 || notes[0].Body != "a" || notes[2].Body != "c" {
		t.Errorf("transferred notes = %+v", notes)
	}
}

func TestTotalOrderBoard(t *testing.T) {
	c := cluster(t, 2)
	p1, _ := c.Site(1).Spawn()
	b1, err := Create(p1, "ordered", Options{TotalOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.Site(2).Spawn()
	b2, err := Attach(p2, "ordered", Options{TotalOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent posts from both members: every member must hold them in
	// the same order.
	for i := 0; i < 5; i++ {
		if err := b1.Post("s", "x"+string(rune('0'+i)), nil); err != nil {
			t.Fatal(err)
		}
		if err := b2.Post("s", "y"+string(rune('0'+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	wait(t, "all posts everywhere", 5*time.Second, func() bool {
		return b1.Len() == 10 && b2.Len() == 10
	})
	n1, n2 := b1.Read(""), b2.Read("")
	for i := range n1 {
		if n1[i].Body != n2[i].Body {
			t.Fatalf("order differs at %d: %v vs %v", i, n1[i].Body, n2[i].Body)
		}
	}
}

func TestWatchAndSubjects(t *testing.T) {
	c := cluster(t, 1)
	p, _ := c.Site(1).Spawn()
	b, err := Create(p, "watched", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Note, 4)
	b.Watch(func(n Note) { got <- n })
	if err := b.Post("alpha", "first", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Post("beta", "second", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(3 * time.Second):
			t.Fatal("watch callback missing")
		}
	}
	subs := b.Subjects()
	if len(subs) != 2 || subs[0] != "alpha" || subs[1] != "beta" {
		t.Errorf("Subjects = %v", subs)
	}
}

func TestAttachUnknownBoard(t *testing.T) {
	c := cluster(t, 1)
	p, _ := c.Site(1).Spawn()
	if _, err := Attach(p, "no-such-board", Options{}); err == nil {
		t.Error("attaching to an unknown board succeeded")
	}
}
