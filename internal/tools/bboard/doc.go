// Package bboard implements the bulletin-board tool sketched in Section
// 3.11 (and [Birman-d]): shared bulletin boards of the sort used in
// blackboard-style AI applications. Unlike the news service it is linked
// directly into its clients — every client is a member of the board's group
// and holds a full copy — and is intended for high-performance shared data
// management: reads are local, posts are a single multicast.
//
// Posts on one board can be totally ordered (ABCAST) or causally ordered
// (CBCAST), chosen at attach time; reads never involve communication.
package bboard
