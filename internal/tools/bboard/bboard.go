package bboard

import (
	"sort"
	"sync"

	isis "repro"
)

const (
	fOp      = "bb-op"
	fBoard   = "bb-board"
	fSubject = "bb-subject"
	opPost   = "post"
)

// Note is one posting on a board.
type Note struct {
	Subject string
	Body    string
	Data    []byte
	Poster  isis.Address
	Seq     int // position in the board's delivery order at this member
}

// Board is one client's attachment to a shared bulletin board.
type Board struct {
	p       *isis.Process
	gid     isis.Address
	name    string
	entry   isis.EntryID
	ordered bool

	mu       sync.Mutex
	notes    []Note
	watchers []func(Note)
}

// Options configures Attach.
type Options struct {
	// Entry is the entry point used for the board's traffic (defaults to
	// EntryUserBase+3).
	Entry isis.EntryID
	// TotalOrder selects ABCAST for posts, so every member sees all posts
	// in the same order; the default (false) uses CBCAST, which preserves
	// per-poster and causal order and is cheaper.
	TotalOrder bool
}

// Create makes a new board group with the calling process as its first
// member and returns its attachment.
func Create(p *isis.Process, name string, opts Options) (*Board, error) {
	v, err := p.CreateGroup("bboard:" + name)
	if err != nil {
		return nil, err
	}
	return attach(p, v.Group, name, opts), nil
}

// Attach joins an existing board (by name) and returns the attachment. The
// board's existing contents are obtained by state transfer, so the new
// member starts with the same notes as the others.
func Attach(p *isis.Process, name string, opts Options) (*Board, error) {
	gid, err := p.Lookup("bboard:" + name)
	if err != nil {
		return nil, err
	}
	b := attach(p, gid, name, opts)
	if _, err := p.Join(gid, isis.JoinOptions{StateReceiver: b.installState}); err != nil {
		return nil, err
	}
	return b, nil
}

func attach(p *isis.Process, gid isis.Address, name string, opts Options) *Board {
	if opts.Entry == 0 {
		opts.Entry = isis.EntryUserBase + 3
	}
	b := &Board{p: p, gid: gid, name: name, entry: opts.Entry, ordered: opts.TotalOrder}
	p.BindEntry(opts.Entry, b.onPost)
	_ = p.SetStateProvider(gid, b.stateBlocks)
	return b
}

// Group returns the board's group address.
func (b *Board) Group() isis.Address { return b.gid }

// Post publishes a note on the board (one multicast; the caller continues
// immediately).
func (b *Board) Post(subject, body string, data []byte) error {
	m := isis.NewMessage().
		PutString(fOp, opPost).
		PutString(fBoard, b.name).
		PutString(fSubject, subject).
		PutString("body", body)
	if data != nil {
		m.PutBytes("data", data)
	}
	proto := isis.CBCAST
	if b.ordered {
		proto = isis.ABCAST
	}
	_, err := b.p.Cast(proto, []isis.Address{b.gid}, b.entry, m)
	return err
}

// Read returns the notes currently on the board whose subject matches (an
// empty subject matches everything). It involves no communication.
func (b *Board) Read(subject string) []Note {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Note
	for _, n := range b.notes {
		if subject == "" || n.Subject == subject {
			out = append(out, n)
		}
	}
	return out
}

// Subjects lists the distinct subjects present on the board.
func (b *Board) Subjects() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := map[string]bool{}
	for _, n := range b.notes {
		set[n.Subject] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Watch registers a callback invoked for every note as it is posted.
func (b *Board) Watch(cb func(Note)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.watchers = append(b.watchers, cb)
}

// Len returns the number of notes on the local copy of the board.
func (b *Board) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.notes)
}

func (b *Board) onPost(m *isis.Message) {
	if m.GetString(fOp, "") != opPost || m.GetString(fBoard, "") != b.name {
		return
	}
	b.mu.Lock()
	n := Note{
		Subject: m.GetString(fSubject, ""),
		Body:    m.GetString("body", ""),
		Data:    m.GetBytes("data"),
		Poster:  m.Sender(),
		Seq:     len(b.notes),
	}
	b.notes = append(b.notes, n)
	watchers := make([]func(Note), len(b.watchers))
	copy(watchers, b.watchers)
	b.mu.Unlock()
	for _, w := range watchers {
		w(n)
	}
}

// stateBlocks encodes the board for a state transfer to a joining member.
func (b *Board) stateBlocks() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	var blocks [][]byte
	for _, n := range b.notes {
		m := isis.NewMessage().
			PutString(fSubject, n.Subject).
			PutString("body", n.Body).
			PutAddress("poster", n.Poster)
		if n.Data != nil {
			m.PutBytes("data", n.Data)
		}
		enc, err := m.Marshal()
		if err != nil {
			continue
		}
		blocks = append(blocks, enc)
	}
	return blocks
}

// installState rebuilds the board from transferred state blocks.
func (b *Board) installState(block []byte, last bool) {
	if len(block) > 0 {
		if m, err := isis.UnmarshalMessage(block); err == nil {
			b.mu.Lock()
			b.notes = append(b.notes, Note{
				Subject: m.GetString(fSubject, ""),
				Body:    m.GetString("body", ""),
				Data:    m.GetBytes("data"),
				Poster:  m.GetAddress("poster"),
				Seq:     len(b.notes),
			})
			b.mu.Unlock()
		}
	}
	_ = last
}
